//! A minimal async executor that runs as one `MPIX_Async` task.
//!
//! No threads, no tokio: the executor's "event loop" is the stream's own
//! progress sweep. Spawned futures are polled inside the sweep by a
//! single pump task, and only when their waker fired (a request they
//! await completed) — so a task awaiting a 64-request fan-in costs the
//! engine nothing between completions, unlike a scan-based wait loop.
//!
//! Because task polls run inside the sweep, a spawned future must obey
//! the paper's poll-function rule: never invoke progress recursively.
//! `.await` requests; don't call `wait()`/`recv()`/`progress()` from
//! inside a spawned task (the re-entry guard would poison the pump).

use std::collections::HashMap;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

use mpfa_core::sync::{InjectQueue, Mutex};
use mpfa_core::task::AsyncPoll;
use mpfa_core::{Request, Stream};

type BoxFut = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Where a task's future currently lives. `Polling` marks it as checked
/// out by the pump; a waker firing meanwhile records `Woken` so the pump
/// re-queues the task instead of losing the wakeup.
enum Slot {
    Idle(BoxFut),
    Polling,
    Woken,
}

struct TaskEntry {
    slot: Slot,
    /// The task's completion request (what `JoinHandle` waits on, and
    /// what the `block_on` fallback path feeds to `wait_some`).
    req: Request,
}

struct ExecInner {
    stream: Stream,
    tasks: Mutex<HashMap<u64, TaskEntry>>,
    /// Task ids whose waker fired; drained by the pump each sweep.
    ready: InjectQueue<u64>,
    /// Accepting new tasks (false once shut down).
    open: AtomicBool,
    /// True while a pump task is registered on the stream.
    pump_live: AtomicBool,
    next_id: AtomicU64,
}

/// Per-task waker: firing queues the task id for the next pump run.
struct TaskWaker {
    id: u64,
    exec: Weak<ExecInner>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        let Some(exec) = self.exec.upgrade() else {
            return;
        };
        let requeue = {
            let mut tasks = exec.tasks.lock();
            match tasks.get_mut(&self.id) {
                // Completion raced with the pump mid-poll: leave a note;
                // the pump re-queues the task when it puts the future
                // back. Never lose a wakeup.
                Some(entry) if matches!(entry.slot, Slot::Polling) => {
                    entry.slot = Slot::Woken;
                    false
                }
                Some(_) => true,
                // Task already finished; nothing to wake.
                None => false,
            }
        };
        if requeue {
            exec.ready.push(self.id);
        }
    }
}

impl ExecInner {
    /// One pump run: poll every task whose waker fired. Runs inside the
    /// progress sweep (engine lock held), like any `MPIX_Async` task.
    fn pump(self: &Arc<Self>) -> AsyncPoll {
        let mut polled = false;
        while let Some(id) = self.ready.pop() {
            let fut = {
                let mut tasks = self.tasks.lock();
                match tasks.get_mut(&id) {
                    Some(entry) => match std::mem::replace(&mut entry.slot, Slot::Polling) {
                        Slot::Idle(f) => Some(f),
                        // A duplicate queue entry; the task is already
                        // being polled or re-queued. Restore and skip.
                        other => {
                            entry.slot = other;
                            None
                        }
                    },
                    None => None,
                }
            };
            let Some(mut fut) = fut else {
                continue;
            };
            polled = true;
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                exec: Arc::downgrade(self),
            }));
            let mut cx = Context::from_waker(&waker);
            // Isolate panicking tasks like the engine isolates poisoned
            // polls: the future is dropped (its completer fires the
            // task request as cancelled) and the executor keeps running.
            let poll = std::panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
            match poll {
                Ok(Poll::Ready(())) | Err(_) => {
                    self.tasks.lock().remove(&id);
                }
                Ok(Poll::Pending) => {
                    let rearm = {
                        let mut tasks = self.tasks.lock();
                        let entry = tasks.get_mut(&id).expect("polling entry");
                        let woken = matches!(entry.slot, Slot::Woken);
                        entry.slot = Slot::Idle(fut);
                        woken
                    };
                    if rearm {
                        self.ready.push(id);
                    }
                }
            }
        }
        if self.tasks.lock().is_empty() {
            // Idle: retire the pump so a drained stream reports no
            // pending tasks. A racing spawn re-claims `pump_live` (or we
            // do, if its insert landed between our check and the store).
            self.pump_live.store(false, Ordering::Release);
            if !self.tasks.lock().is_empty() && !self.pump_live.swap(true, Ordering::AcqRel) {
                return AsyncPoll::Pending;
            }
            return AsyncPoll::Done;
        }
        if polled {
            AsyncPoll::Progress
        } else {
            AsyncPoll::Pending
        }
    }
}

/// A handle to a spawned task: await it, `join` it, or drop it to detach
/// (the task keeps running on the stream; its output is discarded).
pub struct JoinHandle<T> {
    req: Request,
    out: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The task's completion request (usable with the whole
    /// waitany/waitsome/continuation toolbox).
    pub fn request(&self) -> Request {
        self.req.clone()
    }

    /// True once the task ran to completion (or panicked).
    pub fn is_finished(&self) -> bool {
        self.req.is_complete()
    }

    /// Block until the task finishes and return its output, driving the
    /// executor's stream.
    ///
    /// # Panics
    /// Panics if the task panicked or was discarded before producing its
    /// output.
    pub fn join(self) -> T {
        let _ = self.req.wait();
        self.out
            .lock()
            .take()
            .expect("executor task panicked or was dropped before completing")
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match Pin::new(&mut this.req).poll(cx) {
            Poll::Ready(_) => Poll::Ready(
                this.out
                    .lock()
                    .take()
                    .expect("executor task panicked or was dropped before completing"),
            ),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// A minimal async executor bound to a [`Stream`].
///
/// Cheap to clone (shared handle). The executor registers one `MPIX_Async`
/// pump task on the stream while it has live tasks and retires it when
/// idle, so an idle executor costs the sweep nothing.
///
/// Dropping the executor (or calling [`Executor::close`]) stops new
/// spawns; tasks already in flight keep running on the stream until they
/// finish. See `docs/ASYNC.md` for the cancellation rules.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecInner>,
}

impl Executor {
    /// An executor running its tasks on `stream`.
    pub fn new(stream: &Stream) -> Executor {
        Executor {
            inner: Arc::new(ExecInner {
                stream: stream.clone(),
                tasks: Mutex::new(HashMap::new()),
                ready: InjectQueue::new(),
                open: AtomicBool::new(true),
                pump_live: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// The stream this executor's tasks run on.
    pub fn stream(&self) -> &Stream {
        &self.inner.stream
    }

    /// Spawn a future; it is first polled on the stream's next progress
    /// sweep.
    ///
    /// # Panics
    /// Panics if the executor was closed.
    pub fn spawn<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        assert!(
            self.inner.open.load(Ordering::Acquire),
            "spawn on a closed executor"
        );
        let (req, completer) = Request::pair(&self.inner.stream);
        let out = Arc::new(Mutex::new(None));
        let out2 = out.clone();
        let wrapped: BoxFut = Box::pin(async move {
            let value = fut.await;
            *out2.lock() = Some(value);
            completer.complete_empty();
        });
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.tasks.lock().insert(
            id,
            TaskEntry {
                slot: Slot::Idle(wrapped),
                req: req.clone(),
            },
        );
        self.inner.ready.push(id);
        self.ensure_pump();
        JoinHandle { req, out }
    }

    /// Run a future to completion on this executor, blocking the calling
    /// thread. The fallback wait path is `MPI_Waitsome` over the live
    /// task set: each round drives the stream until at least one
    /// executor task completes, then re-checks the root — no busy-wait
    /// between completions, and sibling completions are harvested in
    /// batches.
    pub fn block_on<F, T>(&self, fut: F) -> T
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        let handle = self.spawn(fut);
        let root = handle.request();
        while !root.is_complete() {
            let pending = self.task_requests();
            if pending.is_empty() {
                // The root's entry is removed only after its future
                // completed the request; an empty set means we're done.
                continue;
            }
            let _ = Request::wait_some(&pending);
        }
        handle.join()
    }

    /// Completion requests of every task currently in flight.
    pub fn task_requests(&self) -> Vec<Request> {
        self.inner
            .tasks
            .lock()
            .values()
            .map(|e| e.req.clone())
            .collect()
    }

    /// Tasks spawned and not yet finished.
    pub fn task_count(&self) -> usize {
        self.inner.tasks.lock().len()
    }

    /// Stop accepting spawns. In-flight tasks keep running.
    pub fn close(&self) {
        self.inner.open.store(false, Ordering::Release);
    }

    /// Close and drive the stream until every task finished or
    /// `timeout_s` elapsed; true if fully drained. The wait path is
    /// `wait_some` over the remaining task requests.
    pub fn shutdown(&self, timeout_s: f64) -> bool {
        self.close();
        let deadline = mpfa_core::wtime() + timeout_s;
        loop {
            let pending = self.task_requests();
            if pending.is_empty() {
                return true;
            }
            if mpfa_core::wtime() >= deadline {
                return false;
            }
            let _ = Request::wait_some(&pending);
        }
    }

    /// Register the pump task if none is live.
    fn ensure_pump(&self) {
        if self.inner.pump_live.swap(true, Ordering::AcqRel) {
            return;
        }
        let inner = self.inner.clone();
        self.inner.stream.async_start(move |_t| inner.pump());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::join_all;
    use mpfa_core::{RequestError, Status};
    use std::sync::atomic::AtomicUsize;

    fn delayed(s: &Stream, polls: u32) -> Request {
        let (req, completer) = Request::pair(s);
        let mut left = polls;
        let mut completer = Some(completer);
        s.async_start(move |_t| {
            left -= 1;
            if left == 0 {
                completer.take().expect("once").complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        req
    }

    #[test]
    fn spawn_and_join() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let req = delayed(&s, 3);
        let h = ex.spawn(async move { req.await.map(|st| st.cancelled) });
        assert_eq!(h.join(), Ok(false));
        assert_eq!(ex.task_count(), 0);
    }

    #[test]
    fn block_on_uses_waitsome_fallback() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let req = delayed(&s, 5);
        let out = ex.block_on(async move { req.await.expect("ok").source });
        assert_eq!(out, -1);
    }

    #[test]
    fn single_task_awaits_irregular_fanin() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let reqs: Vec<Request> = (1..=16).map(|i| delayed(&s, i)).collect();
        let results = ex.block_on(async move { join_all(reqs).await });
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let ex2 = ex.clone();
        let h = ex.spawn(async move {
            let inner = ex2.spawn(async { 21 });
            inner.await * 2
        });
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn pump_retires_when_idle_and_restarts() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let h = ex.spawn(async { 1 });
        assert_eq!(h.join(), 1);
        assert!(s.drain(1.0), "idle executor leaves no pending task");
        assert_eq!(s.pending_tasks(), 0);
        // A later spawn re-registers the pump.
        let h = ex.spawn(async { 2 });
        assert_eq!(h.join(), 2);
        assert!(s.drain(1.0));
    }

    #[test]
    fn panicking_task_is_isolated() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let bad: JoinHandle<()> = ex.spawn(async { panic!("task boom") });
        let good = ex.spawn(async { 7 });
        assert_eq!(good.join(), 7);
        // The panicked task's request completed (cancelled), so waiting
        // on it terminates rather than hanging.
        assert_eq!(bad.request().wait_result(), Ok(Status::cancelled()));
        assert!(bad.is_finished());
        assert_eq!(ex.task_count(), 0);
    }

    #[test]
    fn failed_request_error_reaches_the_task() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let (req, c) = Request::pair(&s);
        let h = ex.spawn(req);
        c.fail(RequestError::PeerFailed { rank: 2 });
        assert_eq!(h.join(), Err(RequestError::PeerFailed { rank: 2 }));
    }

    #[test]
    fn shutdown_drains_in_flight_tasks() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 1..=8 {
            let req = delayed(&s, i);
            let d = done.clone();
            ex.spawn(async move {
                let _ = req.await;
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(ex.shutdown(5.0));
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(ex.task_count(), 0);
    }

    #[test]
    #[should_panic(expected = "closed executor")]
    fn spawn_after_close_panics() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        ex.close();
        drop(ex.spawn(async {}));
    }

    #[test]
    fn cross_thread_completion_wakes_task() {
        let s = Stream::create();
        let ex = Executor::new(&s);
        let (req, c) = Request::pair(&s);
        let h = ex.spawn(async move { req.await.expect("ok").source });
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.complete(Status {
                source: 3,
                tag: 0,
                bytes: 0,
                cancelled: false,
            });
        });
        assert_eq!(h.join(), 3);
        t.join().unwrap();
    }
}

//! `MPIX_Continue` attach-to-many: N operations, each with a callback,
//! aggregated behind one request that completes when all have fired.
//!
//! This is the native counterpart of the scan-based emulation in
//! `mpfa-interop` (`ContinuationContext`): instead of an async task that
//! scans `is_complete` over the registered set every sweep, each attached
//! operation hands its callback to the completion machinery itself, so
//! the cost per sweep is zero for operations that didn't complete.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{Completer, Request, RequestError, Status, Stream};

struct AggState {
    /// Attached operations whose callback has not fired yet.
    outstanding: AtomicUsize,
    /// Set once `start` ran; the aggregate may only finish after this.
    started: AtomicBool,
    /// First error observed among the attached operations; the aggregate
    /// request fails with it (ULFM: failures surface, never leak).
    first_err: Mutex<Option<RequestError>>,
    /// Completer of the aggregate request, installed by `start`.
    completer: Mutex<Option<Completer>>,
}

impl AggState {
    /// Complete the aggregate if it is both started and drained. Both the
    /// last callback and `start` race toward this; the completer's
    /// take-once slot makes the completion single-shot.
    fn maybe_finish(&self) {
        if !self.started.load(Ordering::Acquire) || self.outstanding.load(Ordering::Acquire) != 0 {
            return;
        }
        if let Some(completer) = self.completer.lock().take() {
            match *self.first_err.lock() {
                Some(err) => completer.fail(err),
                None => completer.complete_empty(),
            }
        }
    }

    fn op_done(&self) {
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.maybe_finish();
        }
    }
}

/// An `MPIX_Continue`-style aggregate: attach callbacks to any number of
/// requests, then [`start`](ContinuationRequest::start) to obtain one
/// request that completes when every attached callback has fired.
///
/// Per-operation callbacks run with the operation's own outcome (so a
/// failed peer surfaces as `Err(PeerFailed)` on exactly the operations it
/// doomed); the aggregate request completes normally only if *all*
/// operations did, and otherwise fails with the first error observed.
///
/// ```
/// use mpfa_core::{Request, Status, Stream};
/// use mpfa_async::ContinuationRequest;
///
/// let stream = Stream::create();
/// let agg = ContinuationRequest::new(&stream);
/// let (req, completer) = Request::pair(&stream);
/// agg.attach(&req, |res| assert!(res.is_ok()));
/// let all = agg.start();
/// completer.complete_empty();
/// assert!(all.wait_result().is_ok());
/// ```
pub struct ContinuationRequest {
    stream: Stream,
    state: Arc<AggState>,
}

impl ContinuationRequest {
    /// A fresh, inactive aggregate bound to `stream` (the stream the
    /// aggregate request will be driven by).
    pub fn new(stream: &Stream) -> ContinuationRequest {
        ContinuationRequest {
            stream: stream.clone(),
            state: Arc::new(AggState {
                outstanding: AtomicUsize::new(0),
                started: AtomicBool::new(false),
                first_err: Mutex::new(None),
                completer: Mutex::new(None),
            }),
        }
    }

    /// Attach `cb` to `req`. The callback fires exactly once with the
    /// request's outcome — including when the request is already complete
    /// at attach time, was cancelled, or failed.
    ///
    /// # Panics
    /// Panics if the aggregate was already started (`MPIX_Continue` only
    /// permits attaching while the continuation request is inactive).
    pub fn attach<F>(&self, req: &Request, cb: F)
    where
        F: FnOnce(Result<Status, RequestError>) + Send + 'static,
    {
        assert!(
            !self.state.started.load(Ordering::Acquire),
            "attach on a started ContinuationRequest"
        );
        self.state.outstanding.fetch_add(1, Ordering::AcqRel);
        let state = self.state.clone();
        req.on_complete(move |res| {
            if let Err(err) = res {
                state.first_err.lock().get_or_insert(err);
            }
            cb(res);
            state.op_done();
        });
    }

    /// Attach every request in `reqs` with a no-op callback — pure
    /// fire-when-all aggregation.
    pub fn attach_all(&self, reqs: &[Request]) {
        for req in reqs {
            self.attach(req, |_| {});
        }
    }

    /// Attached operations whose callback has not fired yet.
    pub fn outstanding(&self) -> usize {
        self.state.outstanding.load(Ordering::Acquire)
    }

    /// Activate the aggregate: returns the request that completes once
    /// every attached callback has fired (immediately, if they already
    /// all have). One-shot.
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn start(&self) -> Request {
        let (req, completer) = Request::pair(&self.stream);
        {
            let mut slot = self.state.completer.lock();
            assert!(
                slot.is_none() && !self.state.started.load(Ordering::Acquire),
                "ContinuationRequest already started"
            );
            *slot = Some(completer);
        }
        // Publish the completer before `started`: a racing last callback
        // that observes `started` is guaranteed to find the completer.
        self.state.started.store(true, Ordering::Release);
        self.state.maybe_finish();
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_when_all_in_any_order() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        let fired = Arc::new(AtomicUsize::new(0));
        let pairs: Vec<_> = (0..4).map(|_| Request::pair(&s)).collect();
        for (req, _) in &pairs {
            let f = fired.clone();
            agg.attach(req, move |res| {
                assert!(res.is_ok());
                f.fetch_add(1, Ordering::SeqCst);
            });
        }
        let all = agg.start();
        let mut completers: Vec<_> = pairs.into_iter().map(|(_, c)| c).collect();
        // Complete in reverse order; the aggregate stays incomplete until
        // the last callback fires.
        while let Some(c) = completers.pop() {
            assert!(!all.is_complete());
            c.complete_empty();
            s.progress();
        }
        assert!(all.wait_result().is_ok());
        assert_eq!(fired.load(Ordering::SeqCst), 4);
        assert_eq!(agg.outstanding(), 0);
    }

    #[test]
    fn already_complete_attachments_count() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        let done = Request::completed(&s, Status::empty());
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        agg.attach(&done, move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        });
        let all = agg.start();
        assert!(all.wait_result().is_ok());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_aggregate_completes_immediately() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        let all = agg.start();
        assert!(all.wait_result().is_ok());
    }

    #[test]
    fn one_failure_fails_the_aggregate() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        let (ok_req, ok_c) = Request::pair(&s);
        let (bad_req, bad_c) = Request::pair(&s);
        let errs = Arc::new(AtomicUsize::new(0));
        let e = errs.clone();
        agg.attach(&ok_req, |res| assert!(res.is_ok()));
        agg.attach(&bad_req, move |res| {
            assert_eq!(res, Err(RequestError::PeerFailed { rank: 1 }));
            e.fetch_add(1, Ordering::SeqCst);
        });
        let all = agg.start();
        ok_c.complete_empty();
        bad_c.fail(RequestError::PeerFailed { rank: 1 });
        assert_eq!(all.wait_result(), Err(RequestError::PeerFailed { rank: 1 }));
        assert_eq!(errs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn attach_all_is_pure_aggregation() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        let pairs: Vec<_> = (0..3).map(|_| Request::pair(&s)).collect();
        let reqs: Vec<Request> = pairs.iter().map(|(r, _)| r.clone()).collect();
        agg.attach_all(&reqs);
        assert_eq!(agg.outstanding(), 3);
        let all = agg.start();
        for (_, c) in pairs {
            c.complete_empty();
        }
        assert!(all.wait_result().is_ok());
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        drop(agg.start());
        drop(agg.start());
    }

    #[test]
    #[should_panic(expected = "attach on a started")]
    fn attach_after_start_panics() {
        let s = Stream::create();
        let agg = ContinuationRequest::new(&s);
        drop(agg.start());
        let (req, _c) = Request::pair(&s);
        agg.attach(&req, |_| {});
    }
}

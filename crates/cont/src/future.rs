//! Future combinators for requests: [`join_all`] (irregular fan-in) and
//! [`block_on`] (the synchronous rim of the async world).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use mpfa_core::{Request, RequestError, Status, Stream};

/// Future returned by [`join_all`]: resolves once every request in the
/// set has completed, yielding the per-request outcomes in order.
pub struct JoinAll {
    reqs: Vec<Request>,
    done: Vec<Option<Result<Status, RequestError>>>,
}

/// Await a whole set of requests at once — `MPI_Waitall` as a future.
///
/// One awaiting task can sit on an arbitrary, irregular fan-in of
/// operations: each completion wakes the task exactly once (through the
/// per-request waker bridge), with no polling loop over the set in
/// between.
pub fn join_all(reqs: Vec<Request>) -> JoinAll {
    let done = vec![None; reqs.len()];
    JoinAll { reqs, done }
}

impl Future for JoinAll {
    type Output = Vec<Result<Status, RequestError>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all = true;
        for i in 0..this.reqs.len() {
            if this.done[i].is_none() {
                match Pin::new(&mut this.reqs[i]).poll(cx) {
                    Poll::Ready(r) => this.done[i] = Some(r),
                    Poll::Pending => all = false,
                }
            }
        }
        if all {
            Poll::Ready(
                this.done
                    .iter_mut()
                    .map(|d| d.take().expect("all done"))
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    }
}

/// Waker that records "something I await completed" in a flag the
/// blocking loop re-checks between progress sweeps.
struct FlagWake(AtomicBool);

impl Wake for FlagWake {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::Release);
    }
}

/// Drive `stream`'s progress until `fut` resolves.
///
/// This is the synchronous entry point into async code — the moral
/// equivalent of `MPI_Wait`, but over an arbitrary future. The future is
/// polled once up front and then only after a waker fires (a request it
/// awaits completed), so idle sweeps don't re-poll it.
///
/// Must not be called from inside a progress hook or async task poll
/// (progress recursion is prohibited); use [`crate::Executor::spawn`]
/// and `.await` there instead.
pub fn block_on<F: Future>(stream: &Stream, fut: F) -> F::Output {
    let flag = Arc::new(FlagWake(AtomicBool::new(false)));
    let waker = Waker::from(flag.clone());
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                while !flag.0.swap(false, Ordering::Acquire) {
                    stream.progress();
                    // Unwoken after a sweep: what we await depends on a
                    // peer making progress. Yield so an oversubscribed
                    // host schedules that peer instead of spinning out
                    // the timeslice here.
                    if !flag.0.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::task::AsyncPoll;

    /// A request completed by an async task after `polls` sweeps.
    fn delayed(s: &Stream, polls: u32, source: i32) -> Request {
        let (req, completer) = Request::pair(s);
        let mut left = polls;
        let mut completer = Some(completer);
        s.async_start(move |_t| {
            left -= 1;
            if left == 0 {
                completer.take().expect("once").complete(Status {
                    source,
                    tag: 0,
                    bytes: 0,
                    cancelled: false,
                });
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        req
    }

    #[test]
    fn block_on_awaits_a_request() {
        let s = Stream::create();
        let req = delayed(&s, 3, 5);
        let st = block_on(&s, req).expect("ok");
        assert_eq!(st.source, 5);
    }

    #[test]
    fn block_on_ready_future_never_sweeps() {
        let s = Stream::create();
        let calls = s.progress_calls();
        let v = block_on(&s, async { 42 });
        assert_eq!(v, 42);
        assert_eq!(s.progress_calls(), calls);
    }

    #[test]
    fn join_all_resolves_out_of_order_completions() {
        let s = Stream::create();
        let reqs: Vec<Request> = (0..8).map(|i| delayed(&s, 8 - i as u32, i)).collect();
        let results = block_on(&s, join_all(reqs));
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().expect("ok").source, i as i32);
        }
    }

    #[test]
    fn join_all_surfaces_per_request_errors() {
        let s = Stream::create();
        let ok = delayed(&s, 1, 0);
        let (bad, bad_c) = Request::pair(&s);
        bad_c.fail(RequestError::Revoked);
        let results = block_on(&s, join_all(vec![ok, bad]));
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(RequestError::Revoked));
    }

    #[test]
    fn join_all_empty_is_immediate() {
        let s = Stream::create();
        assert!(block_on(&s, join_all(Vec::new())).is_empty());
    }
}

//! # mpfa-async — continuations and async/await over the progress engine
//!
//! The paper makes progress an explicit, first-class service; this crate
//! is its natural consumer: *completion notification* instead of polling
//! `wait` loops. It packages the core completion machinery
//! ([`mpfa_core::Request::on_complete`], `impl Future for Request`) into
//! the two shapes proposed by Schuchart et al.'s "MPI Continuations"
//! line of work (see `PAPERS.md`):
//!
//! * [`ContinuationRequest`] — `MPIX_Continue`-style attach-to-many: a
//!   set of operations each carrying a callback, aggregated behind one
//!   request that completes when *all* of them have fired.
//! * [`Executor`] — a minimal, self-contained async executor (no tokio)
//!   that runs as a single `MPIX_Async` task on a stream: every progress
//!   sweep polls the tasks whose wakers fired, so `.await`ing a request
//!   costs nothing until the sweep that completes it.
//!
//! Plus the small glue every async runtime needs: [`block_on`] (drive a
//! stream until a future resolves) and [`join_all`] (await a whole set
//! of requests at once — the irregular fan-in shape).
//!
//! ## Execution model
//!
//! Continuations never run inside the progress sweep. Request completion
//! (which happens with the engine lock held) only *enqueues* the callback
//! on the stream's deferred-execution list; every `Stream::progress`
//! caller drains that list after releasing the lock. A continuation may
//! therefore post new operations, attach further continuations, and even
//! block — it observes the stream unlocked.
//!
//! Executor tasks are the opposite: their `poll` runs *inside* the sweep
//! (the executor pump is an `MPIX_Async` task), so they must follow the
//! paper's rule for poll functions — never invoke progress recursively.
//! `.await` things; don't call `wait()`/`recv()` inside a spawned task.
//! See `docs/ASYNC.md` for the full rules, including what dropping each
//! handle cancels (and what it doesn't).

#![warn(missing_docs)]

pub mod continuation;
pub mod executor;
pub mod future;

pub use continuation::ContinuationRequest;
pub use executor::{Executor, JoinHandle};
pub use future::{block_on, join_all, JoinAll};

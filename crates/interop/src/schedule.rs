//! An `MPIX_Schedule`-style rounds API (paper Section 5.3) built on the
//! extension APIs.
//!
//! The MPIX_Schedule proposal expresses "a series of coordinated MPI
//! operations similar to a nonblocking MPI collective" as rounds of
//! operations committed into one request. The paper's critique — it lacks
//! a progress mechanism of its own and cannot host non-MPI operations —
//! is answered here by *implementing* it on `MPIX_Async`: operations are
//! arbitrary request-producing closures, and progression rides the
//! stream's collated progress.

use mpfa_core::{AsyncPoll, Request, Status, Stream};

/// A deferred operation: invoked when its round starts, yields the request
/// tracking it. Closures may capture communicators, buffers, anything —
/// including non-MPI work wrapped in a request (the flexibility the
/// original proposal lacked).
pub type OpFn = Box<dyn FnOnce() -> Request + Send>;

/// Builder for a rounds-structured schedule
/// (`MPIX_Schedule_create` … `MPIX_Schedule_commit`).
#[derive(Default)]
pub struct ScheduleBuilder {
    rounds: Vec<Vec<OpFn>>,
}

impl ScheduleBuilder {
    /// `MPIX_Schedule_create`.
    pub fn new() -> ScheduleBuilder {
        ScheduleBuilder {
            rounds: vec![Vec::new()],
        }
    }

    /// `MPIX_Schedule_add_operation`: append an operation to the current
    /// round. All operations of a round start together.
    pub fn add_operation(&mut self, op: impl FnOnce() -> Request + Send + 'static) -> &mut Self {
        self.rounds
            .last_mut()
            .expect("builder has a round")
            .push(Box::new(op));
        self
    }

    /// `MPIX_Schedule_create_round`: subsequent operations start only
    /// after every operation of the previous round completed.
    pub fn create_round(&mut self) -> &mut Self {
        self.rounds.push(Vec::new());
        self
    }

    /// Number of rounds with at least one operation.
    pub fn round_count(&self) -> usize {
        self.rounds.iter().filter(|r| !r.is_empty()).count()
    }

    /// `MPIX_Schedule_commit`: launch the schedule on `stream`, returning
    /// the request that completes when the final round does.
    pub fn commit(self, stream: &Stream) -> Request {
        let (request, completer) = Request::pair(stream);
        let mut rounds: std::collections::VecDeque<Vec<OpFn>> =
            self.rounds.into_iter().filter(|r| !r.is_empty()).collect();
        let mut completer = Some(completer);
        let mut inflight: Vec<Request> = Vec::new();
        stream.async_start(move |_t| {
            if !inflight.is_empty() {
                if !Request::all_complete(&inflight) {
                    return AsyncPoll::Pending;
                }
                inflight.clear();
            }
            match rounds.pop_front() {
                Some(ops) => {
                    inflight = ops.into_iter().map(|op| op()).collect();
                    AsyncPoll::Progress
                }
                None => {
                    if let Some(c) = completer.take() {
                        c.complete(Status::empty());
                    }
                    AsyncPoll::Done
                }
            }
        });
        request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::sync::Mutex;
    use std::sync::Arc;

    /// An operation completing after `polls` probe calls, logging its
    /// start into `log`.
    fn op(
        stream: &Stream,
        label: &'static str,
        log: Arc<Mutex<Vec<&'static str>>>,
    ) -> impl FnOnce() -> Request + Send + 'static {
        let stream = stream.clone();
        move || {
            log.lock().push(label);
            let (req, completer) = Request::pair(&stream);
            let mut countdown = 3;
            let mut completer = Some(completer);
            stream.async_start(move |_t| {
                countdown -= 1;
                if countdown == 0 {
                    completer.take().expect("once").complete_empty();
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
            req
        }
    }

    #[test]
    fn rounds_execute_in_order() {
        let stream = Stream::create();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut b = ScheduleBuilder::new();
        b.add_operation(op(&stream, "a1", log.clone()));
        b.add_operation(op(&stream, "a2", log.clone()));
        b.create_round();
        b.add_operation(op(&stream, "b1", log.clone()));
        b.create_round();
        b.add_operation(op(&stream, "c1", log.clone()));
        assert_eq!(b.round_count(), 3);
        let req = b.commit(&stream);
        req.wait();
        let log = log.lock();
        assert_eq!(&*log, &["a1", "a2", "b1", "c1"]);
    }

    #[test]
    fn round_barrier_is_respected() {
        // Round 2 must not start until round 1's slow op finishes.
        let stream = Stream::create();
        let round1_done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let violation = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut b = ScheduleBuilder::new();
        let r1 = round1_done.clone();
        let s1 = stream.clone();
        b.add_operation(move || {
            let (req, completer) = Request::pair(&s1);
            let mut polls = 0;
            let mut completer = Some(completer);
            let r1 = r1.clone();
            s1.async_start(move |_t| {
                polls += 1;
                if polls >= 10 {
                    r1.store(true, std::sync::atomic::Ordering::Release);
                    completer.take().expect("once").complete_empty();
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
            req
        });
        b.create_round();
        let r1 = round1_done.clone();
        let v = violation.clone();
        let s2 = stream.clone();
        b.add_operation(move || {
            if !r1.load(std::sync::atomic::Ordering::Acquire) {
                v.store(true, std::sync::atomic::Ordering::Release);
            }
            Request::completed(&s2, Status::empty())
        });
        let req = b.commit(&stream);
        req.wait();
        assert!(!violation.load(std::sync::atomic::Ordering::Acquire));
    }

    #[test]
    fn empty_schedule_completes() {
        let stream = Stream::create();
        let req = ScheduleBuilder::new().commit(&stream);
        let status = req.wait();
        assert!(!status.cancelled);
    }

    #[test]
    fn empty_rounds_are_skipped() {
        let stream = Stream::create();
        let mut b = ScheduleBuilder::new();
        b.create_round();
        b.create_round();
        let log = Arc::new(Mutex::new(Vec::new()));
        b.add_operation(op(&stream, "only", log.clone()));
        let req = b.commit(&stream);
        req.wait();
        assert_eq!(&*log.lock(), &["only"]);
    }
}

//! Request-completion callbacks via an `is_complete` scan — the paper's
//! Listing 1.6 and the "poor man's" event-driven layer of Section 4.5.
//!
//! One `MPIX_Async` hook scans a registry of watched requests with the
//! side-effect-free `MPIX_Request_is_complete`; when one flips, its
//! callback fires. The paper measures the scan's overhead in Figure 12:
//! "the overhead remains within the measurement noise when there are fewer
//! than 256 pending requests."

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Request, Status, Stream};

type Callback = Box<dyn FnOnce(Status) + Send>;

struct Shared {
    watched: Mutex<Vec<(Request, Callback)>>,
    pending: AtomicUsize,
    hook_live: Mutex<bool>,
    stream: Stream,
}

/// Fires callbacks when watched requests complete (Listing 1.6).
#[derive(Clone)]
pub struct CompletionNotifier {
    shared: Arc<Shared>,
}

impl CompletionNotifier {
    /// A notifier whose scan hook runs on `stream`.
    pub fn new(stream: &Stream) -> CompletionNotifier {
        CompletionNotifier {
            shared: Arc::new(Shared {
                watched: Mutex::new(Vec::new()),
                pending: AtomicUsize::new(0),
                hook_live: Mutex::new(false),
                stream: stream.clone(),
            }),
        }
    }

    /// Watch `req`; `cb` fires (from inside stream progress) once the
    /// request completes.
    pub fn watch(&self, req: Request, cb: impl FnOnce(Status) + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::Release);
        self.shared.watched.lock().push((req, Box::new(cb)));
        self.ensure_hook();
    }

    /// Requests still being watched.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    fn ensure_hook(&self) {
        let mut live = self.shared.hook_live.lock();
        if *live {
            return;
        }
        *live = true;
        let shared = self.shared.clone();
        self.shared.stream.async_start(move |_t| {
            // The dummy_poll scan of Listing 1.6: a for-loop of
            // MPIX_Request_is_complete over the watch list.
            let mut fired: Vec<(Status, Callback)> = Vec::new();
            let retire = {
                let mut watched = shared.watched.lock();
                let mut i = 0;
                while i < watched.len() {
                    if watched[i].0.is_complete() {
                        let (req, cb) = watched.swap_remove(i);
                        let status = req.status().expect("complete implies status");
                        fired.push((status, cb));
                    } else {
                        i += 1;
                    }
                }
                if watched.is_empty() {
                    *shared.hook_live.lock() = false;
                    true
                } else {
                    false
                }
            };
            let n = fired.len();
            if n > 0 {
                shared.pending.fetch_sub(n, Ordering::Release);
                for (status, cb) in fired {
                    cb(status);
                }
            }
            if retire {
                AsyncPoll::Done
            } else if n > 0 {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::CompletionCounter;

    #[test]
    fn callback_fires_on_completion() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let (req, completer) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        notifier.watch(req, move |status| {
            assert_eq!(status.tag, 9);
            f.done();
        });
        // Not complete yet: scans find nothing.
        for _ in 0..10 {
            stream.progress();
        }
        assert_eq!(fired.remaining(), 1);
        completer.complete(Status {
            source: 0,
            tag: 9,
            bytes: 0,
            cancelled: false,
        });
        assert!(stream.progress_until(|| fired.is_zero(), 1.0));
        assert_eq!(notifier.pending(), 0);
    }

    #[test]
    fn many_requests_fire_independently() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let n = 64;
        let fired = CompletionCounter::new(n);
        let mut completers = Vec::new();
        for _ in 0..n {
            let (req, c) = Request::pair(&stream);
            let f = fired.clone();
            notifier.watch(req, move |_| f.done());
            completers.push(c);
        }
        // Complete in reverse order; all callbacks must fire.
        for c in completers.into_iter().rev() {
            c.complete_empty();
        }
        assert!(stream.progress_until(|| fired.is_zero(), 1.0));
    }

    #[test]
    fn notifier_hook_retires_when_empty() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let (req, completer) = Request::pair(&stream);
        notifier.watch(req, |_| {});
        completer.complete_empty();
        assert!(stream.progress_until(|| notifier.pending() == 0, 1.0));
        stream.progress();
        assert_eq!(stream.pending_tasks(), 0);
        // Re-arm works.
        let (req2, c2) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        notifier.watch(req2, move |_| f.done());
        c2.complete_empty();
        assert!(stream.progress_until(|| fired.is_zero(), 1.0));
    }

    #[test]
    fn callback_receives_cancelled_status() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let (req, completer) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        notifier.watch(req, move |status| {
            assert!(status.cancelled);
            f.done();
        });
        drop(completer); // abandoned => cancelled
        assert!(stream.progress_until(|| fired.is_zero(), 1.0));
    }
}

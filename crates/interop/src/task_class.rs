//! Async task classes — the paper's Listing 1.4.
//!
//! Polling every pending task individually makes event-response latency
//! grow with the number of pending tasks (Figure 7). When the application
//! knows its tasks complete in order, it can register a *single* progress
//! hook that checks only the task at the head of a queue; latency then
//! stays constant regardless of queue depth (Figure 10).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Stream};

/// One queued task: a readiness probe and a completion action.
struct Entry {
    ready: Box<dyn FnMut() -> bool + Send>,
    on_done: Box<dyn FnOnce() + Send>,
}

struct Shared {
    queue: Mutex<VecDeque<Entry>>,
    pending: AtomicUsize,
    /// True while a class_poll hook is registered on the stream.
    hook_live: Mutex<bool>,
    stream: Stream,
}

/// An ordered task class progressed by one `MPIX_Async` hook.
///
/// Tasks must become ready in FIFO order (the Listing 1.4 assumption:
/// "all tasks are to be completed in order"); the hook only ever probes
/// the head of the queue.
#[derive(Clone)]
pub struct TaskClass {
    shared: Arc<Shared>,
}

impl TaskClass {
    /// Create a task class progressed on `stream`.
    pub fn new(stream: &Stream) -> TaskClass {
        TaskClass {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                pending: AtomicUsize::new(0),
                hook_live: Mutex::new(false),
                stream: stream.clone(),
            }),
        }
    }

    /// Enqueue a task: `ready` is probed (head-of-queue only) from inside
    /// stream progress; `on_done` runs when it reports true.
    ///
    /// Registers the single class hook on demand (the Listing 1.4
    /// `MPIX_Async_start(class_poll, head)` moment).
    pub fn push(
        &self,
        ready: impl FnMut() -> bool + Send + 'static,
        on_done: impl FnOnce() + Send + 'static,
    ) {
        self.shared.pending.fetch_add(1, Ordering::Release);
        self.shared.queue.lock().push_back(Entry {
            ready: Box::new(ready),
            on_done: Box::new(on_done),
        });
        self.ensure_hook();
    }

    /// Tasks not yet completed.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    fn ensure_hook(&self) {
        let mut live = self.shared.hook_live.lock();
        if *live {
            return;
        }
        *live = true;
        let shared = self.shared.clone();
        self.shared.stream.async_start(move |_t| {
            // The class_poll of Listing 1.4: drain ready heads, one hook
            // for the whole queue.
            let mut fired = Vec::new();
            let retire = {
                let mut queue = shared.queue.lock();
                while let Some(head) = queue.front_mut() {
                    if (head.ready)() {
                        let entry = queue.pop_front().expect("head exists");
                        fired.push(entry.on_done);
                    } else {
                        break;
                    }
                }
                if queue.is_empty() {
                    // Retire the hook; a later push re-registers. The
                    // hook_live flag flips under the queue lock so a
                    // concurrent push cannot observe a live-but-retiring
                    // hook.
                    *shared.hook_live.lock() = false;
                    true
                } else {
                    false
                }
            };
            // Callbacks run with no class locks held (they may push).
            let n = fired.len();
            if n > 0 {
                shared.pending.fetch_sub(n, Ordering::Release);
                for f in fired {
                    f();
                }
            }
            if retire {
                AsyncPoll::Done
            } else if n > 0 {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::wtime;

    #[test]
    fn tasks_fire_in_order() {
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let l = log.clone();
            class.push(move || true, move || l.lock().push(i));
        }
        assert_eq!(class.pending(), 5);
        assert!(stream.progress_until(|| class.pending() == 0, 1.0));
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn head_blocks_tail() {
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fired = Arc::new(AtomicUsize::new(0));
        let g = gate.clone();
        let f1 = fired.clone();
        class.push(
            move || g.load(Ordering::Acquire),
            move || {
                f1.fetch_add(1, Ordering::Relaxed);
            },
        );
        let f2 = fired.clone();
        // Tail is "ready" immediately but must wait for the head.
        class.push(
            move || true,
            move || {
                f2.fetch_add(1, Ordering::Relaxed);
            },
        );
        for _ in 0..100 {
            stream.progress();
        }
        assert_eq!(fired.load(Ordering::Relaxed), 0, "tail fired before head");
        gate.store(true, Ordering::Release);
        assert!(stream.progress_until(|| class.pending() == 0, 1.0));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hook_retires_and_restarts() {
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        class.push(|| true, || {});
        assert!(stream.progress_until(|| class.pending() == 0, 1.0));
        assert_eq!(stream.pending_tasks(), 0, "class hook retired");
        // Push again: hook must come back.
        class.push(|| true, || {});
        assert!(stream.progress_until(|| class.pending() == 0, 1.0));
        assert_eq!(stream.pending_tasks(), 0);
    }

    #[test]
    fn timed_tasks_complete_at_deadlines() {
        // The actual Listing 1.4 workload: deadline-ordered dummy tasks.
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        let base = wtime();
        let completions = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let deadline = base + 0.001 * (i + 1) as f64;
            let c = completions.clone();
            class.push(
                move || wtime() >= deadline,
                move || c.lock().push(wtime() - deadline),
            );
        }
        assert!(stream.progress_until(|| class.pending() == 0, 5.0));
        let lats = completions.lock();
        assert_eq!(lats.len(), 10);
        for &l in lats.iter() {
            assert!(l >= 0.0, "fired before deadline");
        }
    }

    #[test]
    fn many_tasks_one_stream_hook() {
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        for _ in 0..1000 {
            class.push(|| true, || {});
        }
        // Only ONE async task serves the whole queue.
        assert_eq!(stream.pending_tasks(), 1);
        assert!(stream.progress_until(|| class.pending() == 0, 5.0));
    }
}

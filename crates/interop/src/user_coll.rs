//! User-level collective algorithms via `MPIX_Async` — the paper's
//! Listing 1.8 and Section 4.7.
//!
//! [`my_allreduce`] is the paper's custom allreduce, faithfully including
//! its deliberate shortcuts: `i32` elements only, sum only, power-of-two
//! rank counts only, in-place buffers. Those restrictions are the point —
//! "custom code ... can leverage specific contexts from the application to
//! avoid complexities and achieve greater efficiency" — and Figure 13
//! measures this function against the fully general native
//! `MPI_Iallreduce`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Request};
use mpfa_mpi::{Comm, MpiError, MpiResult, RecvRequest};

/// Internal tag for user-level collectives (runs on the regular
/// point-to-point context, like any user code would).
const MYALLREDUCE_TAG: i32 = 0x7eef;
const MYBARRIER_TAG: i32 = 0x7ee0;

/// Completion handle of a user-level collective: a shared done flag plus
/// the result buffer (the `done_ptr` of Listing 1.8, made safe).
pub struct UserCollFuture<T> {
    done: Arc<AtomicBool>,
    buf: Arc<Mutex<Vec<T>>>,
}

impl<T> UserCollFuture<T> {
    /// Has the algorithm finished? (One atomic read.)
    pub fn is_complete(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Take the result after completion.
    ///
    /// # Panics
    /// Panics if not complete.
    pub fn take(self) -> Vec<T> {
        assert!(self.is_complete(), "UserCollFuture::take before completion");
        std::mem::take(&mut *self.buf.lock())
    }
}

/// One round's state of the recursive-doubling loop — the `reqs[2]` of
/// Listing 1.8.
struct RoundReqs {
    send: Request,
    recv: RecvRequest<i32>,
}

/// Nonblocking user-level allreduce (Listing 1.8): recursive doubling,
/// `i32` + sum only, power-of-two communicator sizes only.
///
/// The poll function runs inside `MPIX_Stream_progress` on the
/// communicator's stream and uses only `is_complete` queries — never
/// recursive progress — to track its per-round requests.
pub fn my_iallreduce(comm: &Comm, buf: Vec<i32>) -> MpiResult<UserCollFuture<i32>> {
    let size = comm.size();
    if !size.is_power_of_two() {
        return Err(MpiError::Protocol(
            "my_allreduce only supports power-of-two communicator sizes".into(),
        ));
    }
    let done = Arc::new(AtomicBool::new(false));
    let out = Arc::new(Mutex::new(Vec::new()));
    let fut = UserCollFuture {
        done: done.clone(),
        buf: out.clone(),
    };

    if size == 1 {
        *out.lock() = buf;
        done.store(true, Ordering::Release);
        return Ok(fut);
    }

    let comm = comm.clone();
    let rank = comm.rank();
    let count = buf.len();
    let mut acc = buf;
    let mut mask = 1usize;
    let mut reqs: Option<RoundReqs> = None;
    // First round issued eagerly at initiation (the paper's My_Allreduce
    // calls MPIX_Async_start and the first poll issues round one; issuing
    // here saves one progress lap and matches the measured structure).
    let stream = comm.stream().clone();
    stream.async_start(move |_t| {
        if let Some(round) = &reqs {
            if !(round.send.is_complete() && round.recv.is_complete()) {
                return AsyncPoll::Pending;
            }
            // Fold the partner's contribution. Hardcoded i32 `+`: no
            // datatype dispatch, no op function call.
            let round = reqs.take().expect("present");
            let (tmp, _) = round.recv.take();
            for (x, y) in acc.iter_mut().zip(&tmp) {
                *x += *y;
            }
            mask <<= 1;
        }
        if mask >= size {
            *out.lock() = std::mem::take(&mut acc);
            done.store(true, Ordering::Release);
            return AsyncPoll::Done;
        }
        let dst = (rank as usize ^ mask) as i32;
        let recv = comm
            .irecv::<i32>(count, dst, MYALLREDUCE_TAG)
            .expect("valid partner");
        let send = comm
            .isend(&acc, dst, MYALLREDUCE_TAG)
            .expect("valid partner");
        reqs = Some(RoundReqs { send, recv });
        AsyncPoll::Progress
    });
    Ok(fut)
}

/// Blocking user-level allreduce — the `My_Allreduce` of Listing 1.8:
/// initiate, then `while (!done) MPIX_Stream_progress(...)`.
pub fn my_allreduce(comm: &Comm, buf: Vec<i32>) -> MpiResult<Vec<i32>> {
    let fut = my_iallreduce(comm, buf)?;
    let stream = comm.stream().clone();
    while !fut.is_complete() {
        stream.progress();
    }
    Ok(fut.take())
}

/// Nonblocking user-level dissemination barrier via `MPIX_Async` — same
/// pattern, zero payload.
pub fn my_ibarrier(comm: &Comm) -> MpiResult<UserCollFuture<i32>> {
    let size = comm.size();
    let done = Arc::new(AtomicBool::new(false));
    let out = Arc::new(Mutex::new(Vec::new()));
    let fut = UserCollFuture {
        done: done.clone(),
        buf: out,
    };
    if size == 1 {
        done.store(true, Ordering::Release);
        return Ok(fut);
    }
    let comm = comm.clone();
    let rank = comm.rank();
    let mut round = 0u32;
    let nrounds = usize::BITS - (size - 1).leading_zeros();
    let mut reqs: Option<(Request, RecvRequest<i32>)> = None;
    let stream = comm.stream().clone();
    stream.async_start(move |_t| {
        if let Some((s, r)) = &reqs {
            if !(s.is_complete() && r.is_complete()) {
                return AsyncPoll::Pending;
            }
            reqs = None;
            round += 1;
        }
        if round >= nrounds {
            done.store(true, Ordering::Release);
            return AsyncPoll::Done;
        }
        let sizei = size as i32;
        let dist = 1i32 << round;
        let dst = (rank + dist).rem_euclid(sizei);
        let src = (rank - dist).rem_euclid(sizei);
        let recv = comm
            .irecv::<i32>(0, src, MYBARRIER_TAG + round as i32)
            .expect("valid peer");
        let send = comm
            .isend::<i32>(&[], dst, MYBARRIER_TAG + round as i32)
            .expect("valid peer");
        reqs = Some((send, recv));
        AsyncPoll::Progress
    });
    Ok(fut)
}

/// Blocking user-level barrier.
pub fn my_barrier(comm: &Comm) -> MpiResult<()> {
    let fut = my_ibarrier(comm)?;
    let stream = comm.stream().clone();
    while !fut.is_complete() {
        stream.progress();
    }
    Ok(())
}

const MYBCAST_TAG: i32 = 0x7ee1;

/// Nonblocking user-level binomial broadcast via `MPIX_Async`: the root
/// passes `Some(data)`, others pass `None` with the expected `count`.
/// Root fixed at rank 0 (a deliberate Listing-1.8-style shortcut).
pub fn my_ibcast(
    comm: &Comm,
    data: Option<Vec<i32>>,
    count: usize,
) -> MpiResult<UserCollFuture<i32>> {
    let size = comm.size();
    let rank = comm.rank() as usize;
    let done = Arc::new(AtomicBool::new(false));
    let out = Arc::new(Mutex::new(Vec::new()));
    let fut = UserCollFuture {
        done: done.clone(),
        buf: out.clone(),
    };

    let is_root = rank == 0;
    let buf = match (is_root, data) {
        (true, Some(d)) => {
            if d.len() != count {
                return Err(MpiError::CountMismatch {
                    got: d.len(),
                    expected: count,
                });
            }
            d
        }
        (true, None) => {
            return Err(MpiError::CountMismatch {
                got: 0,
                expected: count,
            })
        }
        (false, _) => Vec::new(),
    };
    if size == 1 {
        *out.lock() = buf;
        done.store(true, Ordering::Release);
        return Ok(fut);
    }

    // Binomial peers (root-relative == absolute, root is 0).
    let mut mask = 1usize;
    let mut recv_from: Option<usize> = None;
    while mask < size {
        if rank & mask != 0 {
            recv_from = Some(rank - mask);
            break;
        }
        mask <<= 1;
    }
    let mut dsts = Vec::new();
    let mut m = mask >> 1;
    while m > 0 {
        if rank + m < size {
            dsts.push(rank + m);
        }
        m >>= 1;
    }

    let comm = comm.clone();
    let stream = comm.stream().clone();
    let mut payload = buf;
    let mut recv: Option<RecvRequest<i32>> = recv_from
        .map(|src| comm.irecv::<i32>(count, src as i32, MYBCAST_TAG))
        .transpose()?;
    let mut sends: Option<Vec<Request>> = None;
    if recv.is_none() {
        // Root forwards immediately.
        sends = Some(
            dsts.iter()
                .map(|&d| comm.isend(&payload, d as i32, MYBCAST_TAG))
                .collect::<MpiResult<_>>()?,
        );
    }
    stream.async_start(move |_t| {
        if let Some(r) = &recv {
            if !r.is_complete() {
                return AsyncPoll::Pending;
            }
            payload = recv.take().expect("present").take().0;
            match dsts
                .iter()
                .map(|&d| comm.isend(&payload, d as i32, MYBCAST_TAG))
                .collect::<MpiResult<Vec<_>>>()
            {
                Ok(s) => sends = Some(s),
                Err(_) => unreachable!("peers validated"),
            }
        }
        let all_sent = sends
            .as_ref()
            .map(|s| Request::all_complete(s))
            .unwrap_or(true);
        if !all_sent {
            return AsyncPoll::Pending;
        }
        *out.lock() = std::mem::take(&mut payload);
        done.store(true, Ordering::Release);
        AsyncPoll::Done
    });
    Ok(fut)
}

/// Blocking user-level broadcast from rank 0.
pub fn my_bcast(comm: &Comm, data: Option<Vec<i32>>, count: usize) -> MpiResult<Vec<i32>> {
    let fut = my_ibcast(comm, data, count)?;
    let stream = comm.stream().clone();
    while !fut.is_complete() {
        stream.progress();
    }
    Ok(fut.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_mpi::{Op, Proc, World, WorldConfig};

    fn run_ranks<R: Send>(n: usize, f: impl Fn(Proc) -> R + Send + Sync) -> Vec<R> {
        let procs = World::init(WorldConfig::instant(n));
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = procs.into_iter().map(|p| s.spawn(move || f(p))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }

    #[test]
    fn my_allreduce_matches_sum() {
        for n in [1, 2, 4, 8, 16] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                my_allreduce(&comm, vec![proc.rank() as i32 + 1, 5]).unwrap()
            });
            let total: i32 = (1..=n as i32).sum();
            for out in results {
                assert_eq!(out, vec![total, 5 * n as i32], "n={n}");
            }
        }
    }

    #[test]
    fn my_allreduce_rejects_non_pof2() {
        let results = run_ranks(3, |proc| {
            let comm = proc.world_comm();
            my_iallreduce(&comm, vec![1]).is_err()
        });
        assert!(results.iter().all(|&e| e));
    }

    #[test]
    fn my_allreduce_agrees_with_native() {
        let results = run_ranks(8, |proc| {
            let comm = proc.world_comm();
            let data: Vec<i32> = (0..32).map(|i| i * (proc.rank() as i32 + 1)).collect();
            let native = comm.allreduce(&data, Op::Sum).unwrap();
            let user = my_allreduce(&comm, data).unwrap();
            (native, user)
        });
        for (native, user) in results {
            assert_eq!(native, user);
        }
    }

    #[test]
    fn my_barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let entered = Arc::new(AtomicUsize::new(0));
        let e = entered.clone();
        let results = run_ranks(4, move |proc| {
            let comm = proc.world_comm();
            if proc.rank() == 0 {
                let t0 = mpfa_core::wtime();
                while mpfa_core::wtime() - t0 < 0.005 {
                    std::hint::spin_loop();
                }
            }
            e.fetch_add(1, Ordering::SeqCst);
            my_barrier(&comm).unwrap();
            e.load(Ordering::SeqCst)
        });
        for seen in results {
            assert_eq!(seen, 4);
        }
    }

    #[test]
    fn my_bcast_delivers_everywhere() {
        for n in [1, 2, 3, 5, 8] {
            let results = run_ranks(n, |proc| {
                let comm = proc.world_comm();
                if proc.rank() == 0 {
                    my_bcast(&comm, Some(vec![7, 8, 9]), 3).unwrap()
                } else {
                    my_bcast(&comm, None, 3).unwrap()
                }
            });
            for out in results {
                assert_eq!(out, vec![7, 8, 9], "n={n}");
            }
        }
    }

    #[test]
    fn my_bcast_root_needs_data() {
        let results = run_ranks(1, |proc| {
            let comm = proc.world_comm();
            my_ibcast(&comm, None, 3).is_err()
        });
        assert!(results[0]);
    }

    #[test]
    fn my_bcast_agrees_with_native() {
        let results = run_ranks(6, |proc| {
            let comm = proc.world_comm();
            let mut native = if proc.rank() == 0 {
                vec![1i32, 2, 3, 4]
            } else {
                Vec::new()
            };
            comm.bcast(&mut native, 4, 0).unwrap();
            let user = if proc.rank() == 0 {
                my_bcast(&comm, Some(vec![1, 2, 3, 4]), 4).unwrap()
            } else {
                my_bcast(&comm, None, 4).unwrap()
            };
            native == user
        });
        assert!(results.iter().all(|&eq| eq));
    }

    #[test]
    fn nonblocking_user_allreduce_with_explicit_progress() {
        let results = run_ranks(4, |proc| {
            let comm = proc.world_comm();
            let fut = my_iallreduce(&comm, vec![1i32]).unwrap();
            // The §3.5 scheme: compute, then progress to completion.
            let mut acc = 0u64;
            for i in 0..100 {
                acc = acc.wrapping_add(i);
            }
            while !fut.is_complete() {
                comm.stream().progress();
            }
            (fut.take()[0], acc)
        });
        for (v, _) in results {
            assert_eq!(v, 4);
        }
    }
}

//! An `MPIX_Continue`-style API (paper Section 5.4) built entirely on the
//! extension APIs.
//!
//! `MPIX_Continue_init` creates a *continuation request*; operation
//! requests are attached with a callback; the continuation request
//! completes when all attached continuations have fired. The paper notes
//! the proposal's semantics can be emulated with `MPIX_Async` +
//! `MPIX_Request_is_complete` at the cost of an extra scan — this module
//! is that emulation (the comparator for related-work discussion and the
//! A3 ablation bench).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{Completer, Request, Status, Stream};

use crate::callbacks::CompletionNotifier;

struct CtxState {
    /// Continuations attached but not yet fired.
    outstanding: AtomicUsize,
    /// Set once the user starts waiting (MPIX semantics: the continuation
    /// request completes only after it has been started and everything
    /// attached has fired).
    started: AtomicBool,
    completer: Mutex<Option<Completer>>,
}

/// A continuation context — `MPIX_Continue_init`'s `cont_req`.
pub struct ContinuationContext {
    notifier: CompletionNotifier,
    state: Arc<CtxState>,
    request: Request,
}

impl ContinuationContext {
    /// `MPIX_Continue_init`: a fresh continuation request on `stream`.
    pub fn new(stream: &Stream) -> ContinuationContext {
        let (request, completer) = Request::pair(stream);
        ContinuationContext {
            notifier: CompletionNotifier::new(stream),
            state: Arc::new(CtxState {
                outstanding: AtomicUsize::new(0),
                started: AtomicBool::new(false),
                completer: Mutex::new(Some(completer)),
            }),
            request,
        }
    }

    /// `MPIX_Continue`: attach `cb` to `op_request`; it fires from stream
    /// progress when the operation completes.
    pub fn attach(&self, op_request: Request, cb: impl FnOnce(Status) + Send + 'static) {
        self.state.outstanding.fetch_add(1, Ordering::AcqRel);
        let state = self.state.clone();
        self.notifier.watch(op_request, move |status| {
            cb(status);
            let left = state.outstanding.fetch_sub(1, Ordering::AcqRel) - 1;
            if left == 0 && state.started.load(Ordering::Acquire) {
                if let Some(c) = state.completer.lock().take() {
                    c.complete(Status::empty());
                }
            }
        });
    }

    /// `MPIX_Continueall`: attach one callback to a set of requests; it
    /// fires once, after all of them complete.
    pub fn attach_all(
        &self,
        op_requests: Vec<Request>,
        cb: impl FnOnce(Vec<Status>) + Send + 'static,
    ) {
        let n = op_requests.len();
        if n == 0 {
            cb(Vec::new());
            return;
        }
        let statuses: Arc<Mutex<Vec<Option<Status>>>> = Arc::new(Mutex::new(vec![None; n]));
        let remaining = Arc::new(AtomicUsize::new(n));
        let cb = Arc::new(Mutex::new(Some(cb)));
        for (i, req) in op_requests.into_iter().enumerate() {
            let statuses = statuses.clone();
            let remaining = remaining.clone();
            let cb = cb.clone();
            self.attach(req, move |status| {
                statuses.lock()[i] = Some(status);
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let collected: Vec<Status> = statuses
                        .lock()
                        .iter()
                        .map(|s| s.expect("all statuses recorded"))
                        .collect();
                    if let Some(f) = cb.lock().take() {
                        f(collected);
                    }
                }
            });
        }
    }

    /// Start the continuation request: it will complete once every
    /// attached continuation has fired. Returns the waitable request.
    pub fn start(&self) -> Request {
        self.state.started.store(true, Ordering::Release);
        if self.state.outstanding.load(Ordering::Acquire) == 0 {
            if let Some(c) = self.state.completer.lock().take() {
                c.complete(Status::empty());
            }
        }
        self.request.clone()
    }

    /// Continuations attached but not yet fired.
    pub fn outstanding(&self) -> usize {
        self.state.outstanding.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::CompletionCounter;

    #[test]
    fn single_continuation_fires_and_completes() {
        let stream = Stream::create();
        let ctx = ContinuationContext::new(&stream);
        let (req, completer) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        ctx.attach(req, move |_| f.done());
        let cont_req = ctx.start();
        completer.complete_empty();
        let status = cont_req.wait();
        assert!(!status.cancelled);
        assert!(fired.is_zero());
        assert_eq!(ctx.outstanding(), 0);
    }

    #[test]
    fn start_with_nothing_attached_completes_immediately() {
        let stream = Stream::create();
        let ctx = ContinuationContext::new(&stream);
        let cont_req = ctx.start();
        assert!(cont_req.is_complete());
    }

    #[test]
    fn attach_all_fires_once_after_all() {
        let stream = Stream::create();
        let ctx = ContinuationContext::new(&stream);
        let mut reqs = Vec::new();
        let mut completers = Vec::new();
        for _ in 0..5 {
            let (r, c) = Request::pair(&stream);
            reqs.push(r);
            completers.push(c);
        }
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        ctx.attach_all(reqs, move |statuses| {
            assert_eq!(statuses.len(), 5);
            f.done();
        });
        let cont_req = ctx.start();
        // Complete all but one: callback must not fire.
        let last = completers.pop().unwrap();
        for c in completers {
            c.complete_empty();
        }
        for _ in 0..20 {
            stream.progress();
        }
        assert_eq!(fired.remaining(), 1);
        last.complete_empty();
        cont_req.wait();
        assert!(fired.is_zero());
    }

    #[test]
    fn callbacks_fire_even_before_start() {
        // MPIX_Continue semantics: continuations execute as requests
        // complete; `start` only gates the continuation request itself.
        let stream = Stream::create();
        let ctx = ContinuationContext::new(&stream);
        let (req, completer) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        ctx.attach(req, move |_| f.done());
        completer.complete_empty();
        assert!(stream.progress_until(|| fired.is_zero(), 1.0));
        // Continuation request still incomplete until started.
        let cont_req = ctx.start();
        assert!(cont_req.is_complete());
    }
}

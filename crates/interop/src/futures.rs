//! Rust `async`/`await` over MPI requests — the paper's Section 2.2
//! observation made concrete: "the async/await syntax in some programming
//! languages provides a concise method to describe the wait patterns in a
//! task", and interoperable progress is what lets an MPI implementation
//! participate.
//!
//! [`RequestFuture`] adapts a [`Request`] to `std::future::Future`: its
//! waker is woken from a completion callback that runs inside stream
//! progress (the `CompletionNotifier` scan of Listing 1.6). [`block_on`]
//! is a minimal single-future executor whose "idle loop" is exactly one
//! call: `MPIX_Stream_progress`.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use mpfa_core::{Request, Status, Stream};

use crate::callbacks::CompletionNotifier;

/// A [`Request`] as a `Future` resolving to its [`Status`].
pub struct RequestFuture {
    req: Request,
    notifier: CompletionNotifier,
    registered: bool,
}

impl RequestFuture {
    /// Wrap `req`; completion wakeups are delivered through `notifier`
    /// (whose scan hook must run on a stream somebody progresses).
    pub fn new(req: Request, notifier: &CompletionNotifier) -> RequestFuture {
        RequestFuture {
            req,
            notifier: notifier.clone(),
            registered: false,
        }
    }
}

impl Future for RequestFuture {
    type Output = Status;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(status) = self.req.status() {
            return Poll::Ready(status);
        }
        if !self.registered {
            self.registered = true;
            let waker = cx.waker().clone();
            self.notifier
                .watch(self.req.clone(), move |_status| waker.wake());
        }
        // Completion may have raced the registration; re-check so the
        // wake is never lost.
        match self.req.status() {
            Some(status) => Poll::Ready(status),
            None => Poll::Pending,
        }
    }
}

/// Await two futures concurrently (a tiny `join`).
pub async fn join2<A: Future, B: Future>(a: A, b: B) -> (A::Output, B::Output) {
    let mut a = Box::pin(a);
    let mut b = Box::pin(b);
    let mut out_a = None;
    let mut out_b = None;
    std::future::poll_fn(move |cx| {
        if out_a.is_none() {
            if let Poll::Ready(v) = a.as_mut().poll(cx) {
                out_a = Some(v);
            }
        }
        if out_b.is_none() {
            if let Poll::Ready(v) = b.as_mut().poll(cx) {
                out_b = Some(v);
            }
        }
        if out_a.is_some() && out_b.is_some() {
            Poll::Ready((out_a.take().expect("set"), out_b.take().expect("set")))
        } else {
            Poll::Pending
        }
    })
    .await
}

fn flag_waker(flag: Arc<AtomicBool>) -> Waker {
    unsafe fn clone(data: *const ()) -> RawWaker {
        unsafe {
            Arc::increment_strong_count(data as *const AtomicBool);
        }
        RawWaker::new(data, &VTABLE)
    }
    unsafe fn wake(data: *const ()) {
        let flag = unsafe { Arc::from_raw(data as *const AtomicBool) };
        flag.store(true, Ordering::Release);
    }
    unsafe fn wake_by_ref(data: *const ()) {
        unsafe { &*(data as *const AtomicBool) }.store(true, Ordering::Release);
    }
    unsafe fn drop_waker(data: *const ()) {
        drop(unsafe { Arc::from_raw(data as *const AtomicBool) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
    let raw = RawWaker::new(Arc::into_raw(flag) as *const (), &VTABLE);
    unsafe { Waker::from_raw(raw) }
}

/// Drive `future` to completion, progressing `stream` whenever the future
/// is pending — the §3.5 scheme with `async`/`await` ergonomics.
pub fn block_on<F: Future>(stream: &Stream, future: F) -> F::Output {
    let mut future = Box::pin(future);
    let woken = Arc::new(AtomicBool::new(true));
    let waker = flag_waker(woken.clone());
    let mut cx = Context::from_waker(&waker);
    loop {
        if woken.swap(false, Ordering::AcqRel) {
            if let Poll::Ready(v) = future.as_mut().poll(&mut cx) {
                return v;
            }
        }
        // The only blocking primitive: explicit stream progress. The
        // notifier's callback wakes us the moment a watched request
        // completes.
        stream.progress();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, AsyncPoll};

    fn timed_request(stream: &Stream, delay_s: f64) -> Request {
        let (req, completer) = Request::pair(stream);
        let deadline = wtime() + delay_s;
        let mut completer = Some(completer);
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                completer.take().expect("once").complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        req
    }

    #[test]
    fn await_single_request() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let req = timed_request(&stream, 0.001);
        let status = block_on(&stream, RequestFuture::new(req, &notifier));
        assert!(!status.cancelled);
    }

    #[test]
    fn await_already_complete_request() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let req = Request::completed(&stream, Status::empty());
        let status = block_on(&stream, RequestFuture::new(req, &notifier));
        assert!(!status.cancelled);
    }

    #[test]
    fn join_two_requests() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let fast = RequestFuture::new(timed_request(&stream, 0.0005), &notifier);
        let slow = RequestFuture::new(timed_request(&stream, 0.002), &notifier);
        let t0 = wtime();
        let (a, b) = block_on(&stream, join2(fast, slow));
        assert!(!a.cancelled && !b.cancelled);
        assert!(wtime() - t0 >= 0.002, "join must wait for the slow one");
    }

    #[test]
    fn async_block_composes_requests_sequentially() {
        let stream = Stream::create();
        let notifier = CompletionNotifier::new(&stream);
        let s2 = stream.clone();
        let n2 = notifier.clone();
        let out = block_on(&stream, async move {
            let st1 = RequestFuture::new(timed_request(&s2, 0.0005), &n2).await;
            // The second operation is issued only after the first resolves
            // (a Figure 2(c) multi-wait task, written linearly).
            let st2 = RequestFuture::new(timed_request(&s2, 0.0005), &n2).await;
            (st1.cancelled, st2.cancelled)
        });
        assert_eq!(out, (false, false));
    }
}

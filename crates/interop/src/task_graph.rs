//! A miniature task-graph (DAG) executor progressed by `MPIX_Async` — the
//! paper's task-based-runtime integration story (Sections 1, 2.7, 3.3).
//!
//! "An MPI collective can be viewed as a fixed task graph composed of
//! individual operations and their dependencies. By defining poll_fn, one
//! can advance a specific task graph ... within MPI progress." This module
//! generalizes that: arbitrary DAGs of user tasks, where each task may
//! issue asynchronous work (MPI operations, timers, anything producing a
//! [`Request`]) and successors start only when their predecessors finish.
//!
//! One `MPIX_Async` hook advances the whole graph: no progress thread, no
//! per-task request juggling, no test-yield cycles — the engine wakes the
//! graph exactly when the stream progresses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{AsyncPoll, Request, Stream};

/// Identifier of a node in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// A node's action: runs when all dependencies completed; returns the
/// request its completion is tracked by (return an already-complete
/// request for purely local work).
pub type NodeAction = Box<dyn FnOnce(&Stream) -> Request + Send>;

struct Node {
    action: Option<NodeAction>,
    deps_left: usize,
    dependents: Vec<usize>,
    inflight: Option<Request>,
    done: bool,
}

/// Builder for a DAG of asynchronous tasks.
#[derive(Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
    edges: HashMap<usize, Vec<usize>>, // dep -> dependents (pre-build)
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Add a task with dependencies. Panics if a dependency id is unknown
    /// (nodes must be added in topological order of declaration).
    pub fn add(
        &mut self,
        deps: &[NodeId],
        action: impl FnOnce(&Stream) -> Request + Send + 'static,
    ) -> NodeId {
        let id = self.nodes.len();
        for d in deps {
            assert!(d.0 < id, "dependency {:?} unknown (add nodes in order)", d);
            self.edges.entry(d.0).or_default().push(id);
        }
        self.nodes.push(Node {
            action: Some(Box::new(action)),
            deps_left: deps.len(),
            dependents: Vec::new(),
            inflight: None,
            done: false,
        });
        NodeId(id)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Launch the graph on `stream`. Returns a handle that reports
    /// completion of ALL nodes.
    pub fn launch(mut self, stream: &Stream) -> GraphHandle {
        // Freeze the dependent lists into the nodes.
        for (dep, dependents) in std::mem::take(&mut self.edges) {
            self.nodes[dep].dependents = dependents;
        }
        let total = self.nodes.len();
        let done_flag = Arc::new(AtomicBool::new(total == 0));
        let handle = GraphHandle {
            done: done_flag.clone(),
        };
        if total == 0 {
            return handle;
        }

        let state = Arc::new(Mutex::new(GraphState {
            nodes: self.nodes,
            remaining: total,
        }));
        let stream_for_actions = stream.clone();
        // Kick off the roots, then let one hook drive everything.
        {
            let mut st = state.lock();
            st.start_ready(&stream_for_actions);
        }
        let st = state;
        stream.async_start(move |_t| {
            let mut g = st.lock();
            let progressed = g.reap_and_start(&stream_for_actions);
            if g.remaining == 0 {
                done_flag.store(true, Ordering::Release);
                AsyncPoll::Done
            } else if progressed {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
        handle
    }
}

struct GraphState {
    nodes: Vec<Node>,
    remaining: usize,
}

impl GraphState {
    /// Start every node whose dependencies are satisfied and whose action
    /// has not run yet.
    fn start_ready(&mut self, stream: &Stream) -> bool {
        let mut any = false;
        for i in 0..self.nodes.len() {
            if self.nodes[i].deps_left == 0 && self.nodes[i].action.is_some() {
                let action = self.nodes[i].action.take().expect("checked");
                // The action may issue MPI ops / spawn async work; its
                // returned request tracks this node.
                self.nodes[i].inflight = Some(action(stream));
                any = true;
            }
        }
        any
    }

    /// Collect finished nodes (is_complete — no progress side effects,
    /// we are inside a poll), release dependents, start newly ready nodes.
    fn reap_and_start(&mut self, stream: &Stream) -> bool {
        let mut finished: Vec<usize> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.done {
                continue;
            }
            if let Some(req) = &node.inflight {
                if req.is_complete() {
                    node.done = true;
                    node.inflight = None;
                    finished.push(i);
                }
            }
        }
        let mut any = !finished.is_empty();
        for i in finished {
            self.remaining -= 1;
            let dependents = std::mem::take(&mut self.nodes[i].dependents);
            for d in dependents {
                self.nodes[d].deps_left -= 1;
            }
        }
        if self.start_ready(stream) {
            any = true;
        }
        any
    }
}

/// Completion handle of a launched [`TaskGraph`].
pub struct GraphHandle {
    done: Arc<AtomicBool>,
}

impl GraphHandle {
    /// True once every node has completed.
    pub fn is_complete(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Drive `stream` until the graph completes (or `timeout_s` passes).
    pub fn wait_on(&self, stream: &Stream, timeout_s: f64) -> bool {
        stream.progress_until(|| self.is_complete(), timeout_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, Status};

    /// A request completing after `delay_s` (deadline task on `stream`).
    fn timed_request(stream: &Stream, delay_s: f64) -> Request {
        let (req, completer) = Request::pair(stream);
        let deadline = wtime() + delay_s;
        let mut completer = Some(completer);
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                completer.take().expect("once").complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        req
    }

    fn instant_request(stream: &Stream) -> Request {
        Request::completed(stream, Status::empty())
    }

    #[test]
    fn empty_graph_is_complete_immediately() {
        let stream = Stream::create();
        let handle = TaskGraph::new().launch(&stream);
        assert!(handle.is_complete());
    }

    #[test]
    fn linear_chain_runs_in_order() {
        let stream = Stream::create();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..5 {
            let l = log.clone();
            let deps: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(g.add(&deps, move |s| {
                l.lock().push(i);
                timed_request(s, 0.0002)
            }));
        }
        let handle = g.launch(&stream);
        assert!(handle.wait_on(&stream, 5.0));
        assert_eq!(&*log.lock(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn diamond_joins_wait_for_both_branches() {
        let stream = Stream::create();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let l = log.clone();
        let a = g.add(&[], move |s| {
            l.lock().push("a");
            instant_request(s)
        });
        let l = log.clone();
        let b = g.add(&[a], move |s| {
            l.lock().push("b");
            timed_request(s, 0.001)
        });
        let l = log.clone();
        let c = g.add(&[a], move |s| {
            l.lock().push("c");
            timed_request(s, 0.0001)
        });
        let l = log.clone();
        let _d = g.add(&[b, c], move |s| {
            l.lock().push("d");
            instant_request(s)
        });
        let handle = g.launch(&stream);
        assert!(handle.wait_on(&stream, 5.0));
        let log = log.lock();
        assert_eq!(log[0], "a");
        assert_eq!(log[3], "d");
        assert!(log[1..3].contains(&"b") && log[1..3].contains(&"c"));
    }

    #[test]
    fn wide_fanout_all_execute() {
        let stream = Stream::create();
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        let root = g.add(&[], instant_request);
        for _ in 0..50 {
            let c = counter.clone();
            g.add(&[root], move |s| {
                c.fetch_add(1, Ordering::Relaxed);
                timed_request(s, 0.0001)
            });
        }
        let handle = g.launch(&stream);
        assert!(handle.wait_on(&stream, 5.0));
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic(expected = "dependency")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new();
        g.add(&[NodeId(3)], |s| Request::completed(s, Status::empty()));
    }
}

//! The Section 3.5 programming scheme: a progress engine decoupled from
//! task contexts.
//!
//! A [`ProgressEngine`] is a dedicated thread spinning
//! `MPIX_Stream_progress` on one stream. Tasks initiate operations and
//! synchronize on them with `MPIX_Request_is_complete` — never invoking
//! progress themselves — so "the additional latency that may occur from
//! synchronizing request objects between tasks and the progress engine is
//! avoided".
//!
//! Contrast with `mpfa_baselines::GlobalProgressThread`: that baseline
//! spins the *same* stream the application's blocking calls use, paying
//! lock contention (the paper's Section 5.1 critique); a `ProgressEngine`
//! on a dedicated stream contends with nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mpfa_core::{Request, Status, Stream};

use crate::callbacks::CompletionNotifier;

/// A dedicated progress thread over one stream, with an attached
/// completion notifier for event-driven reactions.
pub struct ProgressEngine {
    stream: Stream,
    notifier: CompletionNotifier,
    shutdown: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl ProgressEngine {
    /// Spawn the engine thread for `stream`.
    pub fn spawn(stream: Stream) -> ProgressEngine {
        let shutdown = Arc::new(AtomicBool::new(false));
        let iterations = Arc::new(AtomicU64::new(0));
        let notifier = CompletionNotifier::new(&stream);
        let thread = {
            let stream = stream.clone();
            let shutdown = shutdown.clone();
            let iterations = iterations.clone();
            std::thread::Builder::new()
                .name("mpfa-progress".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        stream.progress();
                        iterations.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn progress thread")
        };
        ProgressEngine {
            stream,
            notifier,
            shutdown,
            iterations,
            thread: Some(thread),
        }
    }

    /// The stream this engine drives.
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Progress iterations completed so far (diagnostics).
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Register a completion callback (fires on the engine thread).
    pub fn on_complete(&self, req: Request, cb: impl FnOnce(Status) + Send + 'static) {
        self.notifier.watch(req, cb);
    }

    /// Busy-wait (without invoking progress — the engine does that) until
    /// `req` completes. This is a task-side wait block in the §3.5 scheme.
    pub fn await_request(&self, req: &Request) -> Status {
        while !req.is_complete() {
            std::hint::spin_loop();
        }
        req.status().expect("complete")
    }

    /// Stop and join the engine thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().expect("progress thread panicked");
        }
    }
}

impl Drop for ProgressEngine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, AsyncPoll, CompletionCounter};

    #[test]
    fn engine_drives_async_tasks_without_caller_progress() {
        let stream = Stream::create();
        let engine = ProgressEngine::spawn(stream.clone());
        let done = CompletionCounter::new(1);
        let d = done.clone();
        let deadline = wtime() + 0.002;
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                d.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        // The caller never calls progress; the engine thread must finish it.
        let t0 = wtime();
        while !done.is_zero() {
            assert!(wtime() - t0 < 5.0, "engine failed to drive task");
            std::hint::spin_loop();
        }
        assert!(engine.iterations() > 0);
        engine.stop();
    }

    #[test]
    fn await_request_spins_without_progress() {
        let stream = Stream::create();
        let engine = ProgressEngine::spawn(stream.clone());
        let (req, completer) = Request::pair(&stream);
        let deadline = wtime() + 0.002;
        let mut completer = Some(completer);
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                completer.take().expect("once").complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let calls_before = stream.progress_calls();
        let status = engine.await_request(&req);
        assert!(!status.cancelled);
        // All progress came from the engine thread; await_request made
        // no progress calls of its own (we can't assert exact counts, but
        // the engine must have been spinning).
        assert!(stream.progress_calls() > calls_before);
        engine.stop();
    }

    #[test]
    fn on_complete_fires_on_engine_thread() {
        let stream = Stream::create();
        let engine = ProgressEngine::spawn(stream.clone());
        let (req, completer) = Request::pair(&stream);
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        engine.on_complete(req, move |_| f.done());
        completer.complete_empty();
        let t0 = wtime();
        while !fired.is_zero() {
            assert!(wtime() - t0 < 5.0, "callback never fired");
            std::hint::spin_loop();
        }
        engine.stop();
    }

    #[test]
    fn drop_stops_engine() {
        let stream = Stream::create();
        {
            let _engine = ProgressEngine::spawn(stream.clone());
        }
        // Dropped without stop(): thread must have exited (no hang).
    }
}

//! # mpfa-interop — what interoperable progress enables
//!
//! Everything in this crate is built **on top of** the public extension
//! APIs of `mpfa-core`/`mpfa-mpi` — no crate-private access. That is the
//! paper's thesis made concrete: with `MPIX_Stream_progress`,
//! `MPIX_Async`, and `MPIX_Request_is_complete`, substantial MPI-adjacent
//! functionality moves from the implementation into user space:
//!
//! * [`user_coll`] — the paper's user-level recursive-doubling allreduce
//!   (Listing 1.8) and a user-level dissemination barrier, progressed
//!   entirely by `MPIX_Async` hooks.
//! * [`task_class`] — the "async task class" pattern (Listing 1.4): one
//!   progress hook managing an ordered task queue, making response latency
//!   independent of the number of pending tasks (Figure 10).
//! * [`callbacks`] — request-completion events via an is-complete scan
//!   (Listing 1.6), the "poor man's continuations" of Section 5.4.
//! * [`continuation`] — an `MPIX_Continue`-style API (Section 5.4) built
//!   on the callback engine.
//! * [`schedule`] — an `MPIX_Schedule`-style rounds API (Section 5.3).
//! * [`engine`] — the Section 3.5 programming scheme: a progress engine
//!   thread driving `MPIX_Stream_progress`, decoupled from task contexts.
//! * [`task_graph`] — a DAG executor advanced by one `MPIX_Async` hook:
//!   the task-based-runtime integration the paper motivates in Section 1.
//! * [`futures`] — `std::future::Future` adapters and a `block_on` whose
//!   idle loop is one `MPIX_Stream_progress` call: the async/await
//!   integration of Section 2.2.

#![warn(missing_docs)]

pub mod callbacks;
pub mod continuation;
pub mod engine;
pub mod futures;
pub mod schedule;
pub mod task_class;
pub mod task_graph;
pub mod user_coll;

pub use callbacks::CompletionNotifier;
pub use continuation::ContinuationContext;
pub use engine::ProgressEngine;
pub use schedule::ScheduleBuilder;
pub use task_class::TaskClass;
pub use task_graph::{GraphHandle, NodeId, TaskGraph};

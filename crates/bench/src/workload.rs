//! Workload generators for the latency benchmarks: the paper's dummy
//! timed tasks, with deterministic jitter.

use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{stats::LatencyStats, wtime, AsyncPoll, CompletionCounter, Stream};

/// A small deterministic PRNG (splitmix-style) so runs are repeatable.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeded generator.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = self.state;
        let z = (z ^ (z >> 33)).wrapping_mul(0xFF51AFD7ED558CCD);
        z ^ (z >> 33)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Shared sink for progress-latency samples.
pub type SharedStats = Arc<Mutex<LatencyStats>>;

/// A fresh shared stats sink.
pub fn shared_stats() -> SharedStats {
    Arc::new(Mutex::new(LatencyStats::new()))
}

/// Start one dummy timed task (the paper's Listing 1.2 pattern): it
/// completes at `deadline` and records the observation latency into
/// `stats`. Decrements `counter` on completion.
pub fn spawn_dummy(
    stream: &Stream,
    deadline: f64,
    stats: &SharedStats,
    counter: &CompletionCounter,
) {
    let stats = stats.clone();
    let counter = counter.clone();
    stream.async_start(move |_t| {
        let now = wtime();
        if now >= deadline {
            stats.lock().add(now - deadline);
            counter.done();
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });
}

/// Start one dummy task with an artificial poll-side delay of
/// `poll_delay` seconds (busy-polled, the paper's Figure 8 methodology).
pub fn spawn_dummy_with_poll_delay(
    stream: &Stream,
    deadline: f64,
    poll_delay: f64,
    stats: &SharedStats,
    counter: &CompletionCounter,
) {
    let stats = stats.clone();
    let counter = counter.clone();
    stream.async_start(move |_t| {
        let now = wtime();
        if now >= deadline {
            stats.lock().add(now - deadline);
            counter.done();
            AsyncPoll::Done
        } else {
            if poll_delay > 0.0 {
                mpfa_core::spin::busy_wait(poll_delay);
            }
            AsyncPoll::Pending
        }
    });
}

/// Run one measurement batch: `n` dummy tasks with deadlines spread
/// uniformly over `(min_lead, min_lead + window)` seconds from now,
/// driven by a single progress loop on `stream`. Returns the latency
/// stats.
pub fn measure_batch(
    stream: &Stream,
    n: usize,
    min_lead: f64,
    window: f64,
    seed: u64,
) -> LatencyStats {
    let stats = shared_stats();
    let counter = CompletionCounter::new(n);
    let mut rng = Lcg::new(seed);
    let base = wtime();
    for _ in 0..n {
        let deadline = base + min_lead + rng.next_f64() * window;
        spawn_dummy(stream, deadline, &stats, &counter);
    }
    while !counter.is_zero() {
        stream.progress();
    }
    let out = stats.lock().clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn lcg_f64_in_unit_interval() {
        let mut r = Lcg::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn measure_batch_collects_n_samples() {
        let stream = Stream::create();
        let stats = measure_batch(&stream, 16, 0.0002, 0.001, 42);
        assert_eq!(stats.len(), 16);
        assert!(stats.mean() >= 0.0);
        assert_eq!(stream.pending_tasks(), 0);
    }

    #[test]
    fn poll_delay_task_completes() {
        let stream = Stream::create();
        let stats = shared_stats();
        let counter = CompletionCounter::new(1);
        spawn_dummy_with_poll_delay(&stream, wtime() + 0.001, 1e-5, &stats, &counter);
        while !counter.is_zero() {
            stream.progress();
        }
        assert_eq!(stats.lock().len(), 1);
    }
}

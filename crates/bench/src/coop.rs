//! Cooperative multi-rank driver: all ranks progressed round-robin on one
//! thread.
//!
//! On a single-core host, one OS thread per spinning rank measures the
//! kernel scheduler, not the runtime. This driver instead interleaves
//! every rank's `MPIX_Stream_progress` on the calling thread, so elapsed
//! time is the sum of the runtime's software costs — the quantity the
//! paper's Figure 13 compares between native and user-level collectives.
//!
//! Only *nonblocking* operations may be used through this driver: a
//! blocking wait inside one rank would starve the others (they share the
//! thread).

use mpfa_core::wtime;
use mpfa_mpi::{Comm, Proc, World, WorldConfig};

/// A world whose ranks are all driven by the caller's thread.
pub struct CoopWorld {
    procs: Vec<Proc>,
}

impl CoopWorld {
    /// Boot `cfg` and take ownership of every rank.
    pub fn new(cfg: WorldConfig) -> CoopWorld {
        CoopWorld {
            procs: World::init(cfg),
        }
    }

    /// Rank count.
    pub fn size(&self) -> usize {
        self.procs.len()
    }

    /// The per-rank handles.
    pub fn procs(&self) -> &[Proc] {
        &self.procs
    }

    /// A world communicator per rank.
    pub fn comms(&self) -> Vec<Comm> {
        self.procs.iter().map(Proc::world_comm).collect()
    }

    /// One progress sweep: every rank's default stream once.
    pub fn poll_all(&self) {
        for p in &self.procs {
            p.default_stream().progress();
        }
    }

    /// Sweep until `cond` holds or `timeout_s` elapses. Returns the number
    /// of sweeps, or None on timeout.
    pub fn run_until(&self, mut cond: impl FnMut() -> bool, timeout_s: f64) -> Option<u64> {
        let deadline = wtime() + timeout_s;
        let mut sweeps = 0;
        while !cond() {
            if wtime() >= deadline {
                return None;
            }
            self.poll_all();
            sweeps += 1;
        }
        Some(sweeps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::Request;
    use mpfa_mpi::Op;

    #[test]
    fn coop_point_to_point() {
        let w = CoopWorld::new(WorldConfig::instant(2));
        let comms = w.comms();
        let recv = comms[1].irecv::<i32>(3, 0, 5).unwrap();
        let send = comms[0].isend(&[1, 2, 3], 1, 5).unwrap();
        w.run_until(|| recv.is_complete() && send.is_complete(), 5.0)
            .expect("converged");
        let (data, _) = recv.take();
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn coop_native_allreduce() {
        let w = CoopWorld::new(WorldConfig::instant(4));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| c.iallreduce(&[c.rank() + 1], Op::Sum).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 10.0)
            .expect("converged");
        for f in futs {
            assert_eq!(f.take(), vec![10]);
        }
    }

    #[test]
    fn coop_user_allreduce() {
        let w = CoopWorld::new(WorldConfig::instant(4));
        let comms = w.comms();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| mpfa_interop::user_coll::my_iallreduce(c, vec![c.rank()]).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 10.0)
            .expect("converged");
        for f in futs {
            assert_eq!(f.take(), vec![6]);
        }
    }

    #[test]
    fn coop_rendezvous_sizes() {
        let w = CoopWorld::new(WorldConfig::instant(2));
        let comms = w.comms();
        let n = 1 << 20;
        let recv = comms[1].irecv::<u8>(n, 0, 1).unwrap();
        let send = comms[0].isend(&vec![9u8; n], 1, 1).unwrap();
        w.run_until(|| recv.is_complete() && Request::is_complete(&send), 10.0)
            .expect("converged");
        assert_eq!(recv.take().0.len(), n);
    }

    #[test]
    fn run_until_times_out() {
        let w = CoopWorld::new(WorldConfig::instant(1));
        assert!(w.run_until(|| false, 0.01).is_none());
    }
}

//! Minimal JSON emission for per-run benchmark records.
//!
//! The workspace builds fully offline (no serde); benchmark binaries that
//! want machine-readable output assemble it through this tiny builder and
//! write one self-contained `.json` file per run under `results/`.

use std::fmt::Write as _;

/// A JSON object under construction. Keys are emitted in insertion order.
#[derive(Debug, Default, Clone)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 the way JSON expects (no NaN/inf — mapped to null).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    fn push_raw(&mut self, key: &str, raw: String) -> &mut Self {
        self.fields.push((escape(key), raw));
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_raw(key, format!("\"{}\"", escape(value)))
    }

    /// Add an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Add a float field.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.push_raw(key, num(value))
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Add a nested object field.
    pub fn obj(&mut self, key: &str, value: &JsonObj) -> &mut Self {
        self.push_raw(key, value.render())
    }

    /// Add an array-of-objects field.
    pub fn arr(&mut self, key: &str, values: &[JsonObj]) -> &mut Self {
        let inner: Vec<String> = values.iter().map(|v| v.render()).collect();
        self.push_raw(key, format!("[{}]", inner.join(",")))
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", inner.join(","))
    }

    /// Write the object (pretty-ish: one trailing newline) to `path`.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_in_order() {
        let mut o = JsonObj::new();
        o.str("name", "abl")
            .int("n", 3)
            .float("x", 1.5)
            .bool("ok", true);
        assert_eq!(o.render(), r#"{"name":"abl","n":3,"x":1.5,"ok":true}"#);
    }

    #[test]
    fn escapes_strings() {
        let mut o = JsonObj::new();
        o.str("s", "a\"b\\c\nd");
        assert_eq!(o.render(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn nested_objects_and_arrays() {
        let mut inner = JsonObj::new();
        inner.int("pollers", 4);
        let mut o = JsonObj::new();
        o.arr("rows", &[inner.clone(), inner]);
        assert!(o.render().starts_with(r#"{"rows":[{"pollers":4},"#));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObj::new();
        o.float("bad", f64::NAN);
        assert_eq!(o.render(), r#"{"bad":null}"#);
    }
}

//! Table/CSV output helpers so every figure binary prints the same way.

use mpfa_core::stats::LatencyStats;

/// A result series: one row per x value, one or more named columns.
pub struct Series {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Series {
    /// Start a series for `title` with the given x-axis label and value
    /// column names.
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Series {
        Series {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, x: impl ToString, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((x.to_string(), values.to_vec()));
    }

    /// Render the aligned human table followed by a CSV block.
    pub fn print(&self) {
        println!("# {}", self.title);
        print!("{:>12}", self.x_label);
        for c in &self.columns {
            print!(" {c:>16}");
        }
        println!();
        for (x, values) in &self.rows {
            print!("{x:>12}");
            for v in values {
                print!(" {v:>16.4}");
            }
            println!();
        }
        println!();
        // Machine-readable block.
        print!("csv,{}", self.x_label);
        for c in &self.columns {
            print!(",{c}");
        }
        println!();
        for (x, values) in &self.rows {
            print!("csv,{x}");
            for v in values {
                print!(",{v:.6}");
            }
            println!();
        }
    }
}

/// Shorthand: mean latency of `stats` in microseconds.
pub fn mean_us(stats: &LatencyStats) -> f64 {
    stats.mean() * 1e6
}

/// Shorthand: p95 latency in microseconds.
pub fn p95_us(stats: &LatencyStats) -> f64 {
    stats.quantile(0.95) * 1e6
}

/// Shorthand: median latency in microseconds.
pub fn median_us(stats: &LatencyStats) -> f64 {
    stats.median() * 1e6
}

/// Shorthand: 90%-trimmed mean in microseconds — the robust central
/// estimate used by the figure binaries (rare multi-millisecond OS
/// preemption spikes otherwise dominate plain means on a shared host).
pub fn tmean_us(stats: &LatencyStats) -> f64 {
    stats.trimmed_mean(0.9) * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accepts_matching_rows() {
        let mut s = Series::new("t", "n", &["a", "b"]);
        s.row(1, &[1.0, 2.0]);
        s.row(2, &[3.0, 4.0]);
        s.print();
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn series_rejects_mismatched_rows() {
        let mut s = Series::new("t", "n", &["a"]);
        s.row(1, &[1.0, 2.0]);
    }

    #[test]
    fn stat_shorthands() {
        let mut st = LatencyStats::new();
        st.add(1e-6);
        st.add(3e-6);
        assert!((mean_us(&st) - 2.0).abs() < 1e-9);
        assert!(p95_us(&st) >= mean_us(&st));
    }
}

//! Ablation A2: computation/communication overlap for a rendezvous
//! transfer under the progress strategies of Figures 4–5, quantified.
//!
//! Cooperative two-rank setup (single-core host): the receiver rank is
//! progressed a little on every sender step (it models a remote peer with
//! its own live progress). The *sender* varies its strategy:
//!
//! * `no-progress`   — Isend, compute, Wait (Figure 4(c)): the handshake
//!   stalls during compute, so the transfer starts only at Wait.
//! * `test-sparse`   — compute sliced with a progress call every slice,
//!   few slices (Figure 5(a), sparse polling).
//! * `test-frequent` — many slices (Figure 5(a), frequent polling).
//!
//! Reported: total sender time (compute + residual wait) per strategy and
//! the achieved overlap fraction.

use mpfa_bench::coop::CoopWorld;
use mpfa_bench::report::Series;
use mpfa_core::spin::compute_units;
use mpfa_core::wtime;
use mpfa_mpi::WorldConfig;

const MSG: usize = 2 << 20;
const UNITS: u64 = 8_000_000;

fn run(slices: u64) -> (f64, f64, f64) {
    let mut cfg = WorldConfig::cluster(2);
    // Make wire time substantial relative to compute.
    cfg.inter_bandwidth = 2.0e9;
    let w = CoopWorld::new(cfg);
    let comms = w.comms();
    let (c0, c1) = (&comms[0], &comms[1]);

    // Reference costs.
    let t = wtime();
    std::hint::black_box(compute_units(UNITS));
    let compute_only = wtime() - t;

    let t = wtime();
    let recv = c1.irecv::<u8>(MSG, 0, 1).unwrap();
    let send = c0.isend(&vec![3u8; MSG], 1, 1).unwrap();
    w.run_until(|| send.is_complete() && recv.is_complete(), 30.0)
        .unwrap();
    let comm_only = wtime() - t;

    // Measured: compute while the transfer is in flight.
    let recv = c1.irecv::<u8>(MSG, 0, 2).unwrap();
    let t0 = wtime();
    let send = c0.isend(&vec![3u8; MSG], 1, 2).unwrap();
    if slices == 0 {
        // Figure 4(c): no progress at all during compute.
        std::hint::black_box(compute_units(UNITS));
    } else {
        for _ in 0..slices {
            std::hint::black_box(compute_units(UNITS / slices));
            // One progress lap (sender + the "remote" receiver).
            w.poll_all();
        }
    }
    w.run_until(|| send.is_complete() && recv.is_complete(), 30.0)
        .unwrap();
    let total = wtime() - t0;
    (compute_only, comm_only, total)
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Ablation A2: rendezvous overlap vs progress strategy (2 MiB transfer)",
        "strategy",
        &["total_ms", "ideal_ms", "overlap_pct"],
    );
    run(4); // warmup
    for (name, slices) in [
        ("no-progress", 0u64),
        ("test-x4", 4),
        ("test-x16", 16),
        ("test-x64", 64),
        ("test-x256", 256),
    ] {
        let (compute, comm, total) = run(slices);
        let ideal = compute.max(comm);
        let worst = compute + comm;
        // 1.0 = fully overlapped, 0.0 = fully serialized.
        let overlap = ((worst - total) / (worst - ideal).max(1e-12)).clamp(-0.5, 1.5);
        series.row(name, &[total * 1e3, ideal * 1e3, overlap * 100.0]);
    }
    series.print();
    println!();
    println!("expected: no-progress serializes handshake+transfer behind compute;");
    println!("interspersed progress recovers overlap, improving with poll frequency");
    println!("until polling overhead itself costs (the Figure 5(a) trade-off)");
}

//! Schedule-exploration throughput + CI fuzz entry for the DST harness.
//!
//! Runs a suite of invariant scenarios (each must hold under *every*
//! legal schedule) through [`mpfa_dst::explore`] for N seeds apiece and
//! reports schedules/second. Any failing schedule writes a replayable
//! artifact to `target/dst-failures/` (CI uploads the directory), prints
//! the seed, and exits 1.
//!
//! Knobs:
//!
//! * `--seeds N` / `MPFA_DST_SEEDS=N` — schedules per scenario (CI
//!   pushes run 64; the nightly cranks this to 4096);
//! * `MPFA_DST_SEED=<u64>` — replay exactly one seed on every scenario;
//! * `--planted` — self-check: the explorer must *break* the planted
//!   wildcard-ordering bug within the seed budget (exit 1 if it can't —
//!   a harness that can't break it is not exploring orderings);
//! * `--json PATH` — machine-readable results;
//! * `--smoke` — 64 seeds + a 120 s watchdog that exits 124 on a wedge.

use std::time::Instant;

use mpfa_bench::json::JsonObj;
use mpfa_dst::{explore, fixtures, seeds, Failure, Sim, SimConfig};
use mpfa_mpi::{DetectorConfig, ANY_SOURCE};

struct Config {
    seeds: usize,
    json_path: String,
    planted: bool,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            seeds: 256,
            json_path: String::new(),
            planted: false,
        };
        if let Some(n) = std::env::var("MPFA_DST_SEEDS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            cfg.seeds = n;
        }
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--seeds" => {
                    cfg.seeds = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(cfg.seeds)
                }
                "--planted" => cfg.planted = true,
                "--smoke" => {
                    cfg.seeds = 64;
                    arm_watchdog(120.0);
                }
                other => {
                    eprintln!(
                        "usage: dst_explore [--seeds N] [--json PATH] [--planted] [--smoke] \
                         (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

fn arm_watchdog(secs: f64) {
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        eprintln!("dst_explore: watchdog fired after {secs}s — exploration wedged?");
        std::process::exit(124);
    });
}

/// Three senders fan into two wildcard receives; every payload that
/// lands must identify its sender, whichever two the schedule picks.
fn fan_in(sim: &mut Sim) {
    let comms = sim.world_comms();
    let recvs: Vec<_> = (0..2)
        .map(|_| comms[0].irecv::<u32>(1, ANY_SOURCE, 6).unwrap())
        .collect();
    let sends: Vec<_> = (1..3)
        .map(|r| comms[r].isend(&[r as u32], 0, 6).unwrap())
        .collect();
    let reqs: Vec<_> = recvs.iter().map(|r| r.request()).collect();
    assert!(
        sim.run_until(|| reqs.iter().chain(sends.iter()).all(|r| r.is_complete())),
        "fan-in never completed"
    );
    let mut sources: Vec<i32> = recvs
        .into_iter()
        .map(|r| {
            let (data, st) = r.take();
            assert_eq!(data, vec![st.source as u32], "payload/source mismatch");
            st.source
        })
        .collect();
    sources.sort_unstable();
    assert_eq!(sources, vec![1, 2], "a sender was dropped or duplicated");
}

/// A scheduled kill must be detected by every survivor under every
/// interleaving of progress, detector ticks, and time.
fn kill_detect(sim: &mut Sim) {
    const VICTIM: usize = 2;
    assert!(sim.kill_at(VICTIM, 2e-6));
    let detectors: Vec<_> = (0..2)
        .map(|r| sim.resilience(r).detector().clone())
        .collect();
    assert!(
        sim.run_until(|| detectors.iter().all(|d| d.is_failed(VICTIM))),
        "kill never detected by all survivors"
    );
}

fn resilient(ranks: usize) -> SimConfig {
    SimConfig {
        resilience: Some(DetectorConfig { quiet_period: 1e9 }),
        ..SimConfig::ranks(ranks)
    }
}

struct Outcome {
    name: &'static str,
    explored: u64,
    elapsed_s: f64,
    failure: Option<Failure>,
}

fn run_scenario(
    name: &'static str,
    cfg: &SimConfig,
    seed_list: &[u64],
    scenario: impl Fn(&mut Sim),
) -> Outcome {
    let t0 = Instant::now();
    let result = explore(cfg, seed_list.iter().copied(), scenario);
    let elapsed_s = t0.elapsed().as_secs_f64();
    match result {
        Ok(explored) => Outcome {
            name,
            explored,
            elapsed_s,
            failure: None,
        },
        Err(failure) => Outcome {
            name,
            explored: 0,
            elapsed_s,
            failure: Some(failure),
        },
    }
}

/// Mirror of the test-side artifact contract: seed + panic + trace into
/// `target/dst-failures/<name>-<seed>.log` for CI upload.
fn write_artifact(name: &str, failure: &Failure) -> String {
    let dir = std::env::var("MPFA_DST_ARTIFACT_DIR")
        .unwrap_or_else(|_| "target/dst-failures".to_string());
    let path = format!("{dir}/{name}-{seed}.log", seed = failure.seed);
    let body = format!(
        "scenario: {name}\nseed: {seed}\npanic: {message}\n\n{trace}",
        seed = failure.seed,
        message = failure.message,
        trace = failure.trace,
    );
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
        Ok(()) => path,
        Err(e) => format!("(unwritable: {e})"),
    }
}

fn main() {
    let cfg = Config::from_args();

    // `--planted` inverts the contract: the run only passes if the
    // explorer breaks the deliberately wrong scenario inside the budget.
    if cfg.planted {
        // The planted scenario panics on the breaking schedule; silence
        // the hook so the expected panic doesn't read as an error.
        std::panic::set_hook(Box::new(|_| {}));
        let seed_list = seeds(mpfa_dst::name_base("dst_explore_planted"), cfg.seeds);
        let t0 = Instant::now();
        let result = explore(
            &SimConfig::ranks(3),
            seed_list,
            fixtures::planted_wildcard_order_bug,
        );
        let _ = std::panic::take_hook();
        match result {
            Err(failure) => {
                println!(
                    "dst_explore --planted: bug caught under seed {} in {:.3}s ({})",
                    failure.seed,
                    t0.elapsed().as_secs_f64(),
                    failure.message.lines().next().unwrap_or(""),
                );
            }
            Ok(explored) => {
                eprintln!(
                    "dst_explore --planted: the planted ordering bug SURVIVED {explored} \
                     schedules — the explorer is not exploring"
                );
                std::process::exit(1);
            }
        }
        return;
    }

    let seed_list = |name: &str| match mpfa_dst::replay_seed() {
        Some(seed) => vec![seed],
        None => seeds(mpfa_dst::name_base(name), cfg.seeds),
    };
    println!("dst_explore: {} seeds per scenario", cfg.seeds);

    let outcomes = vec![
        run_scenario(
            "pingpong",
            &SimConfig::ranks(2),
            &seed_list("pingpong"),
            fixtures::pingpong,
        ),
        run_scenario(
            "tagged_pair_fifo",
            &SimConfig::ranks(2),
            &seed_list("tagged_pair_fifo"),
            fixtures::tagged_pair_fifo,
        ),
        run_scenario("fan_in", &SimConfig::ranks(3), &seed_list("fan_in"), fan_in),
        run_scenario(
            "kill_detect",
            &resilient(3),
            &seed_list("kill_detect"),
            kill_detect,
        ),
    ];

    println!("scenario            schedules   elapsed_s   sched/s");
    let mut failed = false;
    for o in &outcomes {
        match &o.failure {
            None => println!(
                "{:<18} {:>10} {:>11.3} {:>9.0}",
                o.name,
                o.explored,
                o.elapsed_s,
                o.explored as f64 / o.elapsed_s.max(1e-9),
            ),
            Some(f) => {
                failed = true;
                let artifact = write_artifact(o.name, f);
                eprintln!(
                    "{:<18} FAILED under seed {}\n  panic: {}\n  replay: MPFA_DST_SEED={} \
                     cargo run -p mpfa-bench --bin dst_explore\n  artifact: {artifact}",
                    o.name, f.seed, f.message, f.seed,
                );
            }
        }
    }

    if !cfg.json_path.is_empty() {
        let rows: Vec<JsonObj> = outcomes
            .iter()
            .map(|o| {
                let mut row = JsonObj::new();
                row.str("scenario", o.name)
                    .int("schedules", o.explored)
                    .float("elapsed_s", o.elapsed_s)
                    .bool("failed", o.failure.is_some());
                if let Some(f) = &o.failure {
                    row.int("failing_seed", f.seed);
                }
                row
            })
            .collect();
        let mut root = JsonObj::new();
        root.str("bench", "dst_explore")
            .int("seeds_per_scenario", cfg.seeds as u64)
            .arr("scenarios", &rows);
        root.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }

    if failed {
        std::process::exit(1);
    }
}

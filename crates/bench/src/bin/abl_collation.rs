//! Ablation A1: the collated-progress policy of Listing 1.1.
//!
//! Two design choices are measured:
//!
//! 1. **Cheap empty polls** — `has_work` as one atomic read. We compare
//!    the cost of a progress call on a stream whose four MPI subsystem
//!    hooks are idle (normal runtime hooks) against the same stream with
//!    "naive" hooks that claim work every call and must be fully polled.
//! 2. **Netmod-last + short-circuit** — when an earlier subsystem
//!    progresses, the (not-free) netmod poll is skipped. We count netmod
//!    polls with and without active shmem traffic.

use mpfa_bench::report::Series;
use mpfa_core::{wtime, ProgressHook, Stream, SubsystemClass};
use mpfa_mpi::{World, WorldConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A hook that always claims work and burns a fixed cost when polled —
/// the "collation without cheap empty polls" strawman.
struct NaiveHook {
    class: SubsystemClass,
    cost_ns: u64,
    polls: Arc<AtomicU64>,
}

impl ProgressHook for NaiveHook {
    fn name(&self) -> &str {
        "naive"
    }
    fn class(&self) -> SubsystemClass {
        self.class
    }
    // has_work defaults to true: it must be polled every call.
    fn poll(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if self.cost_ns > 0 {
            mpfa_core::spin::busy_wait(self.cost_ns as f64 * 1e-9);
        }
        false
    }
}

fn time_progress_calls(stream: &Stream, calls: u64) -> f64 {
    let t0 = wtime();
    for _ in 0..calls {
        stream.progress();
    }
    (wtime() - t0) / calls as f64
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    const CALLS: u64 = 200_000;

    // --- Part 1: empty-poll cost ------------------------------------------
    let mut series = Series::new(
        "Ablation A1a: cost of one progress call with idle subsystems (ns)",
        "config",
        &["ns_per_call"],
    );

    // Bare stream: no hooks at all.
    let bare = Stream::create();
    time_progress_calls(&bare, 10_000); // warmup
    series.row("no-hooks", &[time_progress_calls(&bare, CALLS) * 1e9]);

    // Real runtime hooks, all idle (has_work = one atomic read each).
    let procs = World::init(WorldConfig::instant(1));
    let s = procs[0].default_stream().clone();
    time_progress_calls(&s, 10_000);
    series.row("idle-mpi-hooks", &[time_progress_calls(&s, CALLS) * 1e9]);

    // Naive hooks: polled unconditionally, zero inner cost.
    let naive0 = Stream::create();
    for class in [
        SubsystemClass::DatatypeEngine,
        SubsystemClass::CollectiveSched,
        SubsystemClass::Shmem,
        SubsystemClass::Netmod,
    ] {
        naive0.register_hook(NaiveHook {
            class,
            cost_ns: 0,
            polls: Arc::new(AtomicU64::new(0)),
        });
    }
    time_progress_calls(&naive0, 10_000);
    series.row(
        "naive-hooks-0ns",
        &[time_progress_calls(&naive0, CALLS) * 1e9],
    );

    // Naive hooks where the netmod poll costs 100 ns (a cheap NIC doorbell
    // read) — the configuration Listing 1.1 is designed to avoid.
    let naive100 = Stream::create();
    for class in [
        SubsystemClass::DatatypeEngine,
        SubsystemClass::CollectiveSched,
        SubsystemClass::Shmem,
    ] {
        naive100.register_hook(NaiveHook {
            class,
            cost_ns: 0,
            polls: Arc::new(AtomicU64::new(0)),
        });
    }
    naive100.register_hook(NaiveHook {
        class: SubsystemClass::Netmod,
        cost_ns: 100,
        polls: Arc::new(AtomicU64::new(0)),
    });
    time_progress_calls(&naive100, 10_000);
    series.row(
        "naive-netmod-100ns",
        &[time_progress_calls(&naive100, CALLS / 10) * 1e9],
    );
    series.print();

    // --- Part 2: short-circuit skips netmod under shmem traffic ----------
    let netmod_polls = Arc::new(AtomicU64::new(0));
    let shmem = Stream::create();
    // A shmem-class hook that always progresses (models a busy intra-node
    // queue) and a netmod probe after it.
    struct BusyShmem;
    impl ProgressHook for BusyShmem {
        fn name(&self) -> &str {
            "busy-shmem"
        }
        fn class(&self) -> SubsystemClass {
            SubsystemClass::Shmem
        }
        fn poll(&self) -> bool {
            true
        }
    }
    shmem.register_hook(BusyShmem);
    shmem.register_hook(NaiveHook {
        class: SubsystemClass::Netmod,
        cost_ns: 0,
        polls: netmod_polls.clone(),
    });
    for _ in 0..10_000 {
        shmem.progress();
    }
    let mut s2 = Series::new(
        "Ablation A1b: netmod polls per 10k progress calls while shmem is busy",
        "policy",
        &["netmod_polls"],
    );
    s2.row(
        "netmod-last+short-circuit",
        &[netmod_polls.load(Ordering::Relaxed) as f64],
    );
    s2.row("(poll-everything would be)", &[10_000.0]);
    s2.print();
    println!();
    println!("expected: idle-mpi-hooks ~= no-hooks (empty poll = atomic reads);");
    println!("naive netmod polling pays its full cost every call; short-circuit");
    println!("suppresses netmod polls entirely while earlier subsystems progress");
}

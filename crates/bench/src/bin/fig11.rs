//! Figure 11: progress latency vs thread count, one `MPIX_Stream` per
//! thread (the paper's Listing 1.5).
//!
//! "The average progress latency does not increase significantly as the
//! number of threads increases" — per-thread streams share no lock, so
//! adding threads adds no contention.
//!
//! NOTE (single-core host): rows beyond the core count measure OS
//! timeslicing, not the runtime; the flat region demonstrating the claim
//! is the low-thread-count rows (compare the same rows of fig09).

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_bench::workload::{shared_stats, spawn_dummy, Lcg};
use mpfa_core::{wtime, CompletionCounter, Stream};

const NUM_TASKS: usize = 10;

fn run(threads: usize, reps: usize) -> mpfa_core::stats::LatencyStats {
    let mut agg = mpfa_core::stats::LatencyStats::new();
    for rep in 0..reps {
        let stats = shared_stats();
        std::thread::scope(|s| {
            for t in 0..threads {
                let stats = stats.clone();
                let seed = 23 + rep as u64 * 64 + t as u64;
                s.spawn(move || {
                    // Each thread: its own stream, its own tasks, its own
                    // progress loop (Listing 1.5's thread_fn).
                    let stream = Stream::create();
                    let counter = CompletionCounter::new(NUM_TASKS);
                    let mut rng = Lcg::new(seed);
                    let base = wtime();
                    for _ in 0..NUM_TASKS {
                        let deadline = base + 0.0005 + rng.next_f64() * 0.002;
                        spawn_dummy(&stream, deadline, &stats, &counter);
                    }
                    while !counter.is_zero() {
                        stream.progress();
                    }
                });
            }
        });
        agg.merge(&stats.lock());
    }
    agg
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 11: progress latency vs threads, one MPIX_Stream per thread (10 tasks each)",
        "threads",
        &["tmean_us", "median_us", "p95_us"],
    );
    run(1, 1); // warmup
    for threads in [1usize, 2, 3, 4, 6, 8] {
        let stats = run(threads, 20);
        series.row(
            threads,
            &[tmean_us(&stats), median_us(&stats), p95_us(&stats)],
        );
    }
    series.print();
    println!();
    println!("expected shape: flat (no significant growth) while threads <= cores;");
    println!("the same thread counts in fig09 (shared stream) degrade");
}

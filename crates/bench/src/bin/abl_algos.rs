//! Ablation A5: allreduce algorithm selection — recursive doubling vs
//! ring (reduce-scatter + allgather) across message sizes.
//!
//! Recursive doubling moves the FULL payload log₂P times (latency-optimal
//! for small messages); the ring moves 2·(P−1)/P of it (bandwidth-optimal
//! for large ones). The crossover justifies
//! `Comm::ALLREDUCE_RING_THRESHOLD`.

use mpfa_bench::coop::CoopWorld;
use mpfa_bench::report::Series;
use mpfa_core::wtime;
use mpfa_mpi::{Op, WorldConfig};

const RANKS: usize = 8;

fn measure(w: &CoopWorld, count: usize, reps: usize, ring: bool) -> f64 {
    let comms = w.comms();
    let data: Vec<Vec<i64>> = comms
        .iter()
        .map(|c| (0..count).map(|i| i as i64 + c.rank() as i64).collect())
        .collect();
    // Warmup lap.
    let run_once = |w: &CoopWorld| {
        let futs: Vec<_> = comms
            .iter()
            .zip(&data)
            .map(|(c, d)| {
                if ring {
                    c.iallreduce_ring(d, Op::Sum).unwrap()
                } else {
                    c.iallreduce(d, Op::Sum).unwrap()
                }
            })
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 60.0)
            .expect("allreduce converged");
        std::hint::black_box(futs.into_iter().map(|f| f.take().len()).sum::<usize>())
    };
    run_once(w);
    // Median of per-rep timings: robust against OS preemption spikes.
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = wtime();
            run_once(w);
            wtime() - t0
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2] / RANKS as f64
}

fn measure_bcast(w: &CoopWorld, count: usize, reps: usize, sag: bool) -> f64 {
    let comms = w.comms();
    let payload: Vec<i64> = (0..count as i64).collect();
    let run_once = |w: &CoopWorld| {
        let futs: Vec<_> = comms
            .iter()
            .map(|c| {
                if c.rank() == 0 {
                    if sag {
                        c.ibcast_sag(Some(&payload), count, 0).unwrap()
                    } else {
                        c.ibcast(Some(&payload), count, 0).unwrap()
                    }
                } else if sag {
                    c.ibcast_sag::<i64>(None, count, 0).unwrap()
                } else {
                    c.ibcast::<i64>(None, count, 0).unwrap()
                }
            })
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 60.0)
            .expect("bcast converged");
        std::hint::black_box(futs.into_iter().map(|f| f.take().len()).sum::<usize>())
    };
    run_once(w);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = wtime();
            run_once(w);
            wtime() - t0
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2] / RANKS as f64
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        &format!(
            "Ablation A5: allreduce per-rank latency by algorithm, {RANKS} ranks, \
             cluster fabric (threshold = {} bytes)",
            mpfa_mpi::Comm::ALLREDUCE_RING_THRESHOLD
        ),
        "elements_i64",
        &["rec_doubling_us", "ring_us", "ring/rd"],
    );
    let w = CoopWorld::new(WorldConfig::cluster(RANKS));
    for count in [1usize, 16, 256, 1024, 4096, 16384, 65536] {
        let reps = (20_000 / (count + 10)).clamp(3, 60);
        let rd = measure(&w, count, reps, false);
        let ring = measure(&w, count, reps, true);
        series.row(count, &[rd * 1e6, ring * 1e6, ring / rd]);
    }
    series.print();
    println!();

    let mut bseries = Series::new(
        &format!(
            "Ablation A5b: bcast per-rank latency by algorithm, {RANKS} ranks \
             (SAG threshold = {} bytes)",
            mpfa_mpi::Comm::BCAST_SAG_THRESHOLD
        ),
        "elements_i64",
        &["binomial_us", "scatter_allgather_us", "sag/binomial"],
    );
    for count in [1usize, 64, 1024, 8192, 65536, 262144] {
        let reps = (20_000 / (count + 10)).clamp(3, 60);
        let bin = measure_bcast(&w, count, reps, false);
        let sag = measure_bcast(&w, count, reps, true);
        bseries.row(count, &[bin * 1e6, sag * 1e6, sag / bin]);
    }
    bseries.print();
    println!();
    println!("expected: recursive doubling / binomial win at small counts (fewer");
    println!("rounds of latency); ring / scatter-allgather win at large counts");
    println!("(each rank moves ~2/P of the data); crossovers near the thresholds");
}

//! Figure 8: impact of poll-function overhead on event-response latency.
//!
//! "Each measurement runs 10 concurrent pending tasks. The delay is
//! implemented by busy-polling MPI_Wtime." Heavy poll functions delay the
//! response of every task collated on the stream.

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_bench::workload::{shared_stats, spawn_dummy_with_poll_delay, Lcg};
use mpfa_core::{wtime, CompletionCounter, Stream};

const NUM_TASKS: usize = 10;

fn run(delay_us: f64, reps: usize) -> mpfa_core::stats::LatencyStats {
    let mut agg = mpfa_core::stats::LatencyStats::new();
    for rep in 0..reps {
        let stream = Stream::create();
        let stats = shared_stats();
        let counter = CompletionCounter::new(NUM_TASKS);
        let mut rng = Lcg::new(7 + rep as u64);
        let base = wtime();
        for _ in 0..NUM_TASKS {
            let deadline = base + 0.0005 + rng.next_f64() * 0.002;
            spawn_dummy_with_poll_delay(&stream, deadline, delay_us * 1e-6, &stats, &counter);
        }
        while !counter.is_zero() {
            stream.progress();
        }
        agg.merge(&stats.lock());
    }
    agg
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 8: progress latency vs per-poll busy delay (10 pending tasks)",
        "delay_us",
        &["tmean_us", "median_us", "p95_us"],
    );
    run(0.0, 1); // warmup
    for delay_us in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let stats = run(delay_us, 5);
        series.row(
            delay_us,
            &[tmean_us(&stats), median_us(&stats), p95_us(&stats)],
        );
    }
    series.print();
    println!();
    println!("expected shape: latency grows ~linearly with the poll delay");
    println!("(~ delay x pending/2); MPIX_Async wants lightweight poll functions");
}

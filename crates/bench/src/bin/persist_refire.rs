//! Persistent re-fire micro-benchmark: repeated-transfer latency of the
//! one-shot `isend`/`irecv` path versus pre-matched persistent
//! descriptors (`send_init`/`recv_init` + `start`).
//!
//! Both modes run the same two-rank ping-pong; the only difference is
//! that the persistent mode pays validation, route selection and the
//! slot-binding handshake once at init and then re-fires slot-addressed
//! rounds that never touch the tag matcher, while the one-shot mode
//! re-posts (and re-matches) every message. The per-rep gap is the
//! matching + setup overhead the paper's fig. 7 attributes to
//! per-operation software costs rather than the wire.
//!
//! Each round trip is timed individually and the table reports the p50
//! half-RTT, so a stray scheduler hiccup can't smear the comparison.
//!
//! Flags:
//! * `--json PATH` — machine-readable record (CI commits
//!   `results/persist_refire.json`).
//! * `--smoke` — tiny sweep plus a watchdog that exits 124 on a wedge.
//! * `--transport NAME` — run only `sim` or `shm`; repeatable.

use std::sync::Arc;

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::wire::WireMsg;
use mpfa_mpi::{Comm, MpfaBytes, World, WorldConfig};
use mpfa_transport::{loopback_mesh, Transport, TransportKind, WireOpts};

/// (payload bytes, measured round trips). Latency is the object here, so
/// the sweep stays in the small/medium range where per-message software
/// overhead — the thing persistence removes — dominates the transfer.
const SWEEP: [(usize, usize); 4] = [(8, 4000), (256, 4000), (4096, 2000), (65536, 400)];
/// Warmup round trips; the first persistent round also absorbs the
/// one-time bind handshake here.
const WARMUP: usize = 50;
/// Tags: one pair per direction per mode, so the one-shot traffic can
/// never collide with a disowned persistent slot's key.
const ONESHOT_TAGS: (i32, i32) = (0, 1);
const PERSIST_TAGS: (i32, i32) = (2, 3);

struct Config {
    json_path: String,
    smoke: bool,
    transports: Vec<TransportKind>,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            json_path: String::new(),
            smoke: false,
            transports: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--smoke" => cfg.smoke = true,
                "--transport" => {
                    let name = args.next().unwrap_or_default();
                    cfg.transports.push(match name.as_str() {
                        "sim" => TransportKind::Sim,
                        "shm" => TransportKind::Shm,
                        other => {
                            eprintln!("persist_refire: unknown transport {other} (want sim|shm)");
                            std::process::exit(2);
                        }
                    });
                }
                other => {
                    eprintln!(
                        "usage: persist_refire [--json PATH] [--smoke] \
                         [--transport sim|shm]... (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One measured point: p50 half-RTT for both modes.
struct Point {
    bytes: usize,
    reps: usize,
    oneshot_p50_us: f64,
    persist_p50_us: f64,
}

/// p50 of half-RTTs, in microseconds, from raw round-trip samples.
fn p50_half_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2] / 2.0 * 1e6
}

/// Progress-and-yield spin until `done` — both ranks share one core in
/// this in-process harness, so a hot spin would measure the scheduler
/// quantum instead of the path under test.
fn drive_until(comm: &Comm, done: impl Fn() -> bool) {
    while !done() {
        comm.stream().progress();
        std::thread::yield_now();
    }
}

/// Rank 0, one-shot mode: post-send-wait per round, timing each RTT.
fn oneshot_ping(comm: &Comm, payload: &MpfaBytes, reps: usize) -> Vec<f64> {
    let (out_tag, back_tag) = ONESHOT_TAGS;
    let bytes = payload.len();
    let mut samples = Vec::with_capacity(reps);
    for i in 0..WARMUP + reps {
        let t0 = wtime();
        let r = comm.irecv_bytes(bytes, 1, back_tag).unwrap();
        comm.isend_bytes(payload.clone(), 1, out_tag).unwrap();
        drive_until(comm, || r.is_complete());
        r.take();
        if i >= WARMUP {
            samples.push(wtime() - t0);
        }
    }
    samples
}

/// Rank 1, one-shot mode: echo the payload view straight back.
fn oneshot_pong(comm: &Comm, bytes: usize, reps: usize) {
    let (out_tag, back_tag) = ONESHOT_TAGS;
    for _ in 0..WARMUP + reps {
        let r = comm.irecv_bytes(bytes, 0, out_tag).unwrap();
        drive_until(comm, || r.is_complete());
        let (data, _) = r.take();
        let s = comm.isend_bytes(data, 0, back_tag).unwrap();
        drive_until(comm, || s.is_complete());
    }
}

/// Rank 0, persistent mode: init once, then start/wait per round. After
/// warmup every round is a slot-addressed re-fire — no matcher, no
/// validation, no route lookup.
fn persist_ping(comm: &Comm, payload: &MpfaBytes, reps: usize) -> Vec<f64> {
    let (out_tag, back_tag) = PERSIST_TAGS;
    let bytes = payload.len();
    let mut ps = comm.send_init_bytes(payload.clone(), 1, out_tag).unwrap();
    let mut pr = comm.recv_init_bytes(bytes, 1, back_tag).unwrap();
    let mut samples = Vec::with_capacity(reps);
    for i in 0..WARMUP + reps {
        let t0 = wtime();
        pr.start().unwrap();
        let sreq = ps.start().unwrap();
        drive_until(comm, || pr.is_complete() && sreq.is_complete());
        pr.wait().unwrap();
        if i >= WARMUP {
            samples.push(wtime() - t0);
        }
    }
    samples
}

/// Rank 1, persistent mode: the echo re-injects each round's received
/// view as the next send payload — refcount bump, no copy.
fn persist_pong(comm: &Comm, bytes: usize, reps: usize) {
    let (out_tag, back_tag) = PERSIST_TAGS;
    let mut pr = comm.recv_init_bytes(bytes, 0, out_tag).unwrap();
    let mut ps = comm
        .send_init_bytes(MpfaBytes::from(vec![0u8; bytes]), 0, back_tag)
        .unwrap();
    for _ in 0..WARMUP + reps {
        pr.start().unwrap();
        drive_until(comm, || pr.is_complete());
        let (data, _) = pr.wait().unwrap();
        ps.set_payload(data);
        let sreq = ps.start().unwrap();
        drive_until(comm, || sreq.is_complete());
    }
}

fn rank_main(comm: &Comm, sweep: &[(usize, usize)]) -> Vec<Point> {
    // All payloads allocated and page-touched before the first trial.
    let payloads: Vec<MpfaBytes> = sweep
        .iter()
        .map(|&(bytes, _)| MpfaBytes::from(vec![0x2A_u8; bytes]))
        .collect();
    let mut points = Vec::new();
    for (&(bytes, reps), payload) in sweep.iter().zip(&payloads) {
        comm.barrier().unwrap();
        let mut oneshot = if comm.rank() == 0 {
            oneshot_ping(comm, payload, reps)
        } else {
            oneshot_pong(comm, bytes, reps);
            Vec::new()
        };
        comm.barrier().unwrap();
        let mut persist = if comm.rank() == 0 {
            persist_ping(comm, payload, reps)
        } else {
            persist_pong(comm, bytes, reps);
            Vec::new()
        };
        // Descriptor drop (slot disown / binding release) happens above,
        // before the barrier, so it can't bleed into the next trial.
        comm.barrier().unwrap();
        if comm.rank() == 0 {
            points.push(Point {
                bytes,
                reps,
                oneshot_p50_us: p50_half_us(&mut oneshot),
                persist_p50_us: p50_half_us(&mut persist),
            });
        }
    }
    points
}

fn run(kind: TransportKind, sweep: &[(usize, usize)]) -> Vec<Point> {
    let cfg = WorldConfig::instant(2);
    let ports: Vec<Arc<dyn Transport<WireMsg>>> = match kind {
        TransportKind::Sim => Vec::new(),
        _ => loopback_mesh::<WireMsg>(kind, 2, cfg.max_vcis, WireOpts::default())
            .expect("loopback mesh"),
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = match kind {
            TransportKind::Sim => World::init(cfg.clone())
                .into_iter()
                .map(|p| s.spawn(move || rank_main(&p.world_comm(), sweep)))
                .collect(),
            _ => (0..2)
                .map(|rank| {
                    let cfg = WorldConfig {
                        transport: kind,
                        ..cfg.clone()
                    };
                    let port = ports[rank].clone();
                    s.spawn(move || {
                        let p = World::init_with_transport(cfg, rank, port);
                        rank_main(&p.world_comm(), sweep)
                    })
                })
                .collect(),
        };
        let mut results: Vec<Vec<Point>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        results.swap_remove(0) // rank 0 holds the measurements
    })
}

fn main() {
    let cfg = Config::from_args();
    let sweep: Vec<(usize, usize)> = if cfg.smoke {
        std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_secs(120));
            eprintln!("persist_refire: smoke watchdog fired");
            std::process::exit(124);
        });
        vec![(8, 100), (4096, 50)]
    } else {
        SWEEP.to_vec()
    };
    let kinds: Vec<TransportKind> = if !cfg.transports.is_empty() {
        cfg.transports.clone()
    } else if cfg!(unix) {
        vec![TransportKind::Sim, TransportKind::Shm]
    } else {
        vec![TransportKind::Sim]
    };

    let mut records = Vec::new();
    for &kind in &kinds {
        let points = run(kind, &sweep);
        println!("== {kind} ==");
        println!("     bytes   one-shot p50   persist p50   speedup");
        let mut point_objs = Vec::new();
        for p in &points {
            println!(
                "  {:>8}   {:>9.3} us   {:>9.3} us   {:>6.2}x",
                p.bytes,
                p.oneshot_p50_us,
                p.persist_p50_us,
                p.oneshot_p50_us / p.persist_p50_us
            );
            let mut o = JsonObj::new();
            o.int("bytes", p.bytes as u64)
                .int("reps", p.reps as u64)
                .float("oneshot_p50_us", p.oneshot_p50_us)
                .float("persist_p50_us", p.persist_p50_us)
                .float("speedup", p.oneshot_p50_us / p.persist_p50_us);
            point_objs.push(o);
        }
        let mut rec = JsonObj::new();
        rec.str("transport", &kind.to_string())
            .arr("points", &point_objs);
        records.push(rec);
    }

    if !cfg.json_path.is_empty() {
        let mut out = JsonObj::new();
        out.str("bench", "persist_refire")
            .bool("smoke", cfg.smoke)
            .int("ranks", 2)
            .int("warmup", WARMUP as u64)
            .arr("transports", &records);
        out.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

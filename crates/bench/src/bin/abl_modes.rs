//! Ablation A4: message-mode crossover sweep (the Figure 1 protocol
//! family, quantified).
//!
//! Ping-pong latency vs message size on the cooperative two-rank driver,
//! annotated with the send mode each size selects (buffered / eager /
//! rendezvous / pipeline). The protocol thresholds come straight from
//! `ProtoConfig`; the interesting output is where each protocol's cost
//! curve takes over.

use mpfa_bench::coop::CoopWorld;
use mpfa_bench::report::Series;
use mpfa_core::wtime;
use mpfa_mpi::protocol::SendMode;
use mpfa_mpi::WorldConfig;

const REPS: usize = 40;

fn mode_name(mode: SendMode, bytes: usize, chunk: usize) -> &'static str {
    match mode {
        SendMode::Buffered => "buffered",
        SendMode::Eager => "eager",
        SendMode::Rendezvous => {
            if bytes > chunk {
                "pipeline"
            } else {
                "rendezvous"
            }
        }
    }
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut cfg = WorldConfig::cluster(2);
    cfg.proto.buffered_max = 256;
    cfg.proto.eager_max = 16 * 1024;
    cfg.proto.chunk = 64 * 1024;
    cfg.proto.depth = 4;
    let proto = cfg.proto;
    let w = CoopWorld::new(cfg);
    let comms = w.comms();
    let (c0, c1) = (&comms[0], &comms[1]);

    let mut series = Series::new(
        "Ablation A4: ping-pong one-way latency vs message size by protocol mode",
        "bytes",
        &["one_way_us"],
    );
    let mut modes: Vec<&'static str> = Vec::new();

    for shift in [0usize, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22] {
        let bytes = 1usize << shift;
        let payload = vec![0xA5u8; bytes];
        // Warmup lap.
        for _ in 0..3 {
            pingpong(&w, c0, c1, &payload);
        }
        let t0 = wtime();
        for _ in 0..REPS {
            pingpong(&w, c0, c1, &payload);
        }
        let one_way = (wtime() - t0) / (2 * REPS) as f64;
        series.row(bytes, &[one_way * 1e6]);
        modes.push(mode_name(proto.mode_for(bytes), bytes, proto.chunk));
    }
    series.print();
    println!();
    println!("mode per row: {modes:?}");
    println!("expected: latency flat through buffered/eager sizes, a rendezvous");
    println!("handshake step at the eager threshold, then bandwidth-dominated");
    println!("growth with chunked pipelining for the largest sizes");
}

fn pingpong(w: &CoopWorld, c0: &mpfa_mpi::Comm, c1: &mpfa_mpi::Comm, payload: &[u8]) {
    let n = payload.len();
    let r1 = c1.irecv::<u8>(n, 0, 1).unwrap();
    let s1 = c0.isend(payload, 1, 1).unwrap();
    w.run_until(|| r1.is_complete() && s1.is_complete(), 30.0)
        .expect("ping");
    let r0 = c0.irecv::<u8>(n, 1, 2).unwrap();
    let s0 = c1.isend(payload, 0, 2).unwrap();
    w.run_until(|| r0.is_complete() && s0.is_complete(), 30.0)
        .expect("pong");
}

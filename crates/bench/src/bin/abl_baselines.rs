//! Ablation A3: progress strategies compared (paper Section 5).
//!
//! * `explicit-stream` — the paper's `MPIX_Stream_progress` wait loop.
//! * `global-thread`   — MPICH `MPIR_CVAR_ASYNC_PROGRESS` busy thread on
//!   the same stream (lock + core sharing with the "application").
//! * `adaptive-thread` — MVAPICH-style sleeping thread.
//! * `request-polling` — per-request MPI_Test loops (the redundant
//!   progress the extensions remove), measured in progress invocations.

use mpfa_baselines::adaptive_thread::{AdaptiveConfig, AdaptiveProgressThread};
use mpfa_baselines::polling::{wait_all_by_stream_progress, wait_all_by_testing};
use mpfa_baselines::GlobalProgressThread;
use mpfa_bench::report::{median_us, tmean_us, Series};
use mpfa_bench::workload::{shared_stats, spawn_dummy, Lcg};
use mpfa_core::{stats::LatencyStats, wtime, AsyncPoll, CompletionCounter, Request, Stream};

const NUM_TASKS: usize = 10;
const REPS: usize = 20;

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    ExplicitStream,
    GlobalThread,
    AdaptiveThread,
}

/// Event-response latency for dummy tasks under a given progress strategy.
/// With background-thread strategies the "application" thread does NOT
/// call progress — it blocks on the counter like a compute thread would.
fn run(strategy: Strategy) -> LatencyStats {
    let mut agg = LatencyStats::new();
    for rep in 0..REPS {
        let stream = Stream::create();
        let bg_global =
            (strategy == Strategy::GlobalThread).then(|| GlobalProgressThread::enable(&stream));
        let bg_adaptive = (strategy == Strategy::AdaptiveThread)
            .then(|| AdaptiveProgressThread::enable(&stream, AdaptiveConfig::default()));

        let stats = shared_stats();
        let counter = CompletionCounter::new(NUM_TASKS);
        let mut rng = Lcg::new(43 + rep as u64);
        let base = wtime();
        for _ in 0..NUM_TASKS {
            let deadline = base + 0.0005 + rng.next_f64() * 0.002;
            spawn_dummy(&stream, deadline, &stats, &counter);
        }
        if let Some(bg) = &bg_adaptive {
            bg.kick();
        }
        match strategy {
            Strategy::ExplicitStream => {
                while !counter.is_zero() {
                    stream.progress();
                }
            }
            _ => {
                // Application thread is "busy computing" — it never calls
                // progress; the background thread must drive everything.
                while !counter.is_zero() {
                    std::hint::spin_loop();
                }
            }
        }
        drop(bg_global);
        drop(bg_adaptive);
        agg.merge(&stats.lock());
    }
    agg
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Ablation A3a: dummy-task progress latency by strategy (10 tasks)",
        "strategy",
        &["tmean_us", "median_us"],
    );
    run(Strategy::ExplicitStream); // warmup
    for (name, strategy) in [
        ("explicit-stream", Strategy::ExplicitStream),
        ("global-thread", Strategy::GlobalThread),
        ("adaptive-thread", Strategy::AdaptiveThread),
    ] {
        let stats = run(strategy);
        series.row(name, &[tmean_us(&stats), median_us(&stats)]);
    }
    series.print();

    // --- A3b: redundant progress of request polling ----------------------
    let mut s2 = Series::new(
        "Ablation A3b: progress redundancy completing 32 requests (both loops \
         spin the same deadline-bound window; the waste shows per sweep)",
        "strategy",
        &["progress_calls", "calls_per_sweep", "wall_us"],
    );
    for (name, use_testing) in [("request-test-loop", true), ("stream-progress", false)] {
        let stream = Stream::create();
        let reqs: Vec<Request> = (0..32)
            .map(|i| {
                let (req, completer) = Request::pair(&stream);
                let deadline = wtime() + 0.0005 + i as f64 * 3e-5;
                let mut completer = Some(completer);
                stream.async_start(move |_t| {
                    if wtime() >= deadline {
                        completer.take().expect("once").complete_empty();
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
                req
            })
            .collect();
        let t0 = wtime();
        let (calls, sweeps) = if use_testing {
            let (_, stats) = wait_all_by_testing(&reqs);
            (stats.tests, stats.sweeps)
        } else {
            let (_, calls) = wait_all_by_stream_progress(&stream, &reqs);
            (calls, calls)
        };
        s2.row(
            name,
            &[
                calls as f64,
                calls as f64 / sweeps.max(1) as f64,
                (wtime() - t0) * 1e6,
            ],
        );
    }
    s2.print();
    println!();
    println!("expected: explicit stream progress has the lowest latency; the busy");
    println!("global thread matches it only by burning a core (and on this 1-core");
    println!("host it IS the oversubscribed case the paper warns about); the");
    println!("adaptive thread trades latency for CPU. Request-test loops invoke");
    println!("progress once per request per sweep vs once per sweep for streams.");
}

//! Completion-notification overhead: blocking wait vs continuation vs
//! async/await, plus a 64-request fan-in through one awaiting task.
//!
//! Part A repeats a fixed-size two-rank ping-pong (the fig07-style
//! repeated transfer) three times over, changing only how rank 0 learns
//! its receive completed:
//!
//! * **blocking** — `RecvRequest::wait` (the paper's baseline);
//! * **continuation** — `Request::on_complete` sets a flag, the caller
//!   progresses until it flips (MPIX_Continue style);
//! * **await** — `mpfa_async::block_on(recv_future)` through the
//!   per-request waker bridge.
//!
//! The continuation and await paths ride the same sweep that the
//! blocking wait drives, so their round-trip latency should sit within
//! ~1.2x of blocking — the notification machinery must not tax the
//! transfer itself.
//!
//! Part B posts 64 irregular receives (mixed sizes and peers) on rank 0
//! and awaits them all from a *single* executor task via `join_all`. One
//! thread drives progress; completion fan-in is waker-based, so
//! `engine_lock_contended` must stay ~flat — no hidden busy-wait loops
//! fighting over the engine lock.
//!
//! `--json PATH` writes the machine-readable record
//! (`results/async_overlap.json` is the committed reference run);
//! `--smoke` shrinks iteration counts and arms a watchdog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mpfa_async::{block_on, join_all, Executor};
use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::{Proc, World, WorldConfig};

/// Part A payload: one eager-path transfer, repeated.
const PINGPONG_BYTES: usize = 4096;
/// Part B: requests awaited by the single fan-in task.
const FANIN_REQS: usize = 64;
const FANIN_PEERS: usize = 3;

struct Config {
    iters: usize,
    json_path: String,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            iters: 2000,
            json_path: String::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--iters" => {
                    cfg.iters = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(cfg.iters)
                }
                "--smoke" => {
                    cfg.iters = 200;
                    arm_watchdog(60.0);
                }
                other => {
                    eprintln!(
                        "usage: async_overlap [--iters N] [--json PATH] [--smoke] (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

fn arm_watchdog(secs: f64) {
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        eprintln!("async_overlap: watchdog fired after {secs}s — a wait path wedged?");
        std::process::exit(124);
    });
}

#[derive(Clone, Copy)]
enum Notify {
    Blocking,
    Continuation,
    Await,
}

impl Notify {
    fn name(self) -> &'static str {
        match self {
            Notify::Blocking => "blocking",
            Notify::Continuation => "continuation",
            Notify::Await => "await",
        }
    }
}

/// Progress `stream` until `done`, yielding between unproductive sweeps.
/// Both ranks poll this way so that on an oversubscribed host (e.g. a
/// single-core CI box) a waiting rank hands the core to its peer instead
/// of burning a scheduler timeslice — otherwise every mode just measures
/// the preemption quantum. The same loop shape backs all three modes, so
/// the ratios isolate notification overhead.
fn progress_until(stream: &mpfa_core::Stream, mut done: impl FnMut() -> bool) {
    while !done() {
        stream.progress();
        if !done() {
            std::thread::yield_now();
        }
    }
}

/// Rank 0 of the ping-pong: sends the ping, then learns of the pong via
/// `mode`. Returns per-iteration round-trip seconds.
fn pingpong_initiator(proc: &Proc, mode: Notify, iters: usize) -> Vec<f64> {
    let comm = proc.world_comm();
    let stream = proc.default_stream().clone();
    let payload = vec![7u8; PINGPONG_BYTES];
    let mut samples = Vec::with_capacity(iters);
    for i in 0..iters {
        let t0 = wtime();
        let recv = comm.irecv::<u8>(PINGPONG_BYTES, 1, 2).unwrap();
        comm.isend(&payload, 1, 1).unwrap();
        match mode {
            Notify::Blocking => {
                // MPI_Wait: poll the completion flag.
                let req = recv.request();
                progress_until(&stream, || req.is_complete());
                let (data, _) = recv.take();
                assert_eq!(data.len(), PINGPONG_BYTES);
            }
            Notify::Continuation => {
                // MPIX_Continue: poll a flag the continuation sets.
                let flag = Arc::new(AtomicBool::new(false));
                let f2 = flag.clone();
                recv.request().on_complete(move |res| {
                    res.expect("pong recv failed");
                    f2.store(true, Ordering::Release);
                });
                progress_until(&stream, || flag.load(Ordering::Acquire));
            }
            Notify::Await => {
                // Waker bridge: poll the future, progress until woken.
                let (data, _) = block_on(&stream, recv).expect("pong recv failed");
                assert_eq!(data.len(), PINGPONG_BYTES);
            }
        }
        if i >= iters / 10 {
            // First 10% is warmup.
            samples.push(wtime() - t0);
        }
    }
    samples
}

/// Rank 1 echoes every ping back, mode-agnostic.
fn pingpong_echo(proc: &Proc, iters: usize) {
    let comm = proc.world_comm();
    let stream = proc.default_stream().clone();
    for _ in 0..iters {
        let recv = comm.irecv::<u8>(PINGPONG_BYTES, 0, 1).unwrap();
        let req = recv.request();
        progress_until(&stream, || req.is_complete());
        let (data, _) = recv.take();
        let send = comm.isend(&data, 0, 2).unwrap();
        progress_until(&stream, || send.is_complete());
    }
}

fn run_pingpong(mode: Notify, iters: usize) -> Vec<f64> {
    let procs = World::init(WorldConfig::instant(2));
    std::thread::scope(|s| {
        let mut it = procs.iter();
        let p0 = it.next().unwrap();
        let p1 = it.next().unwrap();
        let h0 = s.spawn(move || pingpong_initiator(p0, mode, iters));
        let h1 = s.spawn(move || pingpong_echo(p1, iters));
        h1.join().expect("echo rank panicked");
        let samples = h0.join().expect("initiator rank panicked");
        for p in &procs {
            p.finalize(2.0);
        }
        samples
    })
}

struct LatencyRow {
    mean_us: f64,
    p50_us: f64,
    p95_us: f64,
}

fn summarize(samples: &mut [f64]) -> LatencyRow {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    LatencyRow {
        mean_us: mean * 1e6,
        p50_us: samples[samples.len() / 2] * 1e6,
        p95_us: samples[samples.len() * 95 / 100] * 1e6,
    }
}

struct FaninOutcome {
    duration_ms: f64,
    lock_contended_delta: u64,
    wakers_woken_delta: u64,
    continuations_fired_delta: u64,
}

/// Part B: rank 0 posts 64 irregular receives and awaits them all from
/// one executor task; peers send with mixed sizes (eager and rendezvous
/// paths both exercised).
fn run_fanin() -> FaninOutcome {
    let procs = World::init(WorldConfig::instant(FANIN_PEERS + 1));
    let before = mpfa_obs::global_counters().snapshot();
    let t0 = wtime();
    std::thread::scope(|s| {
        for proc in &procs {
            s.spawn(move || {
                let comm = proc.world_comm();
                if proc.rank() == 0 {
                    let stream = proc.default_stream().clone();
                    let exec = Executor::new(&stream);
                    let mut reqs = Vec::with_capacity(FANIN_REQS);
                    for i in 0..FANIN_REQS {
                        let peer = 1 + (i % FANIN_PEERS) as i32;
                        let bytes = irregular_bytes(i);
                        let r = comm.irecv::<u8>(bytes, peer, i as i32 + 1).unwrap();
                        reqs.push(r.request());
                    }
                    // The single awaiting task: one future fans in all 64
                    // completions through the waker bridge. The main
                    // thread just pumps the stream (which polls the task
                    // from inside the sweep).
                    let handle = exec.spawn(async move {
                        join_all(reqs)
                            .await
                            .into_iter()
                            .filter(|r| r.is_ok())
                            .count()
                    });
                    progress_until(&stream, || handle.is_finished());
                    assert_eq!(handle.join(), FANIN_REQS, "fan-in recv failed");
                } else {
                    let me = proc.rank();
                    let stream = proc.default_stream().clone();
                    for i in 0..FANIN_REQS {
                        if 1 + (i % FANIN_PEERS) != me {
                            continue;
                        }
                        let bytes = irregular_bytes(i);
                        let send = comm.isend(&vec![me as u8; bytes], 0, i as i32 + 1).unwrap();
                        progress_until(&stream, || send.is_complete());
                    }
                }
                proc.finalize(2.0);
            });
        }
    });
    let duration_ms = (wtime() - t0) * 1e3;
    let after = mpfa_obs::global_counters().snapshot();
    FaninOutcome {
        duration_ms,
        lock_contended_delta: after.engine_lock_contended - before.engine_lock_contended,
        wakers_woken_delta: after.wakers_woken - before.wakers_woken,
        continuations_fired_delta: after.continuations_fired - before.continuations_fired,
    }
}

/// Mixed sizes: every 4th transfer is rendezvous-sized, the rest eager.
fn irregular_bytes(i: usize) -> usize {
    if i % 4 == 3 {
        96 * 1024
    } else {
        64 + 512 * (i % 7)
    }
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let cfg = Config::from_args();
    println!(
        "async_overlap: {} iters x {} B ping-pong; {}-request fan-in",
        cfg.iters, PINGPONG_BYTES, FANIN_REQS
    );

    let modes = [Notify::Blocking, Notify::Continuation, Notify::Await];
    let mut rows = Vec::new();
    println!("mode           mean_us    p50_us    p95_us");
    for mode in modes {
        let mut samples = run_pingpong(mode, cfg.iters);
        let row = summarize(&mut samples);
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3}",
            mode.name(),
            row.mean_us,
            row.p50_us,
            row.p95_us
        );
        rows.push(row);
    }
    let cont_ratio = rows[1].p50_us / rows[0].p50_us;
    let await_ratio = rows[2].p50_us / rows[0].p50_us;
    println!("continuation/blocking p50 ratio: {cont_ratio:.3}");
    println!("await/blocking        p50 ratio: {await_ratio:.3}");
    println!("expected shape: both ratios within ~1.2x of blocking wait");

    let fanin = run_fanin();
    println!(
        "fan-in: {} reqs in {:.3} ms — engine_lock_contended +{}, \
         wakers_woken +{}, continuations_fired +{}",
        FANIN_REQS,
        fanin.duration_ms,
        fanin.lock_contended_delta,
        fanin.wakers_woken_delta,
        fanin.continuations_fired_delta
    );
    println!("expected shape: lock contention ~flat (single awaiting task, no busy-wait)");

    if !cfg.json_path.is_empty() {
        let lat = |r: &LatencyRow| {
            let mut o = JsonObj::new();
            o.float("mean_us", r.mean_us)
                .float("p50_us", r.p50_us)
                .float("p95_us", r.p95_us);
            o
        };
        let mut fan = JsonObj::new();
        fan.int("requests", FANIN_REQS as u64)
            .int("peers", FANIN_PEERS as u64)
            .float("duration_ms", fanin.duration_ms)
            .int("engine_lock_contended_delta", fanin.lock_contended_delta)
            .int("wakers_woken_delta", fanin.wakers_woken_delta)
            .int("continuations_fired_delta", fanin.continuations_fired_delta);
        let mut root = JsonObj::new();
        root.str("bench", "async_overlap")
            .int("iters", cfg.iters as u64)
            .int("pingpong_bytes", PINGPONG_BYTES as u64)
            .obj("blocking", &lat(&rows[0]))
            .obj("continuation", &lat(&rows[1]))
            .obj("await", &lat(&rows[2]))
            .float("continuation_over_blocking_p50", cont_ratio)
            .float("await_over_blocking_p50", await_ratio)
            .obj("fanin", &fan);
        root.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

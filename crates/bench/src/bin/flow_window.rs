//! Flow windowed-aggregation benchmark: event fan-in throughput and
//! frontier-advance latency.
//!
//! Each trial runs the full mpfa-flow windowed pipeline (event fan-in →
//! shuffle by key → per-window reduce → emit on frontier passage) on an
//! in-process 4-rank world, one thread per rank, and measures:
//!
//! * **events/sec** — aggregate events produced (and therefore shuffled,
//!   reduced and frontier-retired) across all ranks, divided by the
//!   pipeline's wall time;
//! * **frontier-advance latency** — per emitted window, the time between
//!   the last partial contribution landing at the window's owner and the
//!   frontier callback releasing the emission: the lag the capability
//!   gossip adds on top of data delivery.
//!
//! Every trial also verifies each rank's emissions against the serially
//! computed ground truth, so the numbers only count *correct* pipeline
//! runs. `--json PATH` writes a machine-readable record
//! (`results/flow_window.json` is the committed reference run);
//! `--smoke` shrinks the workload and arms a watchdog that exits 124 if
//! the pipeline wedges.

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_flow::window::{expected_output, WindowCfg, WindowWorker};
use mpfa_flow::FlowContext;
use mpfa_mpi::{World, WorldConfig};

const N: usize = 4;

struct Config {
    trials: usize,
    windows: u64,
    events_per_window: u64,
    json_path: String,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            trials: 5,
            windows: 64,
            events_per_window: 16 * 1024,
            json_path: String::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--trials" => {
                    cfg.trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(cfg.trials)
                }
                "--windows" => {
                    cfg.windows = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(cfg.windows)
                }
                "--smoke" => {
                    cfg.trials = 2;
                    cfg.windows = 16;
                    cfg.events_per_window = 2048;
                    arm_watchdog(60.0);
                }
                other => {
                    eprintln!(
                        "usage: flow_window [--trials N] [--windows W] [--json PATH] [--smoke] \
                         (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

fn arm_watchdog(secs: f64) {
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        eprintln!("flow_window: watchdog fired after {secs}s — pipeline wedged?");
        std::process::exit(124);
    });
}

struct Trial {
    events_per_sec: f64,
    emit_latencies_ms: Vec<f64>,
}

fn one_trial(wcfg: WindowCfg) -> Trial {
    let procs = World::init(WorldConfig::instant(N));
    let want = expected_output(&wcfg);
    let want = &want;
    // Per-rank results: (emit latencies, pipeline seconds). Each rank
    // times only the pipeline loop — context install, worker
    // construction (event-generator state, skip masks) and thread spawn
    // are per-trial setup and stay out of the timed region; a barrier
    // after setup keeps the clocks honest. The trial's wall time is the
    // slowest rank's, since the pipeline only finishes when every rank
    // has retired its windows.
    let results: Vec<(Vec<f64>, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|proc| {
                s.spawn(move || {
                    let fx = FlowContext::install(&proc);
                    let comm = proc.world_comm();
                    let mut worker = WindowWorker::new(
                        &fx,
                        &comm,
                        wcfg,
                        &vec![false; wcfg.windows as usize],
                        Default::default(),
                    );
                    comm.barrier().expect("pre-trial barrier");
                    let t0 = wtime();
                    while worker.step() {
                        proc.default_stream().progress();
                    }
                    let secs = wtime() - t0;
                    for (w, got) in worker.emitted() {
                        assert_eq!(got, &want[w], "window {w} output mismatch");
                    }
                    assert!(worker.frontier_honest());
                    let lat: Vec<f64> = worker.emit_latencies().iter().map(|&s| s * 1e3).collect();
                    fx.shutdown();
                    proc.finalize(2.0);
                    (lat, secs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    });
    let elapsed = results
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    Trial {
        events_per_sec: (wcfg.total_slots() as f64) / elapsed,
        emit_latencies_ms: results.into_iter().flat_map(|(l, _)| l).collect(),
    }
}

/// (min, median, max) of a sorted-on-demand sample set.
fn spread(values: &mut [f64]) -> (f64, f64, f64) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        values[0],
        values[values.len() / 2],
        values[values.len() - 1],
    )
}

fn main() {
    let cfg = Config::from_args();
    let wcfg = WindowCfg {
        windows: cfg.windows,
        events_per_window: cfg.events_per_window,
        keys: 509,
        seed: 0xbe9c,
        batch: 512,
    };
    println!(
        "flow_window: {} trials, {} ranks, {} windows x {} events = {} events/trial",
        cfg.trials,
        N,
        wcfg.windows,
        wcfg.events_per_window,
        wcfg.total_slots()
    );

    let mut throughput = Vec::new();
    let mut latencies = Vec::new();
    for _ in 0..cfg.trials {
        let t = one_trial(wcfg);
        println!(
            "  {:>10.0} events/s, {} latency samples",
            t.events_per_sec,
            t.emit_latencies_ms.len()
        );
        throughput.push(t.events_per_sec);
        latencies.extend(t.emit_latencies_ms);
    }

    let (t_min, t_p50, t_max) = spread(&mut throughput);
    let (l_min, l_p50, l_max) = spread(&mut latencies);
    println!("                      min         p50         max");
    println!("events/s     {t_min:12.0} {t_p50:12.0} {t_max:12.0}");
    println!("frontier ms  {l_min:12.4} {l_p50:12.4} {l_max:12.4}");

    if !cfg.json_path.is_empty() {
        let mut thr = JsonObj::new();
        thr.float("min", t_min)
            .float("p50", t_p50)
            .float("max", t_max);
        let mut lat = JsonObj::new();
        lat.float("min_ms", l_min)
            .float("p50_ms", l_p50)
            .float("max_ms", l_max);
        let mut root = JsonObj::new();
        root.str("bench", "flow_window")
            .int("ranks", N as u64)
            .int("trials", cfg.trials as u64)
            .int("windows", wcfg.windows)
            .int("events_per_window", wcfg.events_per_window)
            .int("events_per_trial", wcfg.total_slots())
            .obj("events_per_sec", &thr)
            .obj("frontier_advance_latency", &lat);
        root.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

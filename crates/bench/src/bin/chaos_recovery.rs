//! Chaos recovery benchmark: how long the ULFM cycle takes, end to end.
//!
//! Each trial builds a fresh 4-rank in-process world with resilience
//! enabled, kills one rank mid-collective via [`World::chaos_kill`], and
//! times two spans on every survivor, both measured from the instant of
//! the kill:
//!
//! * **detect** — until the failure first surfaces as a request error
//!   (a `PeerFailed` from the transport evidence, or a `Revoked` from a
//!   faster survivor's revoke flood reaching this rank first);
//! * **recover** — until the survivor has completed the full
//!   revoke → agree → shrink cycle *and* finished a verified allreduce
//!   on the shrunken communicator.
//!
//! The gap between the two is the price of the recovery protocol itself;
//! the detect span is the price of evidence propagation. `--json PATH`
//! writes a machine-readable record (`results/chaos_recovery.json` is
//! the committed reference run); `--smoke` shrinks the trial count and
//! arms a watchdog that exits 124 if recovery wedges.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::{DetectorConfig, Op, World, WorldConfig};

const N: usize = 4;
/// Never rank 0: the lowest alive rank coordinates agree/shrink.
const VICTIM: usize = 2;

struct Config {
    trials: usize,
    json_path: String,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            trials: 20,
            json_path: String::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--trials" => {
                    cfg.trials = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(cfg.trials)
                }
                "--smoke" => {
                    cfg.trials = 3;
                    arm_watchdog(60.0);
                }
                other => {
                    eprintln!(
                        "usage: chaos_recovery [--trials N] [--json PATH] [--smoke] (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

fn arm_watchdog(secs: f64) {
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        eprintln!("chaos_recovery: watchdog fired after {secs}s — recovery wedged?");
        std::process::exit(124);
    });
}

/// One survivor's timings, in milliseconds from the kill instant.
struct Sample {
    detect_ms: f64,
    recover_ms: f64,
}

/// Run one kill-and-recover cycle; returns one sample per survivor.
fn one_trial() -> Vec<Sample> {
    let procs = World::init(WorldConfig::instant(N));
    let victim_done = AtomicBool::new(false);
    let t_kill = AtomicU64::new(0);
    let (victim_done, t_kill) = (&victim_done, &t_kill);

    std::thread::scope(|s| {
        let handles: Vec<_> = procs
            .into_iter()
            .map(|proc| {
                s.spawn(move || {
                    proc.enable_resilience(DetectorConfig::default());
                    let comm = proc.world_comm();
                    // Warmup proves the full world works pre-kill.
                    let warm = comm.allreduce(&[1i64], Op::Sum);
                    if proc.rank() == VICTIM {
                        assert_eq!(warm.unwrap(), vec![N as i64]);
                        victim_done.store(true, Ordering::Release);
                        return None;
                    }
                    if proc.rank() == (VICTIM + 1) % N {
                        while !victim_done.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        t_kill.store(wtime().to_bits(), Ordering::SeqCst);
                        assert!(proc.world().chaos_kill(VICTIM));
                    }
                    // Collective loop until the failure surfaces.
                    let detect_at = loop {
                        let fut = comm.iallreduce(&[1i64], Op::Sum).unwrap();
                        if fut.wait_result().is_err() {
                            break wtime();
                        }
                    };
                    comm.revoke().expect("revoke");
                    assert!(comm.agree(true).expect("agree"));
                    let shrunk = comm.shrink().expect("shrink");
                    let total = shrunk.allreduce(&[1i64], Op::Sum).expect("allreduce");
                    assert_eq!(total, vec![shrunk.size() as i64]);
                    let recover_at = wtime();
                    proc.finalize(2.0);
                    let killed = f64::from_bits(t_kill.load(Ordering::SeqCst));
                    Some(Sample {
                        detect_ms: (detect_at - killed) * 1e3,
                        recover_ms: (recover_at - killed) * 1e3,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

/// (min, median, max) of a sorted-on-demand sample set.
fn spread(values: &mut [f64]) -> (f64, f64, f64) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        values[0],
        values[values.len() / 2],
        values[values.len() - 1],
    )
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "chaos_recovery: {} trials, {} ranks, victim {}",
        cfg.trials, N, VICTIM
    );

    let mut detect = Vec::new();
    let mut recover = Vec::new();
    for t in 0..cfg.trials {
        let samples = one_trial();
        assert_eq!(samples.len(), N - 1, "trial {t}: survivor count");
        for s in samples {
            detect.push(s.detect_ms);
            recover.push(s.recover_ms);
        }
    }

    let (d_min, d_p50, d_max) = spread(&mut detect);
    let (r_min, r_p50, r_max) = spread(&mut recover);
    println!("                 min       p50       max");
    println!("detect   ms  {d_min:8.3}  {d_p50:8.3}  {d_max:8.3}");
    println!("recover  ms  {r_min:8.3}  {r_p50:8.3}  {r_max:8.3}");

    if !cfg.json_path.is_empty() {
        let span = |min: f64, p50: f64, max: f64| {
            let mut o = JsonObj::new();
            o.float("min_ms", min)
                .float("p50_ms", p50)
                .float("max_ms", max);
            o
        };
        let mut root = JsonObj::new();
        root.str("bench", "chaos_recovery")
            .int("ranks", N as u64)
            .int("victim", VICTIM as u64)
            .int("trials", cfg.trials as u64)
            .int("samples", detect.len() as u64)
            .obj("detect", &span(d_min, d_p50, d_max))
            .obj("recover", &span(r_min, r_p50, r_max));
        root.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

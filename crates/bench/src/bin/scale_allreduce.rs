//! Many-rank allreduce scaling benchmark and syscall-flatness guard.
//!
//! Sweeps world size × message size over the wire backends (loopback
//! TCP and shared-memory rings, all ranks as threads of this process)
//! and records per-allreduce latency together with the reactor's obs
//! counters: `wire_syscalls`, `wire_syscalls_saved`, `reactor_wakeups`.
//! The counters are process-global, so each point reports the whole
//! world's syscall bill, not one rank's.
//!
//! The point of the exercise is the reactor's scaling contract: a pump
//! pass touches only *ready* peers (readable, dirty-TX, or needing
//! connection attention) and counts every skipped connected peer in
//! `wire_syscalls_saved` — so the per-sweep syscall cost is O(ready
//! peers), not O(peers). `--smoke` proves exactly that with a guard:
//! the same two-rank traffic pattern inside a 4-rank and a 16-rank
//! world must cost roughly the *same* number of socket syscalls per
//! round (legacy full-scan pumping would pay ~4x more at 16 ranks),
//! while the saved-syscall counter must *grow* with the number of idle
//! peers skipped.
//!
//! Flags:
//! * `--json PATH` — machine-readable record (CI writes
//!   `results/scale_allreduce.json`).
//! * `--smoke` — shrink the sweep to ranks {4, 16}, run the flatness
//!   guard, and arm a watchdog that exits 124 on a hang.
//! * `--transport NAME` — run only the named backend (`tcp`/`shm`);
//!   repeatable.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::wire::WireMsg;
use mpfa_mpi::{Comm, Op, World, WorldConfig};
use mpfa_obs::global_counters;
use mpfa_transport::{loopback_mesh, reactor_enabled, Transport, TransportKind, WireOpts};

/// World sizes for the committed sweep.
const RANK_SWEEP: [usize; 3] = [4, 16, 64];
/// Message sizes in u64 elements: 64 B, 8 KiB, 512 KiB on the wire.
const SIZE_SWEEP: [usize; 3] = [8, 1024, 65536];

struct Config {
    json_path: String,
    smoke: bool,
    transports: Vec<TransportKind>,
}

fn parse_kind(name: &str) -> TransportKind {
    match name {
        "tcp" => TransportKind::Tcp,
        "shm" => TransportKind::Shm,
        other => {
            eprintln!("scale_allreduce: unknown transport {other} (want tcp|shm)");
            std::process::exit(2);
        }
    }
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            json_path: String::new(),
            smoke: false,
            transports: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--smoke" => cfg.smoke = true,
                "--transport" => cfg
                    .transports
                    .push(parse_kind(&args.next().unwrap_or_default())),
                other => {
                    eprintln!(
                        "usage: scale_allreduce [--json PATH] [--smoke] \
                         [--transport tcp|shm]... (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One measured point, with the world's syscall bill per allreduce.
struct Point {
    ranks: usize,
    bytes: usize,
    reps: usize,
    usec_per_allreduce: f64,
    syscalls_per_op: f64,
    saved_per_op: f64,
    wakeups_per_op: f64,
}

/// Snapshot of the reactor-relevant obs counters.
#[derive(Clone, Copy)]
struct Counters {
    syscalls: u64,
    saved: u64,
    wakeups: u64,
}

fn counters_now() -> Counters {
    let c = global_counters();
    Counters {
        syscalls: c.wire_syscalls.load(Ordering::Relaxed),
        saved: c.wire_syscalls_saved.load(Ordering::Relaxed),
        wakeups: c.reactor_wakeups.load(Ordering::Relaxed),
    }
}

/// Reps shrink with world size and message size so every point costs
/// comparable wall time on an oversubscribed box.
fn reps_for(ranks: usize, elems: usize, smoke: bool) -> usize {
    let base = match ranks {
        0..=4 => 24,
        5..=16 => 10,
        _ => 4,
    };
    let r = if elems >= 65536 { base / 2 } else { base };
    if smoke {
        (r / 4).max(2)
    } else {
        r.max(2)
    }
}

/// Spin up `ranks` in-process ranks on `kind` and run `body` on each.
/// Returns rank 0's result.
fn with_world<R: Send>(kind: TransportKind, ranks: usize, body: impl Fn(&Comm) -> R + Sync) -> R {
    let cfg = WorldConfig {
        transport: kind,
        ..WorldConfig::instant(ranks)
    };
    let ports: Vec<Arc<dyn Transport<WireMsg>>> =
        loopback_mesh::<WireMsg>(kind, ranks, cfg.max_vcis, WireOpts::default())
            .expect("loopback mesh");
    let body = &body;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let cfg = cfg.clone();
                let port = ports[rank].clone();
                s.spawn(move || {
                    let p = World::init_with_transport(cfg, rank, port);
                    body(&p.world_comm())
                })
            })
            .collect();
        let mut results: Vec<R> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        results.swap_remove(0)
    })
}

/// One sweep point: `reps` summing allreduces of `elems` u64s across
/// the whole world, timed on rank 0 with counter deltas around the
/// timed region (a barrier on each side keeps connection setup and
/// teardown out of the window).
fn run_point(kind: TransportKind, ranks: usize, elems: usize, reps: usize) -> Point {
    let (secs, delta) = with_world(kind, ranks, |comm| {
        let data: Vec<u64> = (0..elems).map(|i| i as u64 + comm.rank() as u64).collect();
        // Warm the path (first allreduce pays matching setup).
        comm.allreduce(&data, Op::Sum).expect("warmup allreduce");
        comm.barrier().expect("barrier");
        let before = counters_now();
        let t0 = wtime();
        for _ in 0..reps {
            let out = comm.allreduce(&data, Op::Sum).expect("allreduce");
            assert_eq!(out.len(), elems);
        }
        let secs = wtime() - t0;
        comm.barrier().expect("barrier");
        let after = counters_now();
        (
            secs,
            Counters {
                syscalls: after.syscalls - before.syscalls,
                saved: after.saved - before.saved,
                wakeups: after.wakeups - before.wakeups,
            },
        )
    });
    Point {
        ranks,
        bytes: elems * 8,
        reps,
        usec_per_allreduce: secs / reps as f64 * 1e6,
        syscalls_per_op: delta.syscalls as f64 / reps as f64,
        saved_per_op: delta.saved as f64 / reps as f64,
        wakeups_per_op: delta.wakeups as f64 / reps as f64,
    }
}

/// The smoke guard: two active ranks exchange the same number of
/// messages inside a 4-rank and a 16-rank world (every other rank
/// parks on an irecv). Under the reactor the pump touches only the
/// two ready peers, so the syscall bill per round must stay roughly
/// flat as the world grows — while `wire_syscalls_saved` must grow,
/// because more connected-but-idle peers are skipped per sweep.
fn syscall_flatness_guard(kind: TransportKind) {
    const ROUNDS: usize = 200;
    let per_round: Vec<(usize, f64, f64)> = [4usize, 16]
        .iter()
        .map(|&ranks| {
            let delta = with_world(kind, ranks, |comm| {
                comm.barrier().expect("barrier");
                let rank = comm.rank();
                let before = counters_now();
                if rank == 0 {
                    for k in 0..ROUNDS {
                        let r = comm.irecv::<u64>(1, 1, 2).expect("irecv");
                        comm.isend(&[k as u64], 1, 1).expect("isend");
                        r.wait();
                    }
                    // Release the parked ranks.
                    for peer in 2..ranks as i32 {
                        comm.isend(&[0u64], peer, 3).expect("release");
                    }
                } else if rank == 1 {
                    for k in 0..ROUNDS {
                        let (data, _) = comm.irecv::<u64>(1, 0, 1).expect("irecv").wait();
                        assert_eq!(data[0], k as u64);
                        comm.isend(&data, 0, 2).expect("echo");
                    }
                } else {
                    // Idle peer: connected, readable-never, must cost
                    // nothing per sweep.
                    comm.irecv::<u64>(1, 0, 3).expect("park").wait();
                }
                let after = counters_now();
                comm.barrier().expect("barrier");
                (after.syscalls - before.syscalls, after.saved - before.saved)
            });
            (
                ranks,
                delta.0 as f64 / ROUNDS as f64,
                delta.1 as f64 / ROUNDS as f64,
            )
        })
        .collect();

    let (small_ranks, small_sys, small_saved) = per_round[0];
    let (big_ranks, big_sys, big_saved) = per_round[1];
    println!(
        "guard[{kind}]: {small_ranks} ranks {small_sys:.1} syscalls/round \
         ({small_saved:.1} saved), {big_ranks} ranks {big_sys:.1} syscalls/round \
         ({big_saved:.1} saved)"
    );
    // O(ready peers), not O(peers): 4x the world must not cost
    // anywhere near 4x the syscalls for identical two-rank traffic.
    // The 3x slack absorbs scheduling noise; a full scan would pay
    // ~(15 connected / 3 connected) = 5x here.
    assert!(
        big_sys <= small_sys * 3.0,
        "syscalls per round grew with idle peers: {small_sys:.1} at \
         {small_ranks} ranks vs {big_sys:.1} at {big_ranks} ranks — \
         the pump is scanning O(peers), not O(ready peers)"
    );
    // And the skipped peers must actually be accounted as savings.
    assert!(
        big_saved > small_saved,
        "wire_syscalls_saved per round did not grow with idle peers \
         ({small_saved:.1} -> {big_saved:.1})"
    );
    println!("guard[{kind}]: syscalls per sweep are O(ready peers) — ok");
}

fn main() {
    let cfg = Config::from_args();
    if cfg.smoke {
        std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_secs(240));
            eprintln!("scale_allreduce: smoke watchdog fired");
            std::process::exit(124);
        });
    }

    let kinds: Vec<TransportKind> = if !cfg.transports.is_empty() {
        cfg.transports.clone()
    } else {
        vec![TransportKind::Tcp, TransportKind::Shm]
    };
    let rank_sweep: &[usize] = if cfg.smoke { &[4, 16] } else { &RANK_SWEEP };
    let size_sweep: &[usize] = if cfg.smoke { &[1024] } else { &SIZE_SWEEP };

    let mut records = Vec::new();
    for &kind in &kinds {
        println!("== {kind} ==");
        let mut point_objs = Vec::new();
        for &ranks in rank_sweep {
            for &elems in size_sweep {
                let reps = reps_for(ranks, elems, cfg.smoke);
                let p = run_point(kind, ranks, elems, reps);
                println!(
                    "  {:>3} ranks {:>8} B  {:>12.1} us/allreduce  \
                     {:>8.1} syscalls/op  {:>10.1} saved/op  {:>8.1} wakeups/op",
                    p.ranks,
                    p.bytes,
                    p.usec_per_allreduce,
                    p.syscalls_per_op,
                    p.saved_per_op,
                    p.wakeups_per_op
                );
                let mut o = JsonObj::new();
                o.int("ranks", p.ranks as u64)
                    .int("bytes", p.bytes as u64)
                    .int("reps", p.reps as u64)
                    .float("usec_per_allreduce", p.usec_per_allreduce)
                    .float("syscalls_per_op", p.syscalls_per_op)
                    .float("saved_per_op", p.saved_per_op)
                    .float("wakeups_per_op", p.wakeups_per_op);
                point_objs.push(o);
            }
        }
        let mut rec = JsonObj::new();
        rec.str("transport", &kind.to_string())
            .arr("points", &point_objs);
        records.push(rec);
    }

    if cfg.smoke {
        if reactor_enabled() {
            // The flatness contract is about *socket* syscalls; the shm
            // backend moves bytes through futex-doorbell rings and never
            // touches the wire counters, so the guard runs on the
            // socket-backed kinds only.
            for &kind in kinds.iter().filter(|&&k| k != TransportKind::Shm) {
                syscall_flatness_guard(kind);
            }
        } else {
            println!("guard: reactor disabled (MPFA_REACTOR=0 or non-Linux), skipping");
        }
    }

    if !cfg.json_path.is_empty() {
        let mut out = JsonObj::new();
        out.str("bench", "scale_allreduce")
            .bool("smoke", cfg.smoke)
            .bool("reactor", reactor_enabled())
            .arr("transports", &records);
        out.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

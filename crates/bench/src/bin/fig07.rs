//! Figure 7: event-response latency vs number of pending independent
//! async tasks.
//!
//! "If all the pending tasks are independent, each progress call must
//! invoke poll_fn for every pending task, leading to a performance
//! degradation as the number of pending tasks rises. Notably, when there
//! are fewer than 32 pending tasks, the latency overhead remains below
//! 0.5 microseconds."

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_bench::workload::measure_batch;
use mpfa_core::Stream;

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 7: progress latency vs pending independent tasks (one progress thread)",
        "tasks",
        &["tmean_us", "median_us", "p95_us"],
    );
    // Warm up the allocator/timer.
    let warm = Stream::create();
    measure_batch(&warm, 64, 0.0001, 0.001, 1);

    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        // Deadlines spread over a window that scales mildly with n so
        // early completions coexist with many still-pending polls, as in
        // the paper's setup.
        let window = 0.002 + n as f64 * 2e-6;
        let mut agg = mpfa_core::stats::LatencyStats::new();
        // Keep >=200 samples per row so occasional OS preemption spikes
        // cannot dominate the trimmed mean.
        let reps = (200 / n).clamp(5, 200) as u64;
        for rep in 0..reps {
            let stream = Stream::create();
            let stats = measure_batch(&stream, n, 0.0005, window, 100 + rep);
            agg.merge(&stats);
        }
        series.row(n, &[tmean_us(&agg), median_us(&agg), p95_us(&agg)]);
    }
    series.print();
    println!();
    println!("expected shape: latency grows with task count; sub-microsecond below ~32 tasks");
}

//! Ablation: hot-path contention — progress-call latency and message rate
//! as the number of threads driving ONE stream grows.
//!
//! Two workloads, both swept over 1/2/4/8 pollers:
//!
//! * **progress latency** — a shared stream with a steady set of
//!   self-rearming tasks; every poller measures the wall time of each of
//!   its own `Stream::progress` calls. Under a convoying engine lock the
//!   tail explodes with the poller count; under the combining lock a
//!   contended caller is served by the holder instead of blocking.
//! * **message rate** — one receiving VCI with a deep posted-receive queue
//!   (round-robin tags, sends issued tag-major so a linear matcher scans
//!   across the whole window) drained by N pollers. Exercises bucketed tag
//!   matching, the fabric batch drain, and the engine lock at once.
//!
//! A single-threaded fig07-style run (64 pending tasks, one poller) guards
//! against regressing the uncontended path while optimizing the contended
//! one.
//!
//! `--json PATH` writes a machine-readable record of the run;
//! `--smoke` shrinks every dimension and arms a watchdog that exits with
//! code 124 if the sweep wedges (CI deadlock guard).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mpfa_bench::json::JsonObj;
use mpfa_bench::report::Series;
use mpfa_bench::workload::{measure_batch, Lcg};
use mpfa_core::stats::LatencyStats;
use mpfa_core::{wtime, AsyncPoll, Stream};
use mpfa_fabric::{Fabric, FabricConfig};
use mpfa_mpi::protocol::ProtoConfig;
use mpfa_mpi::subsys::{NetmodHook, ShmemHook};
use mpfa_mpi::vci::Vci;
use mpfa_mpi::wire::{MsgHeader, WireMsg};

const POLLER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    /// Seconds each latency measurement runs.
    latency_duration: f64,
    /// Steady task population for the latency workload.
    latency_tasks: usize,
    /// Messages per message-rate run.
    msgs: usize,
    /// Distinct tags in the posted-receive window.
    tags: usize,
    /// Repetitions of the fig07-style single-thread guard.
    fig07_reps: u64,
    /// Where to write the JSON record (empty = don't).
    json_path: String,
    /// Free-form label recorded in the JSON (`before` / `after` / ...).
    label: String,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            latency_duration: 0.25,
            latency_tasks: 16,
            msgs: 6000,
            tags: 16,
            fig07_reps: 30,
            json_path: String::new(),
            label: "run".to_string(),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--smoke" => {
                    cfg.latency_duration = 0.05;
                    cfg.msgs = 1000;
                    cfg.fig07_reps = 3;
                    arm_watchdog(60.0);
                }
                "--json" => {
                    i += 1;
                    cfg.json_path = args.get(i).expect("--json needs a path").clone();
                }
                "--label" => {
                    i += 1;
                    cfg.label = args.get(i).expect("--label needs a value").clone();
                }
                "--trace" | "--doctor" => {} // handled by TraceGuard
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }
}

/// Abort the process if the benchmark has not finished within `secs` —
/// converts a deadlock in the concurrency hot path into a CI failure
/// instead of a hung job.
fn arm_watchdog(secs: f64) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs_f64(secs));
        eprintln!("abl_contention: watchdog fired after {secs}s — deadlock?");
        std::process::exit(124);
    });
}

/// Per-call `Stream::progress` latency with `pollers` threads hammering
/// one stream that carries a steady population of self-rearming tasks.
fn progress_latency(pollers: usize, cfg: &Config) -> LatencyStats {
    let stream = Stream::create();
    let stop = Arc::new(AtomicBool::new(false));
    let mut rng = Lcg::new(0xC0FFEE);
    for _ in 0..cfg.latency_tasks {
        let stop = stop.clone();
        let period = 100e-6 + rng.next_f64() * 300e-6;
        let mut next = wtime() + period * rng.next_f64();
        stream.async_start(move |_t| {
            if stop.load(Ordering::Acquire) {
                return AsyncPoll::Done;
            }
            if wtime() >= next {
                next = wtime() + period;
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
    }
    let mut agg = LatencyStats::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..pollers)
            .map(|_| {
                let stream = stream.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut local = LatencyStats::with_capacity(1 << 14);
                    while !stop.load(Ordering::Acquire) {
                        let t0 = wtime();
                        stream.progress();
                        local.add(wtime() - t0);
                    }
                    local
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(cfg.latency_duration));
        stop.store(true, Ordering::Release);
        for h in handles {
            agg.merge(&h.join().expect("poller panicked"));
        }
    });
    assert!(stream.drain(5.0), "latency workload did not drain");
    agg
}

/// Message rate: `cfg.msgs` buffered sends against a pre-posted window of
/// receives (tags round-robin; sends issued tag-major, i.e. worst-case for
/// a linear matcher), drained by `pollers` threads on the receiving
/// stream. Returns (msgs_per_sec, elapsed_s).
fn message_rate(pollers: usize, cfg: &Config) -> (f64, f64) {
    let fabric: Fabric<WireMsg> = Fabric::new(FabricConfig::instant(2));
    let s0 = Stream::create();
    let s1 = Stream::create();
    let v0 = Vci::new(fabric.endpoint(0), s0.clone(), ProtoConfig::default());
    let v1 = Vci::new(fabric.endpoint(1), s1.clone(), ProtoConfig::default());
    s1.register_hook(ShmemHook::new(v1.clone()));
    s1.register_hook(NetmodHook::new(v1.clone()));

    let msgs = cfg.msgs;
    let tags = cfg.tags;
    // Post the whole receive window first: posted queue depth = msgs.
    let reqs: Vec<_> = (0..msgs)
        .map(|i| v1.irecv_bytes(1, 0, (i % tags) as i32, 64).0)
        .collect();

    let t0 = wtime();
    // Tag-major sends: all of the last tag first, then the next, so every
    // match lands mid-queue for a linear scan (per-tag FIFO preserved).
    for tag in (0..tags).rev() {
        let mut i = tag;
        while i < msgs {
            if i % tags == tag {
                v0.isend_bytes(
                    1,
                    MsgHeader {
                        context_id: 1,
                        src_rank: 0,
                        tag: tag as i32,
                    },
                    vec![0xA5; 32],
                );
            }
            i += tags;
        }
    }

    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let reqs = &reqs;
    std::thread::scope(|s| {
        for _ in 0..pollers {
            let s1 = s1.clone();
            s.spawn(move || loop {
                s1.progress();
                let mut c = cursor.load(Ordering::Acquire);
                while c < msgs && reqs[c].is_complete() {
                    match cursor.compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Acquire) {
                        Ok(_) => c += 1,
                        Err(actual) => c = actual.max(c),
                    }
                }
                if c >= msgs {
                    return;
                }
            });
        }
    });
    let elapsed = wtime() - t0;
    assert!(
        reqs.iter().all(|r| r.is_complete()),
        "message-rate run lost completions"
    );
    (msgs as f64 / elapsed, elapsed)
}

/// Single-threaded fig07-style guard: p50 progress-observation latency of
/// 64 pending independent tasks with one poller. Contention fixes must not
/// tax this number.
fn fig07_guard(cfg: &Config) -> f64 {
    let mut agg = LatencyStats::new();
    for rep in 0..cfg.fig07_reps {
        let stream = Stream::create();
        let stats = measure_batch(&stream, 64, 0.0005, 0.002, 7000 + rep);
        agg.merge(&stats);
    }
    agg.median() * 1e6
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let cfg = Config::from_args();

    // Warmup.
    progress_latency(
        1,
        &Config {
            latency_duration: 0.02,
            ..Config::from_args()
        },
    );

    let fig07_p50 = fig07_guard(&cfg);
    println!("# fig07-style single-thread guard: p50 = {fig07_p50:.4} us\n");

    let mut lat_series = Series::new(
        "abl_contention: progress-call latency vs pollers on ONE stream",
        "pollers",
        &["p50_us", "p99_us", "calls_per_sec"],
    );
    let mut lat_rows = Vec::new();
    for &pollers in &POLLER_COUNTS {
        let stats = progress_latency(pollers, &cfg);
        let p50 = stats.median() * 1e6;
        let p99 = stats.quantile(0.99) * 1e6;
        let rate = stats.len() as f64 / cfg.latency_duration;
        lat_series.row(pollers, &[p50, p99, rate]);
        let mut row = JsonObj::new();
        row.int("pollers", pollers as u64)
            .float("p50_us", p50)
            .float("p99_us", p99)
            .float("calls_per_sec", rate)
            .int("calls", stats.len() as u64);
        lat_rows.push(row);
    }
    lat_series.print();
    println!();

    let mut rate_series = Series::new(
        "abl_contention: message rate vs pollers (deep posted queue, tag-major sends)",
        "pollers",
        &["msgs_per_sec", "elapsed_s"],
    );
    let mut rate_rows = Vec::new();
    let counters_before = mpfa_obs::global_counters().snapshot();
    for &pollers in &POLLER_COUNTS {
        let (rate, elapsed) = message_rate(pollers, &cfg);
        rate_series.row(pollers, &[rate, elapsed]);
        let mut row = JsonObj::new();
        row.int("pollers", pollers as u64)
            .float("msgs_per_sec", rate)
            .float("elapsed_s", elapsed);
        rate_rows.push(row);
    }
    rate_series.print();
    let counters = mpfa_obs::global_counters().snapshot();

    if !cfg.json_path.is_empty() {
        let mut record = JsonObj::new();
        record
            .str("bench", "abl_contention")
            .str("label", &cfg.label)
            .int(
                "host_threads",
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            )
            .int("msgs", cfg.msgs as u64)
            .int("tags", cfg.tags as u64)
            .float("latency_duration_s", cfg.latency_duration)
            .float("fig07_p50_us", fig07_p50)
            .arr("progress_latency", &lat_rows)
            .arr("message_rate", &rate_rows);
        let mut cdelta = JsonObj::new();
        cdelta
            .int("sweeps", counters.sweeps - counters_before.sweeps)
            .int(
                "unexpected_msgs",
                counters.unexpected_msgs - counters_before.unexpected_msgs,
            )
            .int(
                "engine_lock_contended",
                counters.engine_lock_contended - counters_before.engine_lock_contended,
            )
            .int(
                "combining_handoffs",
                counters.combining_handoffs - counters_before.combining_handoffs,
            )
            .int(
                "match_bucket_hits",
                counters.match_bucket_hits - counters_before.match_bucket_hits,
            )
            .int(
                "match_wildcard_hits",
                counters.match_wildcard_hits - counters_before.match_wildcard_hits,
            );
        record.obj("counter_delta", &cdelta);
        record
            .write_to(&cfg.json_path)
            .expect("failed to write JSON record");
        println!("\nwrote {}", cfg.json_path);
    }
    println!("\nexpected shape: p99 and message rate should hold or improve as pollers grow;");
    println!("contrast the convoying engine lock, where both degrade past 1 poller");
}

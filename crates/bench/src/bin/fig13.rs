//! Figure 13: custom user-level single-int allreduce vs the native
//! general `MPI_Iallreduce`, both recursive doubling.
//!
//! "The custom user-level implementation actually outperforms MPICH's
//! native MPI_Iallreduce. We believe this is due to the specific
//! assumptions and shortcuts in the custom implementation" — power-of-two
//! ranks, `MPI_IN_PLACE`, `MPI_INT` + `MPI_SUM` hardcoded.
//!
//! Adaptation for this host: the paper ran one process per Bebop node;
//! this container has ONE core, so per-rank OS threads would measure the
//! kernel scheduler. We instead drive all ranks cooperatively on one
//! thread (`mpfa_bench::coop`), so the measured time is the summed
//! software cost of the operation — precisely the quantity whose
//! difference the paper attributes to the user-level shortcuts. Reported
//! is per-rank latency (sweep time divided by ranks).

use mpfa_bench::coop::CoopWorld;
use mpfa_bench::report::Series;
use mpfa_core::wtime;
use mpfa_interop::user_coll::my_iallreduce;
use mpfa_mpi::{Op, WorldConfig};

const ITERS: usize = 300;
const WARMUP: usize = 30;

fn native_latency(w: &CoopWorld) -> f64 {
    let comms = w.comms();
    let mut elapsed = 0.0;
    for it in 0..WARMUP + ITERS {
        let t0 = wtime();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| c.iallreduce(&[c.rank() + 1], Op::Sum).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0)
            .expect("allreduce converged");
        let dt = wtime() - t0;
        let expect: i32 = (1..=w.size() as i32).sum();
        for f in futs {
            assert_eq!(f.take()[0], expect);
        }
        if it >= WARMUP {
            elapsed += dt;
        }
    }
    elapsed / ITERS as f64 / w.size() as f64
}

fn user_latency(w: &CoopWorld) -> f64 {
    let comms = w.comms();
    let mut elapsed = 0.0;
    for it in 0..WARMUP + ITERS {
        let t0 = wtime();
        let futs: Vec<_> = comms
            .iter()
            .map(|c| my_iallreduce(c, vec![c.rank() + 1]).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0)
            .expect("user allreduce converged");
        let dt = wtime() - t0;
        let expect: i32 = (1..=w.size() as i32).sum();
        for f in futs {
            assert_eq!(f.take()[0], expect);
        }
        if it >= WARMUP {
            elapsed += dt;
        }
    }
    elapsed / ITERS as f64 / w.size() as f64
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 13: single-int allreduce per-rank latency, native MPI_Iallreduce vs \
         user-level (Listing 1.8), cluster-like fabric",
        "ranks",
        &["native_us", "user_us", "user/native"],
    );
    for p in [2usize, 4, 8, 16, 32] {
        let w = CoopWorld::new(WorldConfig::cluster(p));
        let native = native_latency(&w);
        let user = user_latency(&w);
        series.row(p, &[native * 1e6, user * 1e6, user / native]);
    }
    series.print();
    println!();
    println!("expected shape: both grow ~log2(ranks); user-level <= native at every");
    println!("rank count (the specialization advantage the paper reports)");
}

//! Figure 9: progress latency vs number of threads driving ONE stream.
//!
//! "When multiple threads concurrently execute progress, they contend for
//! a lock to avoid corrupting the global pending task list. ... the
//! observed latency increases with the number of concurrent progress
//! threads. Each measurement runs 10 concurrent pending tasks."
//!
//! NOTE (single-core host): beyond the core count, thread timeslicing
//! adds to the lock contention; the growing shape is preserved, the
//! mechanism above ~1 thread is partly the scheduler. Compare fig11
//! (per-thread streams), whose low-thread-count rows stay flat.

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_bench::workload::{shared_stats, spawn_dummy, Lcg};
use mpfa_core::{wtime, CompletionCounter, Stream};

const NUM_TASKS: usize = 10;

fn run(threads: usize, reps: usize) -> mpfa_core::stats::LatencyStats {
    let mut agg = mpfa_core::stats::LatencyStats::new();
    for rep in 0..reps {
        // One SHARED stream for everybody — the contended configuration.
        let stream = Stream::create();
        let stats = shared_stats();
        let counter = CompletionCounter::new(NUM_TASKS);
        let mut rng = Lcg::new(11 + rep as u64);
        let base = wtime();
        for _ in 0..NUM_TASKS {
            let deadline = base + 0.0005 + rng.next_f64() * 0.002;
            spawn_dummy(&stream, deadline, &stats, &counter);
        }
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stream = stream.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    while !counter.is_zero() {
                        stream.progress();
                    }
                });
            }
        });
        agg.merge(&stats.lock());
    }
    agg
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 9: progress latency vs concurrent progress threads on ONE stream (10 tasks)",
        "threads",
        &["tmean_us", "median_us", "p95_us"],
    );
    run(1, 1); // warmup
    for threads in [1usize, 2, 3, 4, 6, 8] {
        let stats = run(threads, 20);
        series.row(
            threads,
            &[tmean_us(&stats), median_us(&stats), p95_us(&stats)],
        );
    }
    series.print();
    println!();
    println!("expected shape: latency grows with thread count (engine-lock contention);");
    println!("contrast fig11 where each thread drives its own stream");
}

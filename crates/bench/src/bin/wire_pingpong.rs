//! Wire transport micro-benchmark: two-rank ping-pong over the simulated
//! fabric, loopback TCP, Unix domain sockets, and shared-memory rings.
//!
//! For each transport and message size the benchmark measures half the
//! round-trip time (the conventional "latency" of a ping-pong) and the
//! realized bandwidth. The sim numbers are the no-syscall baseline; the
//! TCP/UDS columns show what the same protocol stack pays for a real
//! kernel socket path; the SHM column shows the zero-copy ring datapath,
//! where the only payload movement per hop is the sender's single
//! `encode_into` write and the receiver completes with a refcounted view
//! into the ring.
//!
//! The traffic runs on the byte-level API (`Comm::isend_bytes` /
//! `Comm::irecv_bytes`), so no typed pack/unpack copies pollute the
//! transport comparison.
//!
//! Flags:
//! * `--json PATH` — write a machine-readable record (CI writes
//!   `results/wire_pingpong.json`).
//! * `--smoke` — shrink the sweep and arm a watchdog that exits 124 if a
//!   transport wedges.
//! * `--transport NAME` — run only the named backend (`sim`/`tcp`/`uds`/
//!   `shm`); repeatable.
//! * `--large` — 4 KiB–4 MiB sweep over the wire backends plus a memcpy
//!   reference row (`results/shm_pingpong.json` in CI): the reference
//!   copies the payload through a ring-sized arena, i.e. exactly the
//!   single data movement the SHM send path performs, so "within 2x of
//!   memcpy" means "within 2x of the one copy that is fundamentally
//!   required".

use std::hint::black_box;
use std::sync::Arc;

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::wire::WireMsg;
use mpfa_mpi::{Comm, MpfaBytes, World, WorldConfig};
use mpfa_transport::{loopback_mesh, Transport, TransportKind, WireOpts};

/// (payload bytes, measured iterations) — reps shrink as sizes grow so
/// every point costs roughly the same wall time.
const SWEEP: [(usize, usize); 5] = [
    (8, 2000),
    (256, 2000),
    (4096, 1000),
    (65536, 200),
    (1 << 20, 30),
];
/// The `--large` sweep: 4 KiB to 4 MiB, where the zero-copy datapath is
/// what separates the backends.
const LARGE_SWEEP: [(usize, usize); 6] = [
    (4096, 1000),
    (16384, 600),
    (65536, 300),
    (262144, 100),
    (1 << 20, 40),
    (1 << 22, 10),
];
const WARMUP: usize = 20;
/// The memcpy reference cycles through an arena this large — the default
/// SHM ring capacity — so it pays the same cache footprint as the ring.
const MEMCPY_ARENA: usize = 16 << 20;

struct Config {
    json_path: String,
    smoke: bool,
    large: bool,
    transports: Vec<TransportKind>,
}

fn parse_kind(name: &str) -> TransportKind {
    match name {
        "sim" => TransportKind::Sim,
        "tcp" => TransportKind::Tcp,
        "uds" => TransportKind::Uds,
        "shm" => TransportKind::Shm,
        other => {
            eprintln!("wire_pingpong: unknown transport {other} (want sim|tcp|uds|shm)");
            std::process::exit(2);
        }
    }
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            json_path: String::new(),
            smoke: false,
            large: false,
            transports: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--smoke" => cfg.smoke = true,
                "--large" => cfg.large = true,
                "--transport" => cfg
                    .transports
                    .push(parse_kind(&args.next().unwrap_or_default())),
                other => {
                    eprintln!(
                        "usage: wire_pingpong [--json PATH] [--smoke] [--large] \
                         [--transport sim|tcp|uds|shm]... (got {other})"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One measured point: half-RTT latency and realized bandwidth.
struct Point {
    bytes: usize,
    reps: usize,
    usec_half_rtt: f64,
    mb_per_s: f64,
}

/// Progress-and-yield wait: like `RecvBytesRequest::wait` but yields the
/// core between polls. A hot spin would hand an oversubscribed box (both
/// ranks pinned to one core) a full scheduler timeslice of dead time per
/// message, and the bench would measure the OS quantum, not the wire.
fn wait_yielding(comm: &Comm, r: mpfa_mpi::RecvBytesRequest) -> MpfaBytes {
    while !r.is_complete() {
        comm.stream().progress();
        std::thread::yield_now();
    }
    r.take().0
}

/// Rank 0's side: send, await the echo, time the loop. The payload view
/// is built (and page-touched) by the caller once per sweep —
/// `MpfaBytes::clone` per rep is a refcount bump, so nothing inside the
/// timed loop allocates or re-encodes the payload.
fn ping(comm: &Comm, payload: &MpfaBytes, reps: usize) -> f64 {
    let bytes = payload.len();
    for _ in 0..WARMUP {
        let r = comm.irecv_bytes(bytes, 1, 1).unwrap();
        comm.isend_bytes(payload.clone(), 1, 0).unwrap();
        wait_yielding(comm, r);
    }
    let t0 = wtime();
    for _ in 0..reps {
        let r = comm.irecv_bytes(bytes, 1, 1).unwrap();
        comm.isend_bytes(payload.clone(), 1, 0).unwrap();
        // The echo (on SHM: a view into the ring) drops here, releasing
        // its ring span before the next iteration needs the space.
        wait_yielding(comm, r);
    }
    wtime() - t0
}

/// Rank 1's side: echo everything back. On SHM the received view itself
/// is handed to `isend_bytes`, so the echo re-injects straight from the
/// peer's ring without an intermediate owned buffer.
fn pong(comm: &Comm, bytes: usize, reps: usize) {
    for _ in 0..WARMUP + reps {
        let r = comm.irecv_bytes(bytes, 0, 0).unwrap();
        let data = wait_yielding(comm, r);
        comm.isend_bytes(data, 0, 1).unwrap();
    }
}

fn rank_main(comm: &Comm, sweep: &[(usize, usize)]) -> Vec<Point> {
    // Per-trial setup hoisted out of the trials entirely: every
    // payload for the sweep is allocated and filled up front, so a
    // --large trial is never preceded by a multi-megabyte allocation
    // whose page faults bleed into the first timed iterations.
    let payloads: Vec<MpfaBytes> = sweep
        .iter()
        .map(|&(bytes, _)| MpfaBytes::from(vec![0x2A_u8; bytes]))
        .collect();
    let mut points = Vec::new();
    for (&(bytes, reps), payload) in sweep.iter().zip(&payloads) {
        // Both ranks ready before the trial: rank 0's warmup (and
        // clock) must not absorb rank 1's previous-trial teardown.
        comm.barrier().unwrap();
        if comm.rank() == 0 {
            let secs = ping(comm, payload, reps);
            let half = secs / (2.0 * reps as f64);
            points.push(Point {
                bytes,
                reps,
                usec_half_rtt: half * 1e6,
                // Each iteration moves the payload twice (there and back).
                mb_per_s: (2 * bytes * reps) as f64 / secs / 1e6,
            });
        } else {
            pong(comm, bytes, reps);
        }
        comm.barrier().unwrap();
    }
    points
}

fn run(kind: TransportKind, sweep: &[(usize, usize)]) -> Vec<Point> {
    let cfg = WorldConfig::instant(2);
    let ports: Vec<Arc<dyn Transport<WireMsg>>> = match kind {
        TransportKind::Sim => Vec::new(),
        _ => loopback_mesh::<WireMsg>(kind, 2, cfg.max_vcis, WireOpts::default())
            .expect("loopback mesh"),
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = match kind {
            TransportKind::Sim => World::init(cfg.clone())
                .into_iter()
                .map(|p| s.spawn(move || rank_main(&p.world_comm(), sweep)))
                .collect(),
            _ => (0..2)
                .map(|rank| {
                    let cfg = WorldConfig {
                        transport: kind,
                        ..cfg.clone()
                    };
                    let port = ports[rank].clone();
                    s.spawn(move || {
                        let p = World::init_with_transport(cfg, rank, port);
                        rank_main(&p.world_comm(), sweep)
                    })
                })
                .collect(),
        };
        let mut results: Vec<Vec<Point>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        results.swap_remove(0) // rank 0 holds the measurements
    })
}

/// The floor every local transport is chasing: one memcpy of the payload,
/// cycling through a ring-sized arena so the cache behavior matches the
/// SHM ring's. `usec_half_rtt` is the time for one copy (≙ one one-way
/// hop); `mb_per_s` is the copy bandwidth.
fn memcpy_reference(sweep: &[(usize, usize)]) -> Vec<Point> {
    let max = sweep.iter().map(|&(b, _)| b).max().unwrap_or(0);
    let src = vec![0x2A_u8; max];
    let mut arena = vec![0_u8; MEMCPY_ARENA + max];
    sweep
        .iter()
        .map(|&(bytes, reps)| {
            let mut off = 0;
            let mut copy_once = |off: &mut usize| {
                arena[*off..*off + bytes].copy_from_slice(&src[..bytes]);
                *off = (*off + bytes) % MEMCPY_ARENA;
            };
            for _ in 0..WARMUP {
                copy_once(&mut off);
            }
            // Measure round trips (2 copies/rep) like the wire points.
            let t0 = wtime();
            for _ in 0..2 * reps {
                copy_once(&mut off);
            }
            let secs = wtime() - t0;
            black_box(&arena);
            Point {
                bytes,
                reps,
                usec_half_rtt: secs / (2.0 * reps as f64) * 1e6,
                mb_per_s: (2 * bytes * reps) as f64 / secs / 1e6,
            }
        })
        .collect()
}

fn main() {
    let cfg = Config::from_args();
    let sweep: Vec<(usize, usize)> = if cfg.smoke {
        // Tiny sweep + watchdog: CI only checks the path works.
        std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_secs(120));
            eprintln!("wire_pingpong: smoke watchdog fired");
            std::process::exit(124);
        });
        vec![(8, 50), (65536, 10)]
    } else if cfg.large {
        LARGE_SWEEP.to_vec()
    } else {
        SWEEP.to_vec()
    };

    let kinds: Vec<TransportKind> = if !cfg.transports.is_empty() {
        cfg.transports.clone()
    } else if cfg.large {
        // The zero-copy story: wire backends only, sim adds nothing here.
        if cfg!(unix) {
            vec![TransportKind::Tcp, TransportKind::Uds, TransportKind::Shm]
        } else {
            vec![TransportKind::Tcp]
        }
    } else if cfg!(unix) {
        vec![
            TransportKind::Sim,
            TransportKind::Tcp,
            TransportKind::Uds,
            TransportKind::Shm,
        ]
    } else {
        vec![TransportKind::Sim, TransportKind::Tcp]
    };

    let mut records = Vec::new();
    let mut emit = |name: &str, points: &[Point]| {
        println!("== {name} ==");
        let mut point_objs = Vec::new();
        for p in points {
            println!(
                "  {:>8} B  {:>10.2} us/half-rtt  {:>10.1} MB/s  ({} reps)",
                p.bytes, p.usec_half_rtt, p.mb_per_s, p.reps
            );
            let mut o = JsonObj::new();
            o.int("bytes", p.bytes as u64)
                .int("reps", p.reps as u64)
                .float("usec_half_rtt", p.usec_half_rtt)
                .float("mb_per_s", p.mb_per_s);
            point_objs.push(o);
        }
        let mut rec = JsonObj::new();
        rec.str("transport", name).arr("points", &point_objs);
        records.push(rec);
    };

    for &kind in &kinds {
        let points = run(kind, &sweep);
        emit(&kind.to_string(), &points);
    }
    if cfg.large {
        emit("memcpy", &memcpy_reference(&sweep));
    }

    if !cfg.json_path.is_empty() {
        let mut out = JsonObj::new();
        out.str("bench", "wire_pingpong")
            .bool("smoke", cfg.smoke)
            .bool("large", cfg.large)
            .int("ranks", 2)
            .arr("transports", &records);
        out.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

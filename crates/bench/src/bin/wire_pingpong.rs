//! Wire transport micro-benchmark: two-rank ping-pong over the simulated
//! fabric, loopback TCP, and Unix domain sockets.
//!
//! For each transport and message size the benchmark measures half the
//! round-trip time (the conventional "latency" of a ping-pong) and the
//! realized bandwidth. The sim numbers are the no-syscall baseline; the
//! TCP/UDS columns show what the same protocol stack pays for a real
//! kernel socket path — which is exactly what `mpfa-transport` is for.
//!
//! `--json PATH` writes a machine-readable record (CI writes
//! `results/wire_pingpong.json`); `--smoke` shrinks the sweep and arms a
//! watchdog that exits 124 if a transport wedges.

use std::sync::Arc;

use mpfa_bench::json::JsonObj;
use mpfa_core::wtime;
use mpfa_mpi::wire::WireMsg;
use mpfa_mpi::{Comm, World, WorldConfig};
use mpfa_transport::{loopback_mesh, Transport, TransportKind, WireOpts};

/// (payload bytes, measured iterations) — reps shrink as sizes grow so
/// every point costs roughly the same wall time.
const SWEEP: [(usize, usize); 5] = [
    (8, 2000),
    (256, 2000),
    (4096, 1000),
    (65536, 200),
    (1 << 20, 30),
];
const WARMUP: usize = 20;

struct Config {
    json_path: String,
    smoke: bool,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            json_path: String::new(),
            smoke: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => cfg.json_path = args.next().unwrap_or_default(),
                "--smoke" => cfg.smoke = true,
                other => {
                    eprintln!("usage: wire_pingpong [--json PATH] [--smoke] (got {other})");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One measured point: half-RTT latency and realized bandwidth.
struct Point {
    bytes: usize,
    reps: usize,
    usec_half_rtt: f64,
    mb_per_s: f64,
}

/// Progress-and-yield wait: like `Request::wait` but yields the core
/// between polls. A hot spin would hand an oversubscribed box (both
/// ranks pinned to one core) a full scheduler timeslice of dead time per
/// message, and the bench would measure the OS quantum, not the wire.
fn wait_yielding<T: mpfa_mpi::MpiType>(comm: &Comm, r: mpfa_mpi::RecvRequest<T>) -> Vec<T> {
    while !r.is_complete() {
        comm.stream().progress();
        std::thread::yield_now();
    }
    r.take().0
}

/// Rank 0's side: send, await the echo, time the loop.
fn ping(comm: &Comm, bytes: usize, reps: usize) -> f64 {
    let payload = vec![0x2A_u8; bytes];
    for _ in 0..WARMUP {
        let r = comm.irecv::<u8>(bytes, 1, 1).unwrap();
        comm.isend(&payload, 1, 0).unwrap();
        wait_yielding(comm, r);
    }
    let t0 = wtime();
    for _ in 0..reps {
        let r = comm.irecv::<u8>(bytes, 1, 1).unwrap();
        comm.isend(&payload, 1, 0).unwrap();
        wait_yielding(comm, r);
    }
    wtime() - t0
}

/// Rank 1's side: echo everything back.
fn pong(comm: &Comm, bytes: usize, reps: usize) {
    for _ in 0..WARMUP + reps {
        let r = comm.irecv::<u8>(bytes, 0, 0).unwrap();
        let data = wait_yielding(comm, r);
        comm.isend(&data, 0, 1).unwrap();
    }
}

fn rank_main(comm: &Comm, sweep: &[(usize, usize)]) -> Vec<Point> {
    let mut points = Vec::new();
    for &(bytes, reps) in sweep {
        if comm.rank() == 0 {
            let secs = ping(comm, bytes, reps);
            let half = secs / (2.0 * reps as f64);
            points.push(Point {
                bytes,
                reps,
                usec_half_rtt: half * 1e6,
                // Each iteration moves the payload twice (there and back).
                mb_per_s: (2 * bytes * reps) as f64 / secs / 1e6,
            });
        } else {
            pong(comm, bytes, reps);
        }
        comm.barrier().unwrap();
    }
    points
}

fn run(kind: TransportKind, sweep: &[(usize, usize)]) -> Vec<Point> {
    let cfg = WorldConfig::instant(2);
    let ports: Vec<Arc<dyn Transport<WireMsg>>> = match kind {
        TransportKind::Sim => Vec::new(),
        _ => loopback_mesh::<WireMsg>(kind, 2, cfg.max_vcis, WireOpts::default())
            .expect("loopback mesh"),
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = match kind {
            TransportKind::Sim => World::init(cfg.clone())
                .into_iter()
                .map(|p| s.spawn(move || rank_main(&p.world_comm(), sweep)))
                .collect(),
            _ => (0..2)
                .map(|rank| {
                    let cfg = WorldConfig {
                        transport: kind,
                        ..cfg.clone()
                    };
                    let port = ports[rank].clone();
                    s.spawn(move || {
                        let p = World::init_with_transport(cfg, rank, port);
                        rank_main(&p.world_comm(), sweep)
                    })
                })
                .collect(),
        };
        let mut results: Vec<Vec<Point>> = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect();
        results.swap_remove(0) // rank 0 holds the measurements
    })
}

fn main() {
    let cfg = Config::from_args();
    let sweep: Vec<(usize, usize)> = if cfg.smoke {
        // Tiny sweep + watchdog: CI only checks the path works.
        std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_secs(120));
            eprintln!("wire_pingpong: smoke watchdog fired");
            std::process::exit(124);
        });
        vec![(8, 50), (65536, 10)]
    } else {
        SWEEP.to_vec()
    };

    let kinds: &[TransportKind] = if cfg!(unix) {
        &[TransportKind::Sim, TransportKind::Tcp, TransportKind::Uds]
    } else {
        &[TransportKind::Sim, TransportKind::Tcp]
    };

    let mut records = Vec::new();
    for &kind in kinds {
        println!("== {kind} ==");
        let points = run(kind, &sweep);
        let mut point_objs = Vec::new();
        for p in &points {
            println!(
                "  {:>8} B  {:>10.2} us/half-rtt  {:>10.1} MB/s  ({} reps)",
                p.bytes, p.usec_half_rtt, p.mb_per_s, p.reps
            );
            let mut o = JsonObj::new();
            o.int("bytes", p.bytes as u64)
                .int("reps", p.reps as u64)
                .float("usec_half_rtt", p.usec_half_rtt)
                .float("mb_per_s", p.mb_per_s);
            point_objs.push(o);
        }
        let mut rec = JsonObj::new();
        rec.str("transport", &kind.to_string())
            .arr("points", &point_objs);
        records.push(rec);
    }

    if !cfg.json_path.is_empty() {
        let mut out = JsonObj::new();
        out.str("bench", "wire_pingpong")
            .bool("smoke", cfg.smoke)
            .int("ranks", 2)
            .arr("transports", &records);
        out.write_to(&cfg.json_path).expect("write json");
        println!("wrote {}", cfg.json_path);
    }
}

//! Figure 10: progress latency vs pending tasks when a task CLASS manages
//! the queue (the paper's Listing 1.4).
//!
//! "Instead of polling progress for individual asynchronous tasks, users
//! can design ... asynchronous task classes. ... the average latency
//! stays constant (within measurement noise) regardless of the number of
//! pending tasks." One hook checks only the head of an in-order queue,
//! so per-progress cost is O(1) in queue depth — contrast Figure 7.

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_bench::workload::Lcg;
use mpfa_core::sync::Mutex;
use mpfa_core::{stats::LatencyStats, wtime, Stream};
use mpfa_interop::TaskClass;
use std::sync::Arc;

fn run(n: usize, reps: usize) -> LatencyStats {
    let mut agg = LatencyStats::new();
    for rep in 0..reps {
        let stream = Stream::create();
        let class = TaskClass::new(&stream);
        let stats = Arc::new(Mutex::new(LatencyStats::new()));
        let mut rng = Lcg::new(31 + rep as u64);
        // In-order deadlines (the class assumption): sorted.
        let base = wtime();
        let window = 0.002 + n as f64 * 2e-6;
        let mut deadlines: Vec<f64> = (0..n)
            .map(|_| base + 0.0005 + rng.next_f64() * window)
            .collect();
        deadlines.sort_by(f64::total_cmp);
        for deadline in deadlines {
            let stats = stats.clone();
            class.push(
                move || wtime() >= deadline,
                move || stats.lock().add(wtime() - deadline),
            );
        }
        while class.pending() > 0 {
            stream.progress();
        }
        agg.merge(&stats.lock());
    }
    agg
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 10: progress latency vs pending tasks, task-class queue (Listing 1.4)",
        "tasks",
        &["tmean_us", "median_us", "p95_us"],
    );
    run(64, 1); // warmup
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
        // Keep >=200 samples per row (OS preemption outlier robustness).
        let stats = run(n, (200 / n).clamp(5, 200));
        series.row(n, &[tmean_us(&stats), median_us(&stats), p95_us(&stats)]);
    }
    series.print();
    println!();
    println!("expected shape: flat — latency independent of queue depth (contrast fig07)");
}

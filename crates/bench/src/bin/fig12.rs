//! Figure 12: overhead of generating request-completion events via
//! explicit `MPIX_Request_is_complete` queries (the paper's Listing 1.6).
//!
//! A single async hook scans N watched requests each progress call. The
//! query is one atomic read, so "the overhead remains within the
//! measurement noise when there are fewer than 256 pending requests."
//!
//! Methodology: N-1 requests stay pending for the whole run; one sentinel
//! request completes at a deadline (driven by a dummy timed task on the
//! same stream). We measure the latency between the deadline and the
//! scan's callback, as a function of N.

use mpfa_bench::report::{median_us, p95_us, tmean_us, Series};
use mpfa_core::sync::Mutex;
use mpfa_core::{stats::LatencyStats, wtime, AsyncPoll, CompletionCounter, Request, Stream};
use mpfa_interop::CompletionNotifier;
use std::sync::Arc;

fn run(n: usize, events: usize) -> LatencyStats {
    let stream = Stream::create();
    let notifier = CompletionNotifier::new(&stream);
    // N-1 never-completing requests on the watch list.
    let mut keep_alive = Vec::new();
    for _ in 0..n.saturating_sub(1) {
        let (req, completer) = Request::pair(&stream);
        notifier.watch(req, |_| {});
        keep_alive.push(completer);
    }

    let stats = Arc::new(Mutex::new(LatencyStats::new()));
    for e in 0..events {
        // One sentinel request completed at a deadline by a dummy task.
        let (req, completer) = Request::pair(&stream);
        let deadline = wtime() + 0.0005 + (e % 7) as f64 * 1e-4;
        let mut completer = Some(completer);
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                completer.take().expect("once").complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let fired = CompletionCounter::new(1);
        let f = fired.clone();
        let stats_sink = stats.clone();
        notifier.watch(req, move |_| {
            stats_sink.lock().add(wtime() - deadline);
            f.done();
        });
        while !fired.is_zero() {
            stream.progress();
        }
    }
    drop(keep_alive);
    let out = stats.lock().clone();
    out
}

fn main() {
    let _obs = mpfa_bench::obs::TraceGuard::from_args();
    let mut series = Series::new(
        "Figure 12: completion-event latency vs watched (pending) requests (Listing 1.6)",
        "requests",
        &["tmean_us", "median_us", "p95_us"],
    );
    run(16, 3); // warmup
    for n in [1usize, 4, 16, 64, 256, 1024, 4096] {
        let stats = run(n, 25);
        series.row(n, &[tmean_us(&stats), median_us(&stats), p95_us(&stats)]);
    }
    series.print();
    println!();
    println!("expected shape: flat within noise below ~256 pending requests,");
    println!("then growing as the O(N) atomic-read scan becomes visible");
}

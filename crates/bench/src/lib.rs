//! # mpfa-bench — the figure-regeneration harness
//!
//! One binary per evaluation figure of *MPI Progress For All* (`fig07` …
//! `fig13`), plus ablation binaries (`abl_*`) for the design choices
//! DESIGN.md calls out, plus self-contained micro-benchmarks. Each binary
//! prints the paper's series as an aligned table and as CSV on stdout.
//!
//! Every binary accepts `--trace <path>` (Chrome-trace JSON of recorded
//! events; build with `--features obs`) and `--doctor` (progress-stall
//! report + counter totals on exit) — see [`obs::TraceGuard`].
//!
//! ## Measurement methodology
//!
//! The central metric is **progress latency**: "the average elapsed time
//! between a task's completion and when the user code responds to the
//! event" (paper Section 4). Dummy tasks carry a precomputed deadline;
//! the poll function records `wtime() - deadline` at the poll that
//! observes the deadline passed.
//!
//! ## Single-core adaptation
//!
//! The paper's workstation had 8 cores; this container has one. Thread
//! benchmarks (fig09/fig11) run threads that timeslice on the single
//! core; their *contrast* (shared stream degrades, per-thread streams do
//! not, at low thread counts) survives, but absolute numbers above the
//! core count measure the OS scheduler. Rank-parallel measurements
//! (fig13, abl_modes) therefore use the [`coop::CoopWorld`] driver: all
//! ranks progress cooperatively on one thread, so measured time is the
//! runtime's software cost — exactly the quantity Figure 13 compares.

#![warn(missing_docs)]

pub mod coop;
pub mod json;
pub mod obs;
pub mod report;
pub mod workload;

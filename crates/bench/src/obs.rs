//! Observability wiring shared by every bench binary.
//!
//! Each `fig*`/`abl_*` binary installs a [`TraceGuard`] as the first line
//! of `main`. The guard parses the common observability flags:
//!
//! * `--trace <path>` — on exit, write every recorded event as
//!   Chrome-trace JSON (open in `chrome://tracing` or Perfetto). Requires
//!   building with `--features obs`; without it the guard warns and writes
//!   an empty (still valid) trace.
//! * `--doctor` — on exit, run the progress doctor over the recorded
//!   events and print its report plus the global counter totals.
//!
//! Flags are consumed at startup so a binary's own argument handling (if
//! any) never sees them.

use std::path::PathBuf;

use mpfa_obs::{diagnose_with_counters, DoctorConfig};

/// RAII exporter of the process's recorded observability data.
///
/// Construct via [`TraceGuard::from_args`] at the top of `main`; the trace
/// file and doctor report are produced when the guard drops.
pub struct TraceGuard {
    trace_path: Option<PathBuf>,
    doctor: bool,
}

impl TraceGuard {
    /// Parse `--trace <path>` and `--doctor` from the process arguments.
    pub fn from_args() -> TraceGuard {
        let mut trace_path = None;
        let mut doctor = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace" => match args.next() {
                    Some(p) => trace_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--trace requires a file path argument");
                        std::process::exit(2);
                    }
                },
                "--doctor" => doctor = true,
                _ => {}
            }
        }
        if (trace_path.is_some() || doctor) && !mpfa_obs::recording_enabled() {
            eprintln!(
                "note: event recording is compiled out; rebuild with \
                 `--features obs` for a populated trace/doctor report"
            );
        }
        TraceGuard { trace_path, doctor }
    }

    /// True when any observability output was requested.
    pub fn active(&self) -> bool {
        self.trace_path.is_some() || self.doctor
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.active() {
            return;
        }
        let snaps = mpfa_obs::snapshot_all();
        if let Some(path) = &self.trace_path {
            match mpfa_obs::trace::write_chrome_trace(path, &snaps) {
                Ok(()) => {
                    let events: usize = snaps.iter().map(|s| s.events.len()).sum();
                    eprintln!("wrote {} trace events to {}", events, path.display());
                }
                Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
            }
        }
        if self.doctor {
            let counters = mpfa_obs::global_counters().snapshot();
            let report = diagnose_with_counters(&snaps, Some(&counters), &DoctorConfig::default());
            eprintln!("{report}");
            eprintln!("{counters}");
        }
    }
}

//! Criterion micro-benchmarks over the extension APIs and the runtime —
//! the per-operation costs underlying every figure:
//!
//! * `progress_call/*` — cost of one `MPIX_Stream_progress` (empty / idle
//!   MPI hooks / N pending tasks) — Figure 7's slope.
//! * `is_complete` — the `MPIX_Request_is_complete` atomic query —
//!   Figure 12's per-request cost.
//! * `request_scan/*` — a Listing 1.6 scan over N pending requests.
//! * `task_class_cycle` — Listing 1.4's push + drain.
//! * `allreduce/*` — cooperative 4-rank single-int allreduce, native vs
//!   user-level — Figure 13's unit of work.
//! * `p2p_pingpong/*` — small/eager/rendezvous round trips.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpfa_bench::coop::CoopWorld;
use mpfa_core::{AsyncPoll, Request, Stream};
use mpfa_interop::user_coll::my_iallreduce;
use mpfa_interop::TaskClass;
use mpfa_mpi::{Op, World, WorldConfig};

fn bench_progress_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("progress_call");
    g.measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));

    let bare = Stream::create();
    g.bench_function("empty", |b| b.iter(|| std::hint::black_box(bare.progress())));

    let procs = World::init(WorldConfig::instant(1));
    let idle = procs[0].default_stream().clone();
    g.bench_function("idle_mpi_hooks", |b| b.iter(|| std::hint::black_box(idle.progress())));

    for n in [1usize, 32, 256] {
        let s = Stream::create();
        for _ in 0..n {
            // Never-completing pending tasks: pure poll cost.
            s.async_start(|_t| AsyncPoll::Pending);
        }
        g.bench_with_input(BenchmarkId::new("pending_tasks", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(s.progress()))
        });
    }
    g.finish();
}

fn bench_is_complete(c: &mut Criterion) {
    let stream = Stream::create();
    let (req, _completer) = Request::pair(&stream);
    let mut g = c.benchmark_group("request_query");
    g.measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(200));
    g.bench_function("is_complete", |b| b.iter(|| std::hint::black_box(req.is_complete())));

    for n in [16usize, 256, 4096] {
        let reqs: Vec<Request> = (0..n)
            .map(|_| {
                let (r, completer) = Request::pair(&stream);
                std::mem::forget(completer); // keep pending forever
                r
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("scan_pending", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(Request::all_complete(&reqs)))
        });
    }
    g.finish();
}

fn bench_task_class(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_class");
    g.measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));
    let stream = Stream::create();
    let class = TaskClass::new(&stream);
    g.bench_function("push_drain", |b| {
        b.iter(|| {
            class.push(|| true, || {});
            while class.pending() > 0 {
                stream.progress();
            }
        })
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_p4");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    g.sample_size(30);

    let w = CoopWorld::new(WorldConfig::cluster(4));
    let comms = w.comms();

    g.bench_function("native", |b| {
        b.iter(|| {
            let futs: Vec<_> = comms
                .iter()
                .map(|cm| cm.iallreduce(&[cm.rank()], Op::Sum).unwrap())
                .collect();
            w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0).unwrap();
            std::hint::black_box(futs.into_iter().map(|f| f.take()[0]).sum::<i32>())
        })
    });

    g.bench_function("user_level", |b| {
        b.iter(|| {
            let futs: Vec<_> = comms
                .iter()
                .map(|cm| my_iallreduce(cm, vec![cm.rank()]).unwrap())
                .collect();
            w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0).unwrap();
            std::hint::black_box(futs.into_iter().map(|f| f.take()[0]).sum::<i32>())
        })
    });
    g.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_pingpong");
    g.measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    g.sample_size(30);

    let w = CoopWorld::new(WorldConfig::instant(2));
    let comms = w.comms();
    for (label, bytes) in [("buffered_64B", 64usize), ("eager_4KiB", 4096), ("rendezvous_256KiB", 256 * 1024)] {
        let payload = vec![0u8; bytes];
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = comms[1].irecv::<u8>(bytes, 0, 1).unwrap();
                let s = comms[0].isend(&payload, 1, 1).unwrap();
                w.run_until(|| r.is_complete() && s.is_complete(), 30.0).unwrap();
                std::hint::black_box(r.take().0.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_progress_call,
    bench_is_complete,
    bench_task_class,
    bench_allreduce,
    bench_pingpong
);
criterion_main!(benches);

//! Micro-benchmarks over the extension APIs and the runtime — the
//! per-operation costs underlying every figure:
//!
//! * `progress_call/*` — cost of one `MPIX_Stream_progress` (empty / idle
//!   MPI hooks / N pending tasks) — Figure 7's slope.
//! * `request_query/is_complete` — the `MPIX_Request_is_complete` atomic
//!   query — Figure 12's per-request cost.
//! * `request_query/scan_pending/*` — a Listing 1.6 scan over N pending
//!   requests.
//! * `task_class/push_drain` — Listing 1.4's push + drain.
//! * `allreduce_p4/*` — cooperative 4-rank single-int allreduce, native
//!   vs user-level — Figure 13's unit of work.
//! * `p2p_pingpong/*` — small/eager/rendezvous round trips.
//!
//! Self-contained harness (`harness = false`): warms up, then runs
//! adaptive batches for a fixed measurement window and reports mean and
//! p50 per iteration. Pass a substring argument to filter benchmarks.

use std::time::{Duration, Instant};

use mpfa_bench::coop::CoopWorld;
use mpfa_core::{AsyncPoll, Request, Stream};
use mpfa_interop::user_coll::my_iallreduce;
use mpfa_interop::TaskClass;
use mpfa_mpi::{Op, World, WorldConfig};

struct Harness {
    filter: Option<String>,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }

    /// Measure `f` (one iteration per call) and print ns/op statistics.
    fn bench(&self, name: &str, measure: Duration, mut f: impl FnMut()) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and batch-size calibration: aim for batches of ~1ms.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(50) {
            f();
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let batch = ((1e-3 / per_iter) as u64).clamp(1, 1 << 20);

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let p50 = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>12.1} ns/op (p50 {:>12.1} ns, {} batches x {batch})",
            mean * 1e9,
            p50 * 1e9,
            samples.len(),
        );
    }
}

fn bench_progress_call(h: &Harness) {
    let bare = Stream::create();
    h.bench("progress_call/empty", Duration::from_millis(800), || {
        std::hint::black_box(bare.progress());
    });

    let procs = World::init(WorldConfig::instant(1));
    let idle = procs[0].default_stream().clone();
    h.bench(
        "progress_call/idle_mpi_hooks",
        Duration::from_millis(800),
        || {
            std::hint::black_box(idle.progress());
        },
    );

    for n in [1usize, 32, 256] {
        let s = Stream::create();
        for _ in 0..n {
            // Never-completing pending tasks: pure poll cost.
            s.async_start(|_t| AsyncPoll::Pending);
        }
        h.bench(
            &format!("progress_call/pending_tasks/{n}"),
            Duration::from_millis(800),
            || {
                std::hint::black_box(s.progress());
            },
        );
    }
}

fn bench_is_complete(h: &Harness) {
    let stream = Stream::create();
    let (req, _completer) = Request::pair(&stream);
    h.bench(
        "request_query/is_complete",
        Duration::from_millis(600),
        || {
            std::hint::black_box(req.is_complete());
        },
    );

    for n in [16usize, 256, 4096] {
        let reqs: Vec<Request> = (0..n)
            .map(|_| {
                let (r, completer) = Request::pair(&stream);
                std::mem::forget(completer); // keep pending forever
                r
            })
            .collect();
        h.bench(
            &format!("request_query/scan_pending/{n}"),
            Duration::from_millis(600),
            || {
                std::hint::black_box(Request::all_complete(&reqs));
            },
        );
    }
}

fn bench_task_class(h: &Harness) {
    let stream = Stream::create();
    let class = TaskClass::new(&stream);
    h.bench("task_class/push_drain", Duration::from_millis(800), || {
        class.push(|| true, || {});
        while class.pending() > 0 {
            stream.progress();
        }
    });
}

fn bench_allreduce(h: &Harness) {
    let w = CoopWorld::new(WorldConfig::cluster(4));
    let comms = w.comms();

    h.bench("allreduce_p4/native", Duration::from_secs(2), || {
        let futs: Vec<_> = comms
            .iter()
            .map(|cm| cm.iallreduce(&[cm.rank()], Op::Sum).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0)
            .unwrap();
        std::hint::black_box(futs.into_iter().map(|f| f.take()[0]).sum::<i32>());
    });

    h.bench("allreduce_p4/user_level", Duration::from_secs(2), || {
        let futs: Vec<_> = comms
            .iter()
            .map(|cm| my_iallreduce(cm, vec![cm.rank()]).unwrap())
            .collect();
        w.run_until(|| futs.iter().all(|f| f.is_complete()), 30.0)
            .unwrap();
        std::hint::black_box(futs.into_iter().map(|f| f.take()[0]).sum::<i32>());
    });
}

fn bench_pingpong(h: &Harness) {
    let w = CoopWorld::new(WorldConfig::instant(2));
    let comms = w.comms();
    for (label, bytes) in [
        ("buffered_64B", 64usize),
        ("eager_4KiB", 4096),
        ("rendezvous_256KiB", 256 * 1024),
    ] {
        let payload = vec![0u8; bytes];
        h.bench(
            &format!("p2p_pingpong/{label}"),
            Duration::from_secs(1),
            || {
                let r = comms[1].irecv::<u8>(bytes, 0, 1).unwrap();
                let s = comms[0].isend(&payload, 1, 1).unwrap();
                w.run_until(|| r.is_complete() && s.is_complete(), 30.0)
                    .unwrap();
                std::hint::black_box(r.take().0.len());
            },
        );
    }
}

fn main() {
    let h = Harness::new();
    bench_progress_call(&h);
    bench_is_complete(&h);
    bench_task_class(&h);
    bench_allreduce(&h);
    bench_pingpong(&h);
}

//! # mpfa-offload — more asynchronous subsystems under one progress engine
//!
//! The paper's Section 2.6 argues that an MPI library already collates
//! progress for *several* asynchronous subsystems beyond the network:
//!
//! > "data transfer may involve GPU device memory, meaning a conventional
//! > MPI send and receive could include asynchronous memory copy
//! > operations between host and device memory. MPI-IO may introduce
//! > asynchronous storage I/O operations. ... All these asynchronous
//! > subsystems require progress, and it is often more convenient and
//! > efficient to collate them."
//!
//! This crate provides those two substrates as simulations and registers
//! them as progress hooks on `mpfa` streams:
//!
//! * [`device`] — a simulated accelerator memory + DMA copy engine
//!   (configurable bandwidth/latency; copies complete at a wall-clock
//!   deadline, observed by the engine's hook). Plus chaining helpers
//!   ([`device::send_from_device`], [`device::recv_to_device`]) that
//!   compose copy → send / recv → copy through `MPIX_Async` tasks —
//!   a "GPU-aware" send built *entirely from the public extension APIs*.
//! * [`storage`] — a simulated asynchronous storage volume (in-memory
//!   objects behind latency + bandwidth), the MPI-IO stand-in, with
//!   nonblocking read/write returning ordinary [`mpfa_core::Request`]s.

#![warn(missing_docs)]

pub mod device;
pub mod storage;

pub use device::{CopyEngine, DeviceBuffer, DeviceConfig};
pub use storage::{Storage, StorageConfig};

//! A simulated asynchronous storage volume — the MPI-IO stand-in of the
//! paper's §2.6 ("MPI-IO may introduce asynchronous storage I/O
//! operations").
//!
//! Objects are named in-memory byte arrays behind a latency + bandwidth
//! model; nonblocking reads and writes return ordinary
//! [`mpfa_core::Request`]s completed by the volume's progress hook, so
//! storage I/O collates with messaging and device copies under one
//! `MPIX_Stream_progress` loop.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{wtime, Completer, ProgressHook, Request, Status, Stream, SubsystemClass};

/// Storage timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageConfig {
    /// Per-operation access latency, seconds.
    pub latency: f64,
    /// Sequential bandwidth, bytes/second (0.0 = infinite).
    pub bandwidth: f64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        // NVMe-ish: 80 µs access, 3 GB/s.
        StorageConfig {
            latency: 80e-6,
            bandwidth: 3.0e9,
        }
    }
}

impl StorageConfig {
    /// Instant storage (tests).
    pub fn instant() -> StorageConfig {
        StorageConfig {
            latency: 0.0,
            bandwidth: 0.0,
        }
    }

    fn op_time(&self, bytes: usize) -> f64 {
        if self.bandwidth <= 0.0 {
            self.latency
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }
}

struct PendingOp {
    done_at: f64,
    apply: Box<dyn FnOnce() + Send>,
    completer: Completer,
    bytes: usize,
}

struct VolumeState {
    objects: HashMap<String, Vec<u8>>,
    queue: VecDeque<PendingOp>,
    next_free: f64,
}

/// A simulated storage volume driven by one stream's progress.
/// Cheap to clone (shared state).
#[derive(Clone)]
pub struct Storage {
    config: StorageConfig,
    stream: Stream,
    state: Arc<Mutex<VolumeState>>,
    pending: Arc<AtomicUsize>,
}

struct StorageHook {
    state: Arc<Mutex<VolumeState>>,
    pending: Arc<AtomicUsize>,
}

impl ProgressHook for StorageHook {
    fn name(&self) -> &str {
        "storage-io"
    }
    fn class(&self) -> SubsystemClass {
        // ROMIO-style async I/O is a runtime-internal extension: poll it
        // with the Other class (after netmod).
        SubsystemClass::Other
    }
    fn has_work(&self) -> bool {
        self.pending.load(Ordering::Acquire) > 0
    }
    fn poll(&self) -> bool {
        let now = wtime();
        let mut finished = Vec::new();
        {
            let mut st = self.state.lock();
            while let Some(front) = st.queue.front() {
                if front.done_at <= now {
                    finished.push(st.queue.pop_front().expect("front exists"));
                } else {
                    break;
                }
            }
        }
        if finished.is_empty() {
            return false;
        }
        let n = finished.len();
        for op in finished {
            (op.apply)();
            op.completer.complete(Status {
                source: -1,
                tag: -1,
                bytes: op.bytes,
                cancelled: false,
            });
        }
        self.pending.fetch_sub(n, Ordering::Release);
        true
    }
}

impl Storage {
    /// Create a volume and register its hook on `stream`.
    pub fn register(stream: &Stream, config: StorageConfig) -> Storage {
        let state = Arc::new(Mutex::new(VolumeState {
            objects: HashMap::new(),
            queue: VecDeque::new(),
            next_free: 0.0,
        }));
        let pending = Arc::new(AtomicUsize::new(0));
        stream.register_hook(StorageHook {
            state: state.clone(),
            pending: pending.clone(),
        });
        Storage {
            config,
            stream: stream.clone(),
            state,
            pending,
        }
    }

    /// Operations in flight.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Object size, if it exists (metadata access: immediate).
    pub fn stat(&self, name: &str) -> Option<usize> {
        self.state.lock().objects.get(name).map(Vec::len)
    }

    fn enqueue(&self, bytes: usize, apply: Box<dyn FnOnce() + Send>) -> Request {
        let (req, completer) = Request::pair(&self.stream);
        let now = wtime();
        {
            let mut st = self.state.lock();
            let start = now.max(st.next_free);
            let done_at = start + self.config.op_time(bytes);
            st.next_free = done_at;
            st.queue.push_back(PendingOp {
                done_at,
                apply,
                completer,
                bytes,
            });
        }
        self.pending.fetch_add(1, Ordering::Release);
        req
    }

    /// Nonblocking write of `data` to object `name` at `offset`
    /// (`MPI_File_iwrite_at`-shaped). The object grows as needed.
    pub fn iwrite(&self, name: &str, offset: usize, data: &[u8]) -> Request {
        let state = self.state.clone();
        let name = name.to_string();
        let data = data.to_vec();
        let n = data.len();
        self.enqueue(
            n,
            Box::new(move || {
                let mut st = state.lock();
                let obj = st.objects.entry(name).or_default();
                if obj.len() < offset + data.len() {
                    obj.resize(offset + data.len(), 0);
                }
                obj[offset..offset + data.len()].copy_from_slice(&data);
            }),
        )
    }

    /// Nonblocking read of `len` bytes from object `name` at `offset`
    /// into a shared landing buffer (`MPI_File_iread_at`-shaped). Reads
    /// past the end are truncated (the landing buffer holds what existed).
    pub fn iread(
        &self,
        name: &str,
        offset: usize,
        len: usize,
        dst: Arc<Mutex<Vec<u8>>>,
    ) -> Request {
        let state = self.state.clone();
        let name = name.to_string();
        self.enqueue(
            len,
            Box::new(move || {
                let st = state.lock();
                let data = st
                    .objects
                    .get(&name)
                    .map(|obj| {
                        let end = (offset + len).min(obj.len());
                        obj.get(offset.min(obj.len())..end).unwrap_or(&[]).to_vec()
                    })
                    .unwrap_or_default();
                *dst.lock() = data;
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let stream = Stream::create();
        let vol = Storage::register(&stream, StorageConfig::instant());
        let w = vol.iwrite("checkpoint", 0, &[1, 2, 3, 4, 5]);
        assert!(!w.is_complete(), "I/O needs a progress observation");
        w.wait();
        assert_eq!(vol.stat("checkpoint"), Some(5));

        let landing = Arc::new(Mutex::new(Vec::new()));
        vol.iread("checkpoint", 1, 3, landing.clone()).wait();
        assert_eq!(*landing.lock(), vec![2, 3, 4]);
        assert_eq!(vol.pending(), 0);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let stream = Stream::create();
        let vol = Storage::register(&stream, StorageConfig::instant());
        vol.iwrite("f", 4, &[9, 9]).wait();
        let landing = Arc::new(Mutex::new(Vec::new()));
        vol.iread("f", 0, 6, landing.clone()).wait();
        assert_eq!(*landing.lock(), vec![0, 0, 0, 0, 9, 9]);
    }

    #[test]
    fn read_missing_object_is_empty() {
        let stream = Stream::create();
        let vol = Storage::register(&stream, StorageConfig::instant());
        let landing = Arc::new(Mutex::new(vec![7u8]));
        vol.iread("nope", 0, 10, landing.clone()).wait();
        assert!(landing.lock().is_empty());
        assert_eq!(vol.stat("nope"), None);
    }

    #[test]
    fn operations_serialize_fifo_with_latency() {
        let stream = Stream::create();
        let vol = Storage::register(
            &stream,
            StorageConfig {
                latency: 300e-6,
                bandwidth: 0.0,
            },
        );
        let t0 = wtime();
        let a = vol.iwrite("f", 0, &[1]);
        let b = vol.iwrite("f", 0, &[2]);
        a.wait();
        b.wait();
        assert!(wtime() - t0 >= 600e-6, "two ops serialize");
        let landing = Arc::new(Mutex::new(Vec::new()));
        vol.iread("f", 0, 1, landing.clone()).wait();
        assert_eq!(*landing.lock(), vec![2], "write order preserved");
    }

    #[test]
    fn storage_collates_with_other_subsystems() {
        // One stream drives storage + user async tasks together.
        use mpfa_core::{AsyncPoll, CompletionCounter};
        let stream = Stream::create();
        let vol = Storage::register(&stream, StorageConfig::instant());
        let done = CompletionCounter::new(1);
        let d = done.clone();
        let w = vol.iwrite("obj", 0, &[5; 100]);
        let wr = w.clone();
        stream.async_start(move |_t| {
            // A user task gated on storage completion — Listing 1.6
            // pattern over an I/O request.
            if wr.is_complete() {
                d.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(stream.progress_until(|| done.is_zero(), 5.0));
    }
}

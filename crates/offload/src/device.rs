//! A simulated accelerator: device-resident buffers and an asynchronous
//! DMA copy engine whose completions are observed by a progress hook.
//!
//! The model: a copy of `n` bytes issued at time `t` completes at
//! `t + latency + n / bandwidth` (per-direction queues serialize like a
//! real copy engine's hardware queue). Data is actually moved when the
//! engine's hook *observes* the deadline — callers therefore must not
//! read the destination until the copy's request completes, exactly the
//! discipline real GPU streams impose.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{
    wtime, AsyncPoll, Completer, ProgressHook, Request, Status, Stream, SubsystemClass,
};

/// Copy-engine timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Per-copy launch latency, seconds (kernel-launch-ish).
    pub latency: f64,
    /// Copy bandwidth, bytes/second (0.0 = infinite).
    pub bandwidth: f64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        // PCIe-ish: 10 µs launch, 16 GB/s.
        DeviceConfig {
            latency: 10e-6,
            bandwidth: 16.0e9,
        }
    }
}

impl DeviceConfig {
    /// An instant device (tests).
    pub fn instant() -> DeviceConfig {
        DeviceConfig {
            latency: 0.0,
            bandwidth: 0.0,
        }
    }

    fn copy_time(&self, bytes: usize) -> f64 {
        let bw = if self.bandwidth <= 0.0 {
            return self.latency;
        } else {
            self.bandwidth
        };
        self.latency + bytes as f64 / bw
    }
}

/// A device-resident byte buffer. Host code cannot read it directly —
/// data moves only through the copy engine (like real device memory).
#[derive(Clone)]
pub struct DeviceBuffer {
    data: Arc<Mutex<Vec<u8>>>,
}

impl DeviceBuffer {
    /// Allocate a zeroed device buffer of `len` bytes.
    pub fn alloc(len: usize) -> DeviceBuffer {
        DeviceBuffer {
            data: Arc::new(Mutex::new(vec![0; len])),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.lock().len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test-only peek (a real device would not allow this; used by unit
    /// tests to verify engine behavior).
    pub fn debug_snapshot(&self) -> Vec<u8> {
        self.data.lock().clone()
    }
}

/// One pending DMA operation.
struct PendingCopy {
    done_at: f64,
    /// The actual data movement, deferred to observation time.
    apply: Box<dyn FnOnce() + Send>,
    completer: Completer,
    bytes: usize,
}

struct EngineState {
    queue: VecDeque<PendingCopy>,
    /// When the engine's single hardware queue frees up.
    next_free: f64,
}

/// The asynchronous copy engine. Its hook must be registered on a stream
/// ([`CopyEngine::register`]); copies complete when that stream's
/// progress observes their deadline. Cheap to clone (shared state).
#[derive(Clone)]
pub struct CopyEngine {
    config: DeviceConfig,
    stream: Stream,
    state: Arc<Mutex<EngineState>>,
    pending: Arc<AtomicUsize>,
    copied_bytes: Arc<AtomicUsize>,
}

struct CopyHook {
    state: Arc<Mutex<EngineState>>,
    pending: Arc<AtomicUsize>,
    copied_bytes: Arc<AtomicUsize>,
}

impl ProgressHook for CopyHook {
    fn name(&self) -> &str {
        "device-copy"
    }
    fn class(&self) -> SubsystemClass {
        // GPU copies ride with MPICH's async-copy machinery, which lives
        // alongside the datatype engine at the front of the collation.
        SubsystemClass::DatatypeEngine
    }
    fn has_work(&self) -> bool {
        self.pending.load(Ordering::Acquire) > 0
    }
    fn poll(&self) -> bool {
        let now = wtime();
        let mut finished = Vec::new();
        {
            let mut st = self.state.lock();
            while let Some(front) = st.queue.front() {
                if front.done_at <= now {
                    finished.push(st.queue.pop_front().expect("front exists"));
                } else {
                    break; // FIFO engine queue: later copies wait
                }
            }
        }
        if finished.is_empty() {
            return false;
        }
        let n = finished.len();
        for copy in finished {
            (copy.apply)();
            self.copied_bytes.fetch_add(copy.bytes, Ordering::Relaxed);
            copy.completer.complete(Status {
                source: -1,
                tag: -1,
                bytes: copy.bytes,
                cancelled: false,
            });
        }
        self.pending.fetch_sub(n, Ordering::Release);
        true
    }
}

impl CopyEngine {
    /// Create an engine and register its hook on `stream`.
    pub fn register(stream: &Stream, config: DeviceConfig) -> CopyEngine {
        let state = Arc::new(Mutex::new(EngineState {
            queue: VecDeque::new(),
            next_free: 0.0,
        }));
        let pending = Arc::new(AtomicUsize::new(0));
        let copied_bytes = Arc::new(AtomicUsize::new(0));
        stream.register_hook(CopyHook {
            state: state.clone(),
            pending: pending.clone(),
            copied_bytes: copied_bytes.clone(),
        });
        CopyEngine {
            config,
            stream: stream.clone(),
            state,
            pending,
            copied_bytes,
        }
    }

    /// The stream whose progress drives this engine.
    pub fn stream(&self) -> &Stream {
        &self.stream
    }

    /// Copies in flight.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Total bytes moved so far.
    pub fn copied_bytes(&self) -> usize {
        self.copied_bytes.load(Ordering::Relaxed)
    }

    fn enqueue(&self, bytes: usize, apply: Box<dyn FnOnce() + Send>) -> Request {
        let (req, completer) = Request::pair(&self.stream);
        let now = wtime();
        {
            let mut st = self.state.lock();
            let start = now.max(st.next_free);
            let done_at = start + self.config.copy_time(bytes);
            st.next_free = done_at;
            st.queue.push_back(PendingCopy {
                done_at,
                apply,
                completer,
                bytes,
            });
        }
        self.pending.fetch_add(1, Ordering::Release);
        req
    }

    /// Asynchronous host→device copy. The request completes when the data
    /// is resident on the device.
    pub fn h2d(&self, src: &[u8], dst: &DeviceBuffer, offset: usize) -> Request {
        assert!(offset + src.len() <= dst.len(), "h2d out of bounds");
        let data = src.to_vec();
        let dst = dst.clone();
        self.enqueue(
            data.len(),
            Box::new(move || {
                dst.data.lock()[offset..offset + data.len()].copy_from_slice(&data);
            }),
        )
    }

    /// Asynchronous device→host copy into a shared landing buffer. The
    /// request completes when `dst` holds the data.
    pub fn d2h(
        &self,
        src: &DeviceBuffer,
        range: std::ops::Range<usize>,
        dst: Arc<Mutex<Vec<u8>>>,
    ) -> Request {
        assert!(range.end <= src.len(), "d2h out of bounds");
        let src = src.clone();
        let bytes = range.len();
        self.enqueue(
            bytes,
            Box::new(move || {
                let data = src.data.lock()[range.clone()].to_vec();
                *dst.lock() = data;
            }),
        )
    }

    /// Asynchronous device→device copy.
    pub fn d2d(
        &self,
        src: &DeviceBuffer,
        src_off: usize,
        dst: &DeviceBuffer,
        dst_off: usize,
        len: usize,
    ) -> Request {
        assert!(src_off + len <= src.len(), "d2d src out of bounds");
        assert!(dst_off + len <= dst.len(), "d2d dst out of bounds");
        let src = src.clone();
        let dst = dst.clone();
        self.enqueue(
            len,
            Box::new(move || {
                let data = src.data.lock()[src_off..src_off + len].to_vec();
                dst.data.lock()[dst_off..dst_off + len].copy_from_slice(&data);
            }),
        )
    }
}

/// "GPU-aware send": D2H copy, then inject the message once the copy
/// completes — chained by an `MPIX_Async` task on the communicator's
/// stream (the copy hook and the netmod hook collate on that stream, so
/// one progress loop drives the whole pipeline). Returns the request of
/// the overall operation.
pub fn send_from_device(
    comm: &mpfa_mpi::Comm,
    engine: &CopyEngine,
    src: &DeviceBuffer,
    range: std::ops::Range<usize>,
    dst: i32,
    tag: i32,
) -> mpfa_mpi::MpiResult<Request> {
    comm.world_rank(dst)?; // validate early
    let staging: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let copy_req = engine.d2h(src, range, staging.clone());
    let (req, completer) = Request::pair(comm.stream());
    let comm2 = comm.clone();
    let mut completer = Some(completer);
    let mut inner: Option<Request> = None;
    comm.stream().async_start(move |_t| {
        if inner.is_none() {
            if !copy_req.is_complete() {
                return AsyncPoll::Pending;
            }
            let bytes = std::mem::take(&mut *staging.lock());
            inner = Some(
                comm2
                    .isend_bytes(bytes, dst, tag)
                    .expect("validated at initiation"),
            );
            return AsyncPoll::Progress;
        }
        if inner.as_ref().expect("set").is_complete() {
            let status = inner.as_ref().expect("set").status().expect("complete");
            completer.take().expect("once").complete(status);
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });
    Ok(req)
}

/// "GPU-aware receive": receive into host staging, then H2D copy; the
/// returned request completes when the data is resident on the device.
pub fn recv_to_device(
    comm: &mpfa_mpi::Comm,
    engine: &CopyEngine,
    dst: &DeviceBuffer,
    offset: usize,
    count_bytes: usize,
    src: i32,
    tag: i32,
) -> mpfa_mpi::MpiResult<Request> {
    let recv = comm.irecv::<u8>(count_bytes, src, tag)?;
    let (req, completer) = Request::pair(comm.stream());
    let engine = engine.clone();
    let dst = dst.clone();
    let mut completer = Some(completer);
    let mut recv = Some(recv);
    let mut copy: Option<Request> = None;
    comm.stream().async_start(move |_t| {
        if copy.is_none() {
            if !recv.as_ref().expect("present").is_complete() {
                return AsyncPoll::Pending;
            }
            let (data, _) = recv.take().expect("present").take();
            copy = Some(engine.h2d(&data, &dst, offset));
            return AsyncPoll::Progress;
        }
        if copy.as_ref().expect("set").is_complete() {
            completer.take().expect("once").complete(Status::empty());
            AsyncPoll::Done
        } else {
            AsyncPoll::Pending
        }
    });
    Ok(req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2d_then_d2h_roundtrip() {
        let stream = Stream::create();
        let engine = CopyEngine::register(&stream, DeviceConfig::instant());
        let buf = DeviceBuffer::alloc(16);
        let up = engine.h2d(&[1, 2, 3, 4], &buf, 4);
        assert!(!up.is_complete(), "copy needs a progress observation");
        up.wait();
        assert_eq!(&buf.debug_snapshot()[4..8], &[1, 2, 3, 4]);

        let landing = Arc::new(Mutex::new(Vec::new()));
        let down = engine.d2h(&buf, 4..8, landing.clone());
        down.wait();
        assert_eq!(*landing.lock(), vec![1, 2, 3, 4]);
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.copied_bytes(), 8);
    }

    #[test]
    fn d2d_moves_within_device() {
        let stream = Stream::create();
        let engine = CopyEngine::register(&stream, DeviceConfig::instant());
        let a = DeviceBuffer::alloc(8);
        let b = DeviceBuffer::alloc(8);
        engine.h2d(&[9; 8], &a, 0).wait();
        engine.d2d(&a, 2, &b, 4, 3).wait();
        assert_eq!(&b.debug_snapshot()[4..7], &[9, 9, 9]);
        assert_eq!(b.debug_snapshot()[0], 0);
    }

    #[test]
    fn copies_complete_in_fifo_order_with_latency() {
        let stream = Stream::create();
        let engine = CopyEngine::register(
            &stream,
            DeviceConfig {
                latency: 500e-6,
                bandwidth: 0.0,
            },
        );
        let buf = DeviceBuffer::alloc(4);
        let t0 = wtime();
        let first = engine.h2d(&[1], &buf, 0);
        let second = engine.h2d(&[2], &buf, 1);
        // Second must not complete before first (engine queue is FIFO).
        while !second.is_complete() {
            stream.progress();
            if first.is_complete() {
                break;
            }
        }
        assert!(first.is_complete());
        first.wait();
        second.wait();
        assert!(
            wtime() - t0 >= 1e-3,
            "two copies serialize to >= 2x latency"
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn h2d_bounds_checked() {
        let stream = Stream::create();
        let engine = CopyEngine::register(&stream, DeviceConfig::instant());
        let buf = DeviceBuffer::alloc(2);
        engine.h2d(&[1, 2, 3], &buf, 0);
    }

    #[test]
    fn gpu_aware_send_recv_end_to_end() {
        use mpfa_mpi::{World, WorldConfig};
        let procs = World::init(WorldConfig::instant(2));
        let results: Vec<Vec<u8>> = std::thread::scope(|s| {
            let handles: Vec<_> = procs
                .into_iter()
                .map(|proc| {
                    s.spawn(move || {
                        let comm = proc.world_comm();
                        let engine = CopyEngine::register(comm.stream(), DeviceConfig::instant());
                        if comm.rank() == 0 {
                            // Device-resident payload.
                            let dev = DeviceBuffer::alloc(64);
                            engine.h2d(&[0xCD; 64], &dev, 0).wait();
                            let req = send_from_device(&comm, &engine, &dev, 0..64, 1, 7).unwrap();
                            req.wait();
                            Vec::new()
                        } else {
                            let dev = DeviceBuffer::alloc(64);
                            let req = recv_to_device(&comm, &engine, &dev, 0, 64, 0, 7).unwrap();
                            req.wait();
                            dev.debug_snapshot()
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[1], vec![0xCD; 64]);
    }
}

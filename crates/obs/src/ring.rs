//! Lock-free per-thread event rings.
//!
//! Each recording thread owns one [`ThreadRing`]: a fixed-capacity
//! circular buffer of packed events (see [`crate::event`]). The owning
//! thread is the only writer; any thread may take a [`snapshot`]
//! concurrently. Coherence is a per-slot sequence lock: the writer bumps
//! the slot's `seq` to an odd value, stores the payload words, then bumps
//! it to the next even value. A reader that observes the same even `seq`
//! before and after loading the words has a consistent event; otherwise it
//! skips the slot. All accesses are atomic word loads/stores — no
//! `unsafe`, no torn reads by construction.
//!
//! [`snapshot`]: ThreadRing::snapshot

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{Event, EVENT_WORDS};

/// Default per-thread ring capacity (events). Override with the
/// `MPFA_OBS_RING_CAP` environment variable, read once per process.
pub const DEFAULT_RING_CAP: usize = 65_536;

struct Slot {
    /// Seqlock word: odd while the writer is mid-store, even when stable.
    /// `seq / 2` is the number of completed writes to this slot.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A fixed-capacity single-writer / multi-reader event ring.
pub struct ThreadRing {
    /// Total events ever pushed; `head % cap` is the next write index.
    head: AtomicU64,
    slots: Vec<Slot>,
    /// Human-readable owner label, e.g. the thread name.
    label: String,
}

impl ThreadRing {
    /// Create a ring with capacity `cap` (rounded up to at least 1).
    pub fn with_capacity(label: &str, cap: usize) -> ThreadRing {
        let cap = cap.max(1);
        ThreadRing {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
            label: label.to_string(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Owner label supplied at creation.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total events pushed over the ring's lifetime (may exceed
    /// capacity; older events are overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one event. Must only be called by the owning thread: the
    /// ring is single-writer. (Enforced by the thread-local access path
    /// in [`crate::record`].)
    pub fn push(&self, ev: &Event) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let seq0 = slot.seq.load(Ordering::Relaxed);
        // Odd = write in progress. Release so readers that see the odd
        // value know to retry/skip.
        slot.seq.store(seq0 | 1, Ordering::Release);
        let raw = ev.pack();
        for (w, v) in slot.words.iter().zip(raw) {
            w.store(v, Ordering::Relaxed);
        }
        // Even, one generation later.
        slot.seq
            .store((seq0 | 1).wrapping_add(1), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Read a consistent copy of the ring's current contents, oldest
    /// first. Slots being concurrently rewritten are skipped; everything
    /// returned is a fully-written event.
    pub fn snapshot(&self) -> ThreadSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let dropped = head.saturating_sub(cap);
        let mut events = Vec::with_capacity(head.min(cap) as usize);
        for i in dropped..head {
            let slot = &self.slots[(i % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before & 1 == 1 {
                continue; // mid-write
            }
            let mut raw = [0u64; EVENT_WORDS];
            for (dst, w) in raw.iter_mut().zip(&slot.words) {
                *dst = w.load(Ordering::Relaxed);
            }
            let seq_after = slot.seq.load(Ordering::Acquire);
            if seq_after != seq_before {
                continue; // rewritten underneath us
            }
            if let Some(ev) = Event::unpack(raw) {
                events.push(ev);
            }
        }
        // The per-slot skip can reorder nothing, but overwrites during
        // the scan can surface a newer event before an older one; restore
        // time order for consumers.
        events.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(std::cmp::Ordering::Equal));
        ThreadSnapshot {
            label: self.label.clone(),
            pushed: head,
            dropped,
            events,
        }
    }
}

/// A consistent copy of one thread's ring at a point in time.
#[derive(Debug, Clone)]
pub struct ThreadSnapshot {
    /// Owner label (thread name) of the ring.
    pub label: String,
    /// Total events pushed to the ring over its lifetime.
    pub pushed: u64,
    /// Events overwritten before this snapshot (lifetime pushes beyond
    /// capacity).
    pub dropped: u64,
    /// The surviving events, oldest first.
    pub events: Vec<Event>,
}

/// The process-wide registry of every thread ring ever created, so
/// exporters can snapshot rings whose owner threads have exited.
fn registry() -> &'static Mutex<Vec<&'static ThreadRing>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static ThreadRing>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("MPFA_OBS_RING_CAP")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_RING_CAP)
    })
}

static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_RING: &'static ThreadRing = {
        let n = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
        let label = std::thread::current()
            .name()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("thread-{n}"));
        let ring: &'static ThreadRing =
            Box::leak(Box::new(ThreadRing::with_capacity(&label, ring_cap())));
        registry().lock().unwrap_or_else(|e| e.into_inner()).push(ring);
        ring
    };
}

/// Record an event into the current thread's ring, creating and
/// registering the ring on first use.
pub fn record_local(ev: &Event) {
    LOCAL_RING.with(|r| r.push(ev));
}

/// Snapshot every registered ring (including rings of exited threads).
pub fn snapshot_all() -> Vec<ThreadSnapshot> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.snapshot())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: f64, task: u64) -> Event {
        Event {
            t,
            kind: EventKind::TaskStart { stream: 0, task },
        }
    }

    #[test]
    fn push_and_snapshot_in_order() {
        let ring = ThreadRing::with_capacity("t", 8);
        for i in 0..5 {
            ring.push(&ev(i as f64, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.pushed, 5);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 5);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.t, i as f64);
        }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = ThreadRing::with_capacity("t", 4);
        for i in 0..10 {
            ring.push(&ev(i as f64, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.pushed, 10);
        assert_eq!(snap.dropped, 6);
        let ts: Vec<f64> = snap.events.iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_events() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(ThreadRing::with_capacity("t", 16));
        let stop = Arc::new(AtomicBool::new(false));
        let w = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Timestamp mirrors the task id so a torn read is
                    // detectable as t != task.
                    ring.push(&ev(i as f64, i));
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            for e in ring.snapshot().events {
                match e.kind {
                    EventKind::TaskStart { task, .. } => {
                        assert_eq!(e.t, task as f64, "torn event surfaced");
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn local_ring_registers_once() {
        let before = snapshot_all().len();
        record_local(&ev(0.0, 1));
        record_local(&ev(1.0, 2));
        let snaps = snapshot_all();
        // This thread's ring exists exactly once regardless of call count.
        assert!(!snaps.is_empty());
        assert!(snaps.len() <= before + 1);
        let mine: Vec<_> = snaps.iter().filter(|s| s.pushed >= 2).collect();
        assert!(!mine.is_empty());
    }
}

//! The process-wide monotonic clock all observability timestamps use.
//!
//! This is the `MPI_Wtime` equivalent the rest of the workspace builds on
//! (`mpfa_core::wtime` re-exports it): a monotonic wall-clock in seconds
//! since an arbitrary process-wide epoch. It lives here, at the bottom of
//! the crate graph, so event timestamps and benchmark timestamps share one
//! epoch and are directly comparable.

use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds elapsed since the process-wide epoch, as a monotonic `f64`.
///
/// Equivalent to `MPI_Wtime()`. The epoch is fixed the first time any
/// `wtime`-family function is called, so differences between two `wtime`
/// readings in the same process are always meaningful.
#[inline]
pub fn wtime() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Resolution of [`wtime`] in seconds (equivalent to `MPI_Wtick`).
///
/// `Instant` on the supported platforms is nanosecond-granular.
#[inline]
pub fn wtick() -> f64 {
    1e-9
}

/// Force the epoch to be initialized now. Useful at program start so the
/// first timed measurement does not pay the one-time `OnceLock` cost.
pub fn warmup() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = wtime();
        let b = wtime();
        assert!(b >= a);
    }

    #[test]
    fn advances() {
        let a = wtime();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = wtime();
        assert!(b - a >= 0.001, "expected >=1ms elapsed, got {}", b - a);
    }

    #[test]
    fn tick_is_positive_and_small() {
        assert!(wtick() > 0.0);
        assert!(wtick() < 1e-3);
    }

    #[test]
    fn warmup_idempotent() {
        warmup();
        warmup();
        assert!(wtime() >= 0.0);
    }
}

//! The process-wide monotonic clock all observability timestamps use.
//!
//! This is the `MPI_Wtime` equivalent the rest of the workspace builds on
//! (`mpfa_core::wtime` re-exports it): a monotonic wall-clock in seconds
//! since an arbitrary process-wide epoch. It lives here, at the bottom of
//! the crate graph, so event timestamps and benchmark timestamps share one
//! epoch and are directly comparable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether the process is currently running on virtual time. Checked on
/// every [`wtime`] call with a relaxed load — a predictable branch on a
/// cold cacheline, invisible in practice next to `Instant::elapsed`.
static VIRT_ON: AtomicBool = AtomicBool::new(false);
/// The virtual now, as `f64::to_bits`. Only meaningful while `VIRT_ON`.
static VIRT_BITS: AtomicU64 = AtomicU64::new(0);

/// Seconds elapsed since the process-wide epoch, as a monotonic `f64`.
///
/// Equivalent to `MPI_Wtime()`. The epoch is fixed the first time any
/// `wtime`-family function is called, so differences between two `wtime`
/// readings in the same process are always meaningful.
///
/// Under deterministic simulation ([`virtual_start`]) this instead
/// returns the virtual now, which advances only when the simulation
/// explicitly moves it — every timestamp, fabric arrival deadline, and
/// `wtime`-based timeout in the process then becomes a pure function of
/// the simulation schedule.
#[inline]
pub fn wtime() -> f64 {
    if VIRT_ON.load(Ordering::Relaxed) {
        return f64::from_bits(VIRT_BITS.load(Ordering::Acquire));
    }
    epoch().elapsed().as_secs_f64()
}

/// Switch the process-wide clock to virtual time, starting at `t0`
/// seconds. All subsequent [`wtime`] readings (in every crate above obs)
/// return the virtual now until [`virtual_stop`] is called.
///
/// This is process-global state: while one simulation drives virtual
/// time, real-time measurements elsewhere in the process freeze. Callers
/// (the `mpfa-dst` harness) serialize behind a process-wide lock so
/// concurrent `cargo test` threads cannot interleave virtual and real
/// time; use that harness rather than calling this directly.
pub fn virtual_start(t0: f64) {
    VIRT_BITS.store(t0.to_bits(), Ordering::Release);
    VIRT_ON.store(true, Ordering::Release);
}

/// Set the virtual now to `t` seconds. Panics if time would move
/// backwards — the clock must stay monotonic, virtual or not.
pub fn virtual_set(t: f64) {
    let prev = f64::from_bits(VIRT_BITS.load(Ordering::Acquire));
    assert!(
        t >= prev,
        "virtual clock must be monotonic: {t} < current {prev}"
    );
    VIRT_BITS.store(t.to_bits(), Ordering::Release);
}

/// Advance the virtual now by `dt` seconds and return the new now.
/// Panics on negative `dt`.
pub fn virtual_advance(dt: f64) -> f64 {
    assert!(dt >= 0.0, "virtual clock cannot advance by {dt}");
    let now = f64::from_bits(VIRT_BITS.load(Ordering::Acquire)) + dt;
    VIRT_BITS.store(now.to_bits(), Ordering::Release);
    now
}

/// Return the clock to real (monotonic wall) time.
pub fn virtual_stop() {
    VIRT_ON.store(false, Ordering::Release);
}

/// Whether the process clock is currently virtual.
#[inline]
pub fn virtual_enabled() -> bool {
    VIRT_ON.load(Ordering::Relaxed)
}

/// Resolution of [`wtime`] in seconds (equivalent to `MPI_Wtick`).
///
/// `Instant` on the supported platforms is nanosecond-granular.
#[inline]
pub fn wtick() -> f64 {
    1e-9
}

/// Force the epoch to be initialized now. Useful at program start so the
/// first timed measurement does not pay the one-time `OnceLock` cost.
pub fn warmup() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Virtual time is process-global, so tests that enable it and tests
    /// that measure real elapsed time must not overlap.
    fn time_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn monotonic() {
        let _t = time_lock();
        let a = wtime();
        let b = wtime();
        assert!(b >= a);
    }

    #[test]
    fn advances() {
        let _t = time_lock();
        let a = wtime();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = wtime();
        assert!(b - a >= 0.001, "expected >=1ms elapsed, got {}", b - a);
    }

    #[test]
    fn virtual_time_overrides_and_releases_wtime() {
        let _t = time_lock();
        virtual_start(100.0);
        assert!(virtual_enabled());
        assert_eq!(wtime(), 100.0);
        assert_eq!(wtime(), 100.0); // frozen until advanced
        assert_eq!(virtual_advance(0.5), 100.5);
        assert_eq!(wtime(), 100.5);
        virtual_set(101.0);
        assert_eq!(wtime(), 101.0);
        virtual_stop();
        assert!(!virtual_enabled());
        let real = wtime();
        assert!(real < 100.0, "real clock should resume, got {real}");
    }

    #[test]
    fn virtual_set_rejects_backwards_motion() {
        let _t = time_lock();
        virtual_start(5.0);
        let r = std::panic::catch_unwind(|| virtual_set(4.0));
        virtual_stop();
        assert!(r.is_err());
    }

    #[test]
    fn tick_is_positive_and_small() {
        assert!(wtick() > 0.0);
        assert!(wtick() < 1e-3);
    }

    #[test]
    fn warmup_idempotent() {
        warmup();
        warmup();
        assert!(wtime() >= 0.0);
    }
}

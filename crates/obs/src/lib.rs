//! # mpfa-obs — progress observability
//!
//! "MPI Progress For All" hands progress control to the user; this crate
//! makes the resulting behavior visible. It provides four layers:
//!
//! * **Events** ([`event`], [`ring`]) — typed records of hook polls,
//!   progress sweeps, request completions, fabric traffic, and protocol
//!   transitions, captured into lock-free per-thread ring buffers. Event
//!   recording is compiled in only with the `obs` cargo feature; without
//!   it, [`record`] is an empty inline function and the event closure is
//!   never even evaluated.
//! * **Counters** ([`counters`]) — a small set of always-on relaxed
//!   atomics (polls, idle streaks, messages/bytes per path, rendezvous
//!   handshakes) with a [`counters::Counters::snapshot`] API.
//! * **Trace export** ([`trace`]) — renders ring snapshots as
//!   Chrome-trace JSON openable in `chrome://tracing` or Perfetto.
//! * **Doctor** ([`doctor`]) — analyzes recorded events for progress
//!   pathologies (pending work with no poller, no-progress spinning,
//!   rendezvous stuck awaiting CTS) and prints an actionable report.
//!
//! This crate sits at the bottom of the workspace graph (it depends on
//! nothing) so every other crate can be instrumented; it also owns the
//! process-wide [`clock`] that `mpfa_core::wtime` re-exports.

#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod doctor;
pub mod event;
pub mod ring;
pub mod trace;

pub use counters::{global as global_counters, CounterSnapshot, Counters};
pub use doctor::{diagnose, diagnose_with_counters, DoctorConfig, DoctorReport};
pub use event::{Event, EventKind, NameId, PathKind, PollVerdict, TaskVerdict};
pub use ring::{snapshot_all, ThreadSnapshot};

/// True when event recording is compiled in (the `obs` cargo feature).
pub const fn recording_enabled() -> bool {
    cfg!(feature = "obs")
}

/// Record one event into the current thread's ring.
///
/// The closure builds the [`EventKind`] only when recording is compiled
/// in; with the `obs` feature off this function is empty and the closure
/// (and any `format!`/intern work inside it) is never evaluated, so call
/// sites carry zero cost without needing their own `cfg` guards.
#[inline]
pub fn record<F: FnOnce() -> EventKind>(f: F) {
    #[cfg(feature = "obs")]
    {
        let ev = Event {
            t: clock::wtime(),
            kind: f(),
        };
        ring::record_local(&ev);
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = f;
    }
}

/// Record one event with an explicit timestamp (for duration events whose
/// start was measured before the work ran). No-op unless the `obs`
/// feature is on, like [`record`].
#[inline]
pub fn record_at<F: FnOnce() -> EventKind>(t: f64, f: F) {
    #[cfg(feature = "obs")]
    {
        let ev = Event { t, kind: f() };
        ring::record_local(&ev);
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (t, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_matches_feature_flag() {
        let base: u64 = snapshot_all().iter().map(|s| s.pushed).sum();
        record(|| EventKind::TaskStart {
            stream: 99,
            task: 1,
        });
        let after: u64 = snapshot_all().iter().map(|s| s.pushed).sum();
        if recording_enabled() {
            assert!(after > base, "event should have been recorded");
        } else {
            assert_eq!(after, base, "recording must be compiled out");
        }
    }

    #[test]
    fn record_at_uses_given_timestamp() {
        if !recording_enabled() {
            return;
        }
        record_at(123.25, || EventKind::TaskStart {
            stream: 98,
            task: 7,
        });
        let found = snapshot_all().iter().any(|s| {
            s.events.iter().any(|e| {
                e.t == 123.25
                    && matches!(
                        e.kind,
                        EventKind::TaskStart {
                            stream: 98,
                            task: 7
                        }
                    )
            })
        });
        assert!(found);
    }
}

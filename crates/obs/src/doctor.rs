//! The progress doctor: pathology detection over recorded events.
//!
//! "MPI Progress For All" moves progress responsibility to the user —
//! which means the user can now get it wrong: start async work on a
//! stream nobody polls, spin a progress hook that never advances, or
//! leave a rendezvous handshake waiting for a CTS that cannot arrive.
//! The doctor takes ring snapshots (see [`crate::ring`]) and reports
//! these pathologies with actionable advice.
//!
//! The analysis is pure: it consumes `&[ThreadSnapshot]`, so tests can
//! feed synthetic event streams without any recording infrastructure.

use std::collections::HashMap;

use crate::counters::CounterSnapshot;
use crate::event::{EventKind, TaskVerdict};
use crate::ring::ThreadSnapshot;

/// Tunable thresholds for [`diagnose`].
#[derive(Debug, Clone, Copy)]
pub struct DoctorConfig {
    /// Flag a hook once it reports no progress this many times in a row
    /// on one stream.
    pub no_progress_streak: u64,
    /// Seconds a rendezvous RTS may wait for its CTS before being
    /// flagged (measured against the newest event in the snapshots).
    pub rndv_grace: f64,
    /// Flag engine-lock contention once this many `try_lock` failures
    /// were counted while only one thread recorded progress sweeps.
    pub engine_contention_threshold: u64,
    /// Flag a transport partition once the netmod has been polled this
    /// many times while a wire transport reports at least one dead peer
    /// (reconnect budget exhausted).
    pub dead_peer_polls: u64,
    /// Flag a shared-memory consumer stall once this many ring-full
    /// events were counted (each one is a frame that found no space in a
    /// peer's inbound ring and had to be staged in overflow).
    pub shm_ring_full_stalls: u64,
    /// Seconds a partitioned send round may sit with unready partitions
    /// before it is flagged (the producer threads never called
    /// `pready`, so the round can never complete).
    pub partitioned_stall_grace: f64,
    /// Flag a lost reactor wakeup once this many hook polls have run
    /// while the reactor's published readiness bits stay unconsumed.
    pub reactor_pending_polls: u64,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            no_progress_streak: 1000,
            rndv_grace: 0.0,
            engine_contention_threshold: 64,
            dead_peer_polls: 64,
            shm_ring_full_stalls: 4096,
            partitioned_stall_grace: 1.0,
            reactor_pending_polls: 64,
        }
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly benign (e.g. busy polling).
    Warning,
    /// Work that cannot complete without intervention.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "WARN"),
            Severity::Critical => write!(f, "CRIT"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// How bad it is.
    pub severity: Severity,
    /// One-line statement of the pathology.
    pub title: String,
    /// Supporting evidence from the event record.
    pub detail: String,
    /// What the user should do about it.
    pub advice: String,
}

/// The doctor's full report.
#[derive(Debug, Clone, Default)]
pub struct DoctorReport {
    /// Findings, most severe first.
    pub diagnoses: Vec<Diagnosis>,
    /// Total events examined.
    pub events_examined: u64,
    /// Events lost to ring wraparound before the snapshot (analysis may
    /// be incomplete if nonzero).
    pub events_dropped: u64,
}

impl DoctorReport {
    /// True when nothing suspicious was found.
    pub fn healthy(&self) -> bool {
        self.diagnoses.is_empty()
    }

    /// Findings at [`Severity::Critical`].
    pub fn criticals(&self) -> impl Iterator<Item = &Diagnosis> {
        self.diagnoses
            .iter()
            .filter(|d| d.severity == Severity::Critical)
    }
}

impl std::fmt::Display for DoctorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== progress doctor: {} finding(s) over {} event(s){} ==",
            self.diagnoses.len(),
            self.events_examined,
            if self.events_dropped > 0 {
                format!(" ({} dropped to ring wraparound)", self.events_dropped)
            } else {
                String::new()
            }
        )?;
        if self.diagnoses.is_empty() {
            return write!(f, "no pathologies detected");
        }
        for (i, d) in self.diagnoses.iter().enumerate() {
            writeln!(f, "[{}] {} {}", i + 1, d.severity, d.title)?;
            writeln!(f, "    evidence: {}", d.detail)?;
            write!(f, "    advice:   {}", d.advice)?;
            if i + 1 < self.diagnoses.len() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[derive(Default)]
struct StreamState {
    started: u64,
    finished: u64,
    last_task_start: f64,
    last_progress: Option<f64>,
    progress_sweeps: u64,
}

#[derive(Default)]
struct HookStreak {
    current: u64,
    worst: u64,
    worst_at: f64,
}

struct RndvState {
    t_rts: f64,
    src: u32,
    dst: u32,
    total: u64,
    granted: bool,
    done: bool,
}

/// Analyze event snapshots for progress pathologies.
pub fn diagnose(snaps: &[ThreadSnapshot], cfg: &DoctorConfig) -> DoctorReport {
    diagnose_with_counters(snaps, None, cfg)
}

/// [`diagnose`], additionally cross-checking a [`CounterSnapshot`] for
/// pathologies that events alone cannot show (counters are always on;
/// events are feature-gated and ring-buffered).
pub fn diagnose_with_counters(
    snaps: &[ThreadSnapshot],
    counters: Option<&CounterSnapshot>,
    cfg: &DoctorConfig,
) -> DoctorReport {
    let mut report = DoctorReport::default();
    let mut streams: HashMap<u64, StreamState> = HashMap::new();
    let mut streaks: HashMap<(u64, u32), HookStreak> = HashMap::new();
    let mut rndv: HashMap<u64, RndvState> = HashMap::new();
    let mut now = 0.0f64;

    // Distinct threads that completed at least one progress sweep —
    // needed by the contention pathology, and only visible before the
    // per-thread snapshots are merged below.
    let progress_threads = snaps
        .iter()
        .filter(|s| {
            s.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::StreamProgress { .. }))
        })
        .count() as u64;

    // Merge all threads' events into one time-ordered view: streams can
    // be polled from any thread, so per-thread analysis would report
    // false stalls.
    let mut events: Vec<_> = snaps.iter().flat_map(|s| s.events.iter()).collect();
    events.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(std::cmp::Ordering::Equal));
    report.events_examined = events.len() as u64;
    report.events_dropped = snaps.iter().map(|s| s.dropped).sum();

    for ev in events {
        now = now.max(ev.t);
        match ev.kind {
            EventKind::TaskStart { stream, .. } => {
                let st = streams.entry(stream).or_default();
                st.started += 1;
                st.last_task_start = ev.t;
            }
            EventKind::TaskPoll {
                stream, verdict, ..
            } => {
                if matches!(verdict, TaskVerdict::Done | TaskVerdict::Poisoned) {
                    streams.entry(stream).or_default().finished += 1;
                }
            }
            EventKind::StreamProgress { stream, .. } => {
                let st = streams.entry(stream).or_default();
                st.last_progress = Some(ev.t);
                st.progress_sweeps += 1;
            }
            EventKind::HookPoll {
                stream,
                name,
                verdict,
                ..
            } => {
                let sk = streaks.entry((stream, name.0)).or_default();
                match verdict {
                    crate::event::PollVerdict::NoProgress => {
                        sk.current += 1;
                        if sk.current > sk.worst {
                            sk.worst = sk.current;
                            sk.worst_at = ev.t;
                        }
                    }
                    crate::event::PollVerdict::Progress => sk.current = 0,
                }
            }
            EventKind::RndvRts {
                send_id,
                src,
                dst,
                total,
            } => {
                rndv.insert(
                    send_id,
                    RndvState {
                        t_rts: ev.t,
                        src,
                        dst,
                        total,
                        granted: false,
                        done: false,
                    },
                );
            }
            EventKind::RndvCts { send_id, .. } => {
                if let Some(r) = rndv.get_mut(&send_id) {
                    r.granted = true;
                }
            }
            EventKind::RndvDone {
                id, sender: true, ..
            } => {
                if let Some(r) = rndv.get_mut(&id) {
                    r.done = true;
                }
            }
            _ => {}
        }
    }

    // Pathology 1: a stream with pending work that nobody polls.
    let mut stream_ids: Vec<_> = streams.keys().copied().collect();
    stream_ids.sort_unstable();
    for sid in stream_ids {
        let st = &streams[&sid];
        let pending = st.started.saturating_sub(st.finished);
        if pending == 0 {
            continue;
        }
        let polled_since_start = st.last_progress.is_some_and(|t| t >= st.last_task_start);
        if !polled_since_start {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!("stream {sid} has {pending} pending task(s) but no poller"),
                detail: if st.progress_sweeps == 0 {
                    format!(
                        "{} task(s) started (last at t={:.6}s) and no progress sweep \
                         was ever recorded on this stream",
                        st.started, st.last_task_start
                    )
                } else {
                    format!(
                        "last progress sweep at t={:.6}s predates the last task start \
                         at t={:.6}s",
                        st.last_progress.unwrap_or(0.0),
                        st.last_task_start
                    )
                },
                advice: format!(
                    "call MPIX_Stream_progress (stream {sid}) from some thread, or \
                     attach the stream to a progress source; tasks never advance \
                     without an explicit poller"
                ),
            });
        }
    }

    // Pathology 2: a hook spinning without progress.
    let mut streak_keys: Vec<_> = streaks.keys().copied().collect();
    streak_keys.sort_unstable();
    for key in streak_keys {
        let sk = &streaks[&key];
        if sk.worst >= cfg.no_progress_streak {
            let (stream, name) = key;
            report.diagnoses.push(Diagnosis {
                severity: Severity::Warning,
                title: format!(
                    "hook '{}' returned no-progress {} times in a row on stream {}",
                    crate::event::NameId(name).resolve(),
                    sk.worst,
                    stream
                ),
                detail: format!(
                    "streak peaked at t={:.6}s (threshold {})",
                    sk.worst_at, cfg.no_progress_streak
                ),
                advice: "the poller is spinning on an idle subsystem: check that the \
                         peer side is being progressed too, or back off the polling \
                         loop"
                    .to_string(),
            });
        }
    }

    // Pathology 3: rendezvous stuck awaiting CTS.
    let mut rndv_ids: Vec<_> = rndv.keys().copied().collect();
    rndv_ids.sort_unstable();
    for id in rndv_ids {
        let r = &rndv[&id];
        if r.done || r.granted {
            continue;
        }
        if now - r.t_rts >= cfg.rndv_grace {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "rendezvous send {} ({} -> {}, {} bytes) stuck awaiting CTS",
                    id, r.src, r.dst, r.total
                ),
                detail: format!(
                    "RTS sent at t={:.6}s, no CTS seen by t={:.6}s",
                    r.t_rts, now
                ),
                advice: "the receiver has not granted clear-to-send: make sure the \
                         destination rank posted a matching receive and that its \
                         stream is being progressed"
                    .to_string(),
            });
        }
    }

    // Pathology 4: heavy engine-lock contention while only one thread
    // ever completes a sweep. Every sweep the contended callers wanted
    // was done by that single holder — the extra threads only fight over
    // the lock, which is a configuration smell, not a progress strategy.
    if let Some(c) = counters {
        if c.engine_lock_contended >= cfg.engine_contention_threshold && progress_threads <= 1 {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Warning,
                title: format!(
                    "high engine-lock contention ({} failed try_locks) with a \
                     single progress thread",
                    c.engine_lock_contended
                ),
                detail: format!(
                    "{} thread(s) recorded completed sweeps; {} contended \
                     caller(s) were absorbed by the combining lock ({} handoffs)",
                    progress_threads, c.engine_lock_contended, c.combining_handoffs
                ),
                advice: "many threads are hammering one stream's progress lock \
                         while one thread does all the work: give threads their \
                         own streams (per-VCI parallelism) or stop redundant \
                         polling loops"
                    .to_string(),
            });
        }
    }

    // Pathology 5: peer unreachable / transport partition. A wire
    // transport has exhausted its reconnect budget for at least one peer
    // while the netmod keeps getting polled — every send toward that
    // rank (and every collective spanning it) is now unfinishable.
    if let Some(c) = counters {
        if c.transport_dead_peers > 0 && c.hook_polls >= cfg.dead_peer_polls {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "peer unreachable / transport partition: {} dead peer(s)",
                    c.transport_dead_peers
                ),
                detail: format!(
                    "{} reconnect attempt(s) recorded before giving up; the \
                     netmod was polled {} time(s) (threshold {}) with the \
                     peer's socket dead",
                    c.transport_reconnects, c.hook_polls, cfg.dead_peer_polls
                ),
                advice: "a peer's wire connection is gone and the reconnect \
                         budget is exhausted: check that the peer process is \
                         alive and reachable; point-to-point traffic and \
                         collectives involving that rank can never complete"
                    .to_string(),
            });
        }
    }

    // Pathology 6: rank failure / communicator revocation. The failure
    // detector has declared at least one rank dead. If no communicator
    // was revoked afterwards, survivors are likely still posting
    // operations toward the corpse — that is the pre-ULFM hang. If a
    // revoke *was* observed, the finding is informational: recovery
    // machinery engaged (shrink/agree can be checked via agree_rounds).
    if let Some(c) = counters {
        if c.ranks_failed > 0 {
            let recovering = c.comms_revoked > 0;
            report.diagnoses.push(Diagnosis {
                severity: if recovering {
                    Severity::Warning
                } else {
                    Severity::Critical
                },
                title: if recovering {
                    format!(
                        "rank failure handled: {} rank(s) failed, {} comm(s) revoked",
                        c.ranks_failed, c.comms_revoked
                    )
                } else {
                    format!(
                        "{} rank(s) failed but no communicator was revoked",
                        c.ranks_failed
                    )
                },
                detail: format!(
                    "detector epochs {}, {} agree op(s) completed, {} dead \
                     transport peer(s)",
                    c.detector_epochs, c.agree_rounds, c.transport_dead_peers
                ),
                advice: if recovering {
                    "recovery is underway: finish with Comm::agree on the \
                     failure set and rebuild via Comm::shrink; operations on \
                     the revoked communicator fail with RequestError::Revoked"
                        .to_string()
                } else {
                    "call Comm::revoke on the affected communicator so every \
                     rank's outstanding operations fail over to the error \
                     path, then Comm::shrink to rebuild without the failed \
                     rank(s); without a revoke, survivors can hang forever"
                        .to_string()
                },
            });
        }
    }

    // Pathology 7: completed request with an unfired continuation.
    // `continuations_ready` counts callbacks handed to a stream's
    // deferred-execution list at request completion; `continuations_fired`
    // counts callbacks actually run by a later progress call. A lasting
    // gap means requests completed but nobody progressed their stream
    // afterwards — the callbacks (and anything chained on them) are
    // stranded.
    if let Some(c) = counters {
        if c.continuations_ready > c.continuations_fired {
            let stranded = c.continuations_ready - c.continuations_fired;
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!("{stranded} completed request(s) with an unfired continuation"),
                detail: format!(
                    "{} continuation(s) attached, {} became ready at completion, \
                     only {} ran",
                    c.continuations_attached, c.continuations_ready, c.continuations_fired
                ),
                advice: "continuations run deferred, on the next progress call \
                         after the completing sweep: keep calling \
                         MPIX_Stream_progress (or Stream::drain) on the stream \
                         after the operation completes, or the attached \
                         callbacks never execute"
                    .to_string(),
            });
        }
    }

    // Pathology 8: shm ring full with no consumer progress. A producer
    // keeps finding a co-located peer's inbound ring out of space — the
    // consumer side is mapped but nobody is draining it (its progress
    // engine is not being polled). Every stalled frame is staged in an
    // overflow queue (an extra counted copy) and the ring view release
    // path cannot advance, so the stall is self-sustaining until the
    // consumer progresses.
    if let Some(c) = counters {
        if c.shm_ring_full >= cfg.shm_ring_full_stalls {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "shm ring full {} time(s) with no consumer progress",
                    c.shm_ring_full
                ),
                detail: format!(
                    "{} ring-full stall(s) recorded (threshold {}); {} B were \
                     memcpy'd on the datapath, including overflow staging for \
                     frames that found no ring space",
                    c.shm_ring_full, cfg.shm_ring_full_stalls, c.bytes_copied
                ),
                advice: "a co-located peer's inbound ring is not being drained: \
                         make sure the receiving rank polls its stream \
                         (MPIX_Stream_progress) or runs a progress thread, and \
                         that matched large receives are consumed promptly — \
                         an undropped ring view holds its ring space until the \
                         receive is taken"
                    .to_string(),
            });
        }
    }

    // Pathology 9: flow frontier stalled while capabilities are held by
    // a dead or idle rank. The mpfa-flow engine re-asserts the stall
    // counters every poll while a frontier has not moved for its stall
    // threshold; the holder is the rank whose capability (or unsent
    // record) pins the frontier's minimum. If the detector has also
    // declared ranks dead, the holder is almost certainly a corpse and
    // only shrink + replay can unstick the pipeline; otherwise it is an
    // alive rank that stopped advancing its capabilities.
    if let Some(c) = counters {
        if c.flow_stalled_holder > 0 {
            let holder = c.flow_stalled_holder - 1;
            let dead = c.ranks_failed > 0;
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "flow frontier stalled at t={}: capabilities held by {} rank {}",
                    c.flow_stalled_at,
                    if dead { "dead/idle" } else { "idle" },
                    holder
                ),
                detail: format!(
                    "frontier stuck at timestamp {} with world rank {} holding \
                     the oldest capability; {} frontier update(s) so far, {} \
                     rank(s) declared failed",
                    c.flow_stalled_at, holder, c.flow_frontier_updates, c.ranks_failed
                ),
                advice: if dead {
                    "the capability holder is (or shares fate with) a failed \
                     rank: revoke + shrink the communicator, abandon the flows \
                     (FlowContext::abandon_all), rebuild them on the shrunk \
                     comm, and replay unfinished work from the redo log"
                        .to_string()
                } else {
                    format!(
                        "world rank {holder} is alive but has not advanced or \
                         dropped its capability at timestamp {}: make sure it \
                         calls FlowSender::advance_to/close and that its \
                         stream is being progressed",
                        c.flow_stalled_at
                    )
                },
            });
        }
    }

    // Pathology 10: a partitioned send round started but partitions were
    // never marked ready. The progress sweep re-asserts the stall gauges
    // (`persist_part_stalled` = unready partitions of the oldest round,
    // `persist_part_stalled_ms` = how long it has waited) every pass, so
    // a non-zero reading is current, not historical. The wire cannot
    // move data the producers never released: this is a user-side bug
    // (missed `pready`) or a wedged producer thread, and the round will
    // hold its request incomplete forever.
    if let Some(c) = counters {
        if c.persist_part_stalled > 0
            && c.persist_part_stalled_ms as f64 / 1e3 >= cfg.partitioned_stall_grace
        {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "partitioned send stalled: {} partition(s) still unready after {} ms",
                    c.persist_part_stalled, c.persist_part_stalled_ms
                ),
                detail: format!(
                    "the oldest active partitioned send round has waited {} ms \
                     with {} of its partitions never marked ready; the \
                     transport has nothing to send and the round's request \
                     cannot complete ({} partition(s) marked ready overall, \
                     {} persistent re-fires)",
                    c.persist_part_stalled_ms,
                    c.persist_part_stalled,
                    c.partitions_ready,
                    c.persist_refires
                ),
                advice: "every partition of a started round must eventually be \
                         released with pready/pready_range: check that the \
                         producer threads cover all partition indices (a \
                         missed index wedges the round) and that they are not \
                         themselves blocked"
                    .to_string(),
            });
        }
    }

    // Pathology 11: reactor wakeup lost / peer readable but never swept.
    // `reactor_ready_pending` is a gauge of readiness bits the epoll
    // reactor has published that no pump pass has consumed. The reactor
    // only ever raises a bit when a socket is actually readable (or a
    // listener has a pending accept), so a lasting non-zero reading
    // while hook polls keep running means the progress engine is polling
    // *something* but never the wire that has bytes waiting — a broken
    // `has_work` wiring, a pump stuck behind its lock, or a consumer
    // that cleared the bit without draining (the classic edge-trigger
    // bug the DST fixture plants).
    if let Some(c) = counters {
        if c.reactor_ready_pending > 0
            && c.reactor_wakeups > 0
            && c.hook_polls >= cfg.reactor_pending_polls
        {
            report.diagnoses.push(Diagnosis {
                severity: Severity::Critical,
                title: format!(
                    "reactor wakeup lost: {} peer(s) readable but never swept",
                    c.reactor_ready_pending
                ),
                detail: format!(
                    "the readiness reactor published {} wakeup(s) and {} \
                     readiness bit(s) are still unconsumed after {} hook \
                     poll(s) (threshold {}); {} socket syscall(s) issued so \
                     far",
                    c.reactor_wakeups,
                    c.reactor_ready_pending,
                    c.hook_polls,
                    cfg.reactor_pending_polls,
                    c.wire_syscalls
                ),
                advice: "a wire transport has readable sockets its progress \
                         engine never drains: make sure some thread polls the \
                         stream owning the netmod hook, and that nothing \
                         consumes a readiness bit without reading the socket \
                         to WouldBlock (an edge-triggered wakeup is delivered \
                         once; clearing the bit before the drain loses it)"
                    .to_string(),
            });
        }
    }

    report
        .diagnoses
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, NameId, PollVerdict};

    fn snap(events: Vec<Event>) -> ThreadSnapshot {
        ThreadSnapshot {
            label: "t0".into(),
            pushed: events.len() as u64,
            dropped: 0,
            events,
        }
    }

    fn task_start(t: f64, stream: u64, task: u64) -> Event {
        Event {
            t,
            kind: EventKind::TaskStart { stream, task },
        }
    }

    fn task_done(t: f64, stream: u64, task: u64) -> Event {
        Event {
            t,
            kind: EventKind::TaskPoll {
                stream,
                task,
                verdict: TaskVerdict::Done,
            },
        }
    }

    fn sweep(t: f64, stream: u64) -> Event {
        Event {
            t,
            kind: EventKind::StreamProgress {
                stream,
                dur: 1e-6,
                hook_polls: 4,
                tasks_polled: 1,
                tasks_completed: 0,
                made_progress: false,
            },
        }
    }

    #[test]
    fn healthy_run_produces_no_findings() {
        let report = diagnose(
            &[snap(vec![
                task_start(0.0, 1, 1),
                sweep(0.001, 1),
                task_done(0.001, 1, 1),
            ])],
            &DoctorConfig::default(),
        );
        assert!(report.healthy(), "unexpected findings: {report}");
        assert_eq!(report.events_examined, 3);
    }

    #[test]
    fn flags_stream_with_pending_work_and_no_poller() {
        let report = diagnose(
            &[snap(vec![task_start(0.0, 7, 1), task_start(0.1, 7, 2)])],
            &DoctorConfig::default(),
        );
        assert_eq!(report.diagnoses.len(), 1);
        let d = &report.diagnoses[0];
        assert_eq!(d.severity, Severity::Critical);
        assert!(d.title.contains("stream 7"));
        assert!(d.title.contains("2 pending"));
        assert!(d.advice.contains("MPIX_Stream_progress"));
    }

    #[test]
    fn poller_that_stopped_before_new_work_is_still_a_stall() {
        let report = diagnose(
            &[snap(vec![
                task_start(0.0, 3, 1),
                sweep(0.5, 3),
                task_done(0.5, 3, 1),
                // New work after the last sweep, never polled again.
                task_start(1.0, 3, 2),
            ])],
            &DoctorConfig::default(),
        );
        assert_eq!(report.criticals().count(), 1);
        assert!(report.diagnoses[0].detail.contains("predates"));
    }

    #[test]
    fn cross_thread_poller_is_not_a_stall() {
        // Task started on one thread, stream progressed from another.
        let report = diagnose(
            &[snap(vec![task_start(0.0, 5, 1)]), snap(vec![sweep(0.2, 5)])],
            &DoctorConfig::default(),
        );
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_no_progress_streak_over_threshold() {
        let name = NameId::intern("netmod-doctor-test");
        let mut events = Vec::new();
        for i in 0..50 {
            events.push(Event {
                t: i as f64 * 1e-6,
                kind: EventKind::HookPoll {
                    stream: 0,
                    class: 3,
                    name,
                    verdict: PollVerdict::NoProgress,
                    dur: 1e-7,
                },
            });
        }
        let cfg = DoctorConfig {
            no_progress_streak: 50,
            ..Default::default()
        };
        let report = diagnose(&[snap(events.clone())], &cfg);
        assert_eq!(report.diagnoses.len(), 1);
        assert!(report.diagnoses[0].title.contains("netmod-doctor-test"));
        assert!(report.diagnoses[0].title.contains("50 times"));

        // A single progress poll in the middle resets the streak.
        events.insert(
            25,
            Event {
                t: 24.5e-6,
                kind: EventKind::HookPoll {
                    stream: 0,
                    class: 3,
                    name,
                    verdict: PollVerdict::Progress,
                    dur: 1e-7,
                },
            },
        );
        let report = diagnose(&[snap(events)], &cfg);
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_rendezvous_stuck_awaiting_cts() {
        let events = vec![
            Event {
                t: 0.0,
                kind: EventKind::RndvRts {
                    send_id: 9,
                    src: 0,
                    dst: 1,
                    total: 1 << 20,
                },
            },
            sweep(1.0, 0),
        ];
        let report = diagnose(&[snap(events)], &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        assert!(report.diagnoses[0].title.contains("awaiting CTS"));
        assert!(report.diagnoses[0].advice.contains("matching receive"));
    }

    #[test]
    fn granted_or_completed_rendezvous_is_healthy() {
        let events = vec![
            Event {
                t: 0.0,
                kind: EventKind::RndvRts {
                    send_id: 9,
                    src: 0,
                    dst: 1,
                    total: 100,
                },
            },
            Event {
                t: 0.1,
                kind: EventKind::RndvCts {
                    send_id: 9,
                    recv_id: 1,
                },
            },
            Event {
                t: 0.2,
                kind: EventKind::RndvDone {
                    id: 9,
                    bytes: 100,
                    sender: true,
                },
            },
        ];
        let report = diagnose(&[snap(events)], &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn report_display_is_actionable() {
        let report = diagnose(
            &[snap(vec![task_start(0.0, 7, 1)])],
            &DoctorConfig::default(),
        );
        let text = report.to_string();
        assert!(text.contains("CRIT"));
        assert!(text.contains("advice:"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn flags_contention_with_single_progress_thread() {
        let counters = CounterSnapshot {
            engine_lock_contended: 500,
            combining_handoffs: 480,
            ..Default::default()
        };
        // One thread sweeps; another only starts (and finishes) a task.
        let report = diagnose_with_counters(
            &[
                snap(vec![sweep(0.0, 1), task_done(0.1, 1, 1)]),
                snap(vec![task_start(0.0, 1, 1)]),
            ],
            Some(&counters),
            &DoctorConfig::default(),
        );
        assert_eq!(report.diagnoses.len(), 1);
        let d = &report.diagnoses[0];
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.title.contains("engine-lock contention"));
        assert!(d.detail.contains("480 handoffs"));
        assert!(d.advice.contains("own streams"));
    }

    #[test]
    fn contention_with_many_progress_threads_is_expected() {
        let counters = CounterSnapshot {
            engine_lock_contended: 500,
            ..Default::default()
        };
        // Two threads both complete sweeps: contention is real parallelism,
        // not a lone poller being hammered.
        let report = diagnose_with_counters(
            &[
                snap(vec![
                    sweep(0.0, 1),
                    task_start(0.0, 1, 1),
                    task_done(0.1, 1, 1),
                ]),
                snap(vec![sweep(0.05, 1)]),
            ],
            Some(&counters),
            &DoctorConfig::default(),
        );
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn low_contention_is_not_flagged() {
        let counters = CounterSnapshot {
            engine_lock_contended: 3,
            ..Default::default()
        };
        let report = diagnose_with_counters(
            &[snap(vec![
                sweep(0.0, 1),
                task_start(0.0, 1, 1),
                task_done(0.1, 1, 1),
            ])],
            Some(&counters),
            &DoctorConfig::default(),
        );
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_dead_peer_transport_partition() {
        let counters = CounterSnapshot {
            transport_dead_peers: 1,
            transport_reconnects: 20,
            hook_polls: 500,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("transport partition"));
        assert!(d.title.contains("1 dead peer"));
        assert!(d.detail.contains("20 reconnect"));
        assert!(d.advice.contains("alive and reachable"));
    }

    #[test]
    fn dead_peer_needs_enough_polls_to_be_flagged() {
        // The netmod was barely polled: too early to call it a partition
        // (the poller may simply not have run yet).
        let counters = CounterSnapshot {
            transport_dead_peers: 1,
            transport_reconnects: 20,
            hook_polls: 3,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn live_peers_with_reconnects_are_healthy() {
        // Reconnects happened but every peer came back: transient churn,
        // not a partition.
        let counters = CounterSnapshot {
            transport_dead_peers: 0,
            transport_reconnects: 7,
            hook_polls: 10_000,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_unrevoked_rank_failure_as_critical() {
        let counters = CounterSnapshot {
            ranks_failed: 1,
            detector_epochs: 1,
            transport_dead_peers: 1,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("no communicator was revoked"));
        assert!(d.advice.contains("Comm::revoke"));
        assert!(d.advice.contains("Comm::shrink"));
    }

    #[test]
    fn revoked_rank_failure_is_a_warning() {
        let counters = CounterSnapshot {
            ranks_failed: 1,
            comms_revoked: 1,
            agree_rounds: 2,
            detector_epochs: 1,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 0);
        assert_eq!(report.diagnoses.len(), 1);
        let d = &report.diagnoses[0];
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.title.contains("rank failure handled"));
        assert!(d.detail.contains("2 agree op(s)"));
    }

    #[test]
    fn no_rank_failures_is_healthy() {
        let counters = CounterSnapshot {
            detector_epochs: 5, // epochs without failures are fine
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_stranded_continuation() {
        let counters = CounterSnapshot {
            continuations_attached: 3,
            continuations_ready: 3,
            continuations_fired: 1,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d
            .title
            .contains("2 completed request(s) with an unfired continuation"));
        assert!(d.detail.contains("3 continuation(s) attached"));
        assert!(d.advice.contains("MPIX_Stream_progress"));
    }

    #[test]
    fn fired_continuations_are_healthy() {
        // Attached-but-not-yet-ready is fine (operations still pending);
        // ready == fired is fine (all callbacks ran).
        let counters = CounterSnapshot {
            continuations_attached: 5,
            continuations_ready: 2,
            continuations_fired: 2,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_shm_ring_full_stall() {
        let counters = CounterSnapshot {
            shm_ring_full: 5000,
            bytes_copied: 1 << 20,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("shm ring full"));
        assert!(d.title.contains("no consumer progress"));
        assert!(d.detail.contains("5000 ring-full stall(s)"));
        assert!(d.advice.contains("drained"));
    }

    #[test]
    fn transient_shm_backpressure_is_healthy() {
        // A handful of ring-full events during a burst is normal
        // backpressure, not a stalled consumer.
        let counters = CounterSnapshot {
            shm_ring_full: 40,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_flow_frontier_stall_naming_holder_and_timestamp() {
        let counters = CounterSnapshot {
            flow_stalled_holder: 3, // world rank 2, encoded +1
            flow_stalled_at: 4000,
            flow_frontier_updates: 17,
            ranks_failed: 1,
            comms_revoked: 1, // rank-failure finding downgraded to a warning
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = report.criticals().next().unwrap();
        assert!(d.title.contains("flow frontier stalled at t=4000"), "{d:?}");
        assert!(d.title.contains("dead/idle rank 2"), "{d:?}");
        assert!(d.detail.contains("timestamp 4000"));
        assert!(d.detail.contains("world rank 2"));
        assert!(d.advice.contains("shrink"));
        assert!(d.advice.contains("replay"));
    }

    #[test]
    fn flow_stall_with_all_ranks_alive_names_the_idle_holder() {
        let counters = CounterSnapshot {
            flow_stalled_holder: 1, // world rank 0
            flow_stalled_at: 12,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("idle rank 0"));
        assert!(!d.title.contains("dead/idle"));
        assert!(d.advice.contains("advance_to"));
    }

    #[test]
    fn advancing_flow_frontier_is_healthy() {
        let counters = CounterSnapshot {
            flow_records_sent: 1_000_000,
            flow_records_recv: 1_000_000,
            flow_frontier_updates: 640,
            flow_capability_gossip_bytes: 32_768,
            flow_stalled_holder: 0,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_partitioned_round_stalled_on_unready_partitions() {
        let counters = CounterSnapshot {
            persist_part_stalled: 3,
            persist_part_stalled_ms: 2500,
            partitions_ready: 5,
            persist_refires: 12,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("partitioned send stalled"), "{d:?}");
        assert!(d.title.contains("3 partition(s)"), "{d:?}");
        assert!(d.detail.contains("2500 ms"));
        assert!(d.advice.contains("pready"));
    }

    #[test]
    fn young_partitioned_round_is_healthy() {
        // Unready partitions inside the grace window are just a round
        // whose producers have not caught up yet.
        let counters = CounterSnapshot {
            persist_part_stalled: 8,
            persist_part_stalled_ms: 200,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn completed_partitioned_rounds_are_healthy() {
        // Gauges cleared (no active stalled round): heavy persistent
        // traffic alone is not a pathology.
        let counters = CounterSnapshot {
            persist_refires: 1_000_000,
            partitions_ready: 4_000_000,
            persist_part_stalled: 0,
            persist_part_stalled_ms: 60_000,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn flags_lost_reactor_wakeup() {
        let counters = CounterSnapshot {
            reactor_wakeups: 12,
            reactor_ready_pending: 2,
            wire_syscalls: 400,
            hook_polls: 500,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert_eq!(report.criticals().count(), 1);
        let d = &report.diagnoses[0];
        assert!(d.title.contains("reactor wakeup lost"), "{d:?}");
        assert!(d.title.contains("2 peer(s) readable but never swept"));
        assert!(d.detail.contains("12 wakeup(s)"));
        assert!(d.advice.contains("WouldBlock"));
    }

    #[test]
    fn freshly_published_readiness_is_not_a_lost_wakeup() {
        // Bits were just raised and the engine has barely polled: the
        // very next sweep will consume them.
        let counters = CounterSnapshot {
            reactor_wakeups: 1,
            reactor_ready_pending: 1,
            hook_polls: 3,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn consumed_reactor_readiness_is_healthy() {
        let counters = CounterSnapshot {
            reactor_wakeups: 10_000,
            reactor_ready_pending: 0,
            wire_syscalls: 50_000,
            wire_syscalls_saved: 900_000,
            hook_polls: 1_000_000,
            ..Default::default()
        };
        let report = diagnose_with_counters(&[], Some(&counters), &DoctorConfig::default());
        assert!(report.healthy(), "{report}");
    }

    #[test]
    fn dropped_events_are_reported() {
        let mut s = snap(vec![]);
        s.dropped = 42;
        let report = diagnose(&[s], &DoctorConfig::default());
        assert_eq!(report.events_dropped, 42);
        assert!(report.to_string().contains("42 dropped"));
    }
}

//! Always-on progress counters.
//!
//! Unlike event tracing (feature-gated, ring-buffered), counters are a
//! handful of relaxed atomics that are always compiled in: cheap enough
//! for production, and the raw material the [`crate::doctor`] and bench
//! reports read. Hot paths batch their updates — the progress engine
//! tallies a sweep locally and flushes once per sweep via
//! [`Counters::record_sweep`], so the per-poll cost stays at plain
//! integer arithmetic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::event::PathKind;

/// A set of progress counters. One process-wide instance lives behind
/// [`global`]; subsystems that need isolated counts (e.g. one per
/// simulated fabric) can own their own instance.
#[derive(Debug, Default)]
pub struct Counters {
    /// Subsystem hook polls issued.
    pub hook_polls: AtomicU64,
    /// Hook polls that reported progress.
    pub hook_progress: AtomicU64,
    /// Hook polls that reported no progress.
    pub hook_no_progress: AtomicU64,
    /// Longest run of consecutive no-progress hook polls seen so far.
    pub max_no_progress_streak: AtomicU64,
    /// Collated progress sweeps executed.
    pub sweeps: AtomicU64,
    /// User async tasks polled.
    pub task_polls: AtomicU64,
    /// User async tasks completed.
    pub task_completions: AtomicU64,
    /// Requests completed.
    pub request_completions: AtomicU64,
    /// Packets sent over the network path.
    pub msgs_net: AtomicU64,
    /// Packets sent over the shared-memory path.
    pub msgs_shm: AtomicU64,
    /// Wire bytes sent over the network path.
    pub bytes_net: AtomicU64,
    /// Wire bytes sent over the shared-memory path.
    pub bytes_shm: AtomicU64,
    /// Messages that completed under the eager (or buffered) protocol.
    pub eager_msgs: AtomicU64,
    /// Rendezvous handshakes started (RTS sent).
    pub rndv_started: AtomicU64,
    /// Rendezvous handshakes granted (CTS received by the sender).
    pub rndv_granted: AtomicU64,
    /// Rendezvous transfers fully completed on the sender side.
    pub rndv_completed: AtomicU64,
    /// Messages queued on an unexpected-message queue.
    pub unexpected_msgs: AtomicU64,
    /// `Stream::progress`/`try_progress` callers that failed the engine
    /// `try_lock` (the lock was held by another poller).
    pub engine_lock_contended: AtomicU64,
    /// Contended progress callers whose sweep was performed by the lock
    /// holder on their behalf (flat-combining handoffs).
    pub combining_handoffs: AtomicU64,
    /// Tag matches satisfied from an exact-`(src, tag)` bucket.
    pub match_bucket_hits: AtomicU64,
    /// Tag matches satisfied from the wildcard side-queue.
    pub match_wildcard_hits: AtomicU64,
    /// Bytes handed to a wire transport for transmission (framed bytes
    /// written toward a socket, including frame headers).
    pub wire_bytes_tx: AtomicU64,
    /// Bytes read off a wire transport's sockets (including frame
    /// headers).
    pub wire_bytes_rx: AtomicU64,
    /// Payload bytes memcpy'd on the message datapath (TX frame
    /// staging, RX socket reassembly, completion copy-out). The wire's
    /// own injection write does not count — a socket `write` and a
    /// direct encode into a shared-memory ring are the transfer itself,
    /// not datapath overhead. A zero-copy path keeps this ~flat as
    /// payload sizes grow.
    pub bytes_copied: AtomicU64,
    /// Times a shared-memory ring was full at send, diverting the frame
    /// to the producer's overflow queue. Sustained growth with no RX
    /// progress means the consumer is not draining its rings.
    pub shm_ring_full: AtomicU64,
    /// Wire-transport connection attempts after the first (retries after
    /// a failed dial or a lost connection).
    pub transport_reconnects: AtomicU64,
    /// Peers a wire transport has given up on (reconnect budget
    /// exhausted). Non-zero means part of the world is unreachable.
    pub transport_dead_peers: AtomicU64,
    /// Wall-clock seconds the bootstrap rendezvous + mesh establishment
    /// took, stored as `f64::to_bits` (0 when no bootstrap ran).
    pub bootstrap_secs: AtomicU64,
    /// Ranks the failure detector has declared failed.
    pub ranks_failed: AtomicU64,
    /// Communicators revoked (locally observed or propagated).
    pub comms_revoked: AtomicU64,
    /// Fault-tolerant agreement operations completed.
    pub agree_rounds: AtomicU64,
    /// Failure-detector epoch bumps (each change of the failure set).
    pub detector_epochs: AtomicU64,
    /// Deterministic-simulation schedules fully explored (one per seed
    /// run to completion by the `mpfa-dst` explore runner).
    pub dst_schedules_explored: AtomicU64,
    /// Continuations attached to requests (`Request::on_complete`).
    pub continuations_attached: AtomicU64,
    /// Continuations handed to a stream's deferred-execution list (the
    /// request completed; the callback is queued awaiting a drain).
    pub continuations_ready: AtomicU64,
    /// Continuations actually executed (drained from the deferred list or
    /// run inline when the bound stream was gone).
    pub continuations_fired: AtomicU64,
    /// Task wakers invoked by request completion (the async/await bridge).
    pub wakers_woken: AtomicU64,
    /// Timestamped flow records sent (mpfa-flow, loopback included).
    pub flow_records_sent: AtomicU64,
    /// Timestamped flow records received into a flow queue.
    pub flow_records_recv: AtomicU64,
    /// Times a flow frontier advanced (any flow, any rank in-process).
    pub flow_frontier_updates: AtomicU64,
    /// Bytes of capability-delta gossip sent on the flow control context.
    pub flow_capability_gossip_bytes: AtomicU64,
    /// When a flow frontier is stalled: the world rank holding the
    /// oldest capability, **plus one** (0 = no stall). Re-asserted every
    /// poll while the stall persists; cleared when the frontier moves.
    pub flow_stalled_holder: AtomicU64,
    /// When a flow frontier is stalled: the timestamp the frontier is
    /// stuck at. Meaningless unless `flow_stalled_holder` is non-zero.
    pub flow_stalled_at: AtomicU64,
    /// Persistent-request re-fires: `start()` calls that went down the
    /// slot-addressed fast path (plain and partitioned), skipping tag
    /// matching entirely.
    pub persist_refires: AtomicU64,
    /// Partitions marked ready (`pready` / `pready_range`) on active
    /// partitioned send rounds.
    pub partitions_ready: AtomicU64,
    /// Unready-partition count of the oldest stalled partitioned send
    /// round (0 = no stall). Re-asserted by the progress sweep while
    /// the stall persists; cleared when every round drains.
    pub persist_part_stalled: AtomicU64,
    /// How long the oldest stalled partitioned round has been waiting
    /// for `pready`, in milliseconds. Meaningless unless
    /// `persist_part_stalled` is non-zero.
    pub persist_part_stalled_ms: AtomicU64,
    /// Socket-touching syscalls issued by a wire transport (read,
    /// write, accept, connect, epoll_ctl). The quantity the readiness
    /// reactor exists to keep flat in ready peers.
    pub wire_syscalls: AtomicU64,
    /// Speculative per-peer socket polls a wire pump pass *skipped*
    /// because the readiness reactor knew the peer had nothing: live
    /// connected peers minus peers actually driven, summed per pass.
    /// Zero under the legacy full-scan pump.
    pub wire_syscalls_saved: AtomicU64,
    /// Times the reactor thread returned from `epoll_wait` with at
    /// least one readiness event to publish.
    pub reactor_wakeups: AtomicU64,
    /// Readiness bits currently published by the reactor but not yet
    /// consumed by a pump pass (a gauge, not a total). A lasting
    /// non-zero reading means a peer is readable but nobody sweeps.
    pub reactor_ready_pending: AtomicU64,
}

/// Plain-integer copy of a [`Counters`] at a point in time.
///
/// (`PartialEq` only — `bootstrap_secs` is an `f64`.)
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterSnapshot {
    /// Subsystem hook polls issued.
    pub hook_polls: u64,
    /// Hook polls that reported progress.
    pub hook_progress: u64,
    /// Hook polls that reported no progress.
    pub hook_no_progress: u64,
    /// Longest run of consecutive no-progress hook polls.
    pub max_no_progress_streak: u64,
    /// Collated progress sweeps executed.
    pub sweeps: u64,
    /// User async tasks polled.
    pub task_polls: u64,
    /// User async tasks completed.
    pub task_completions: u64,
    /// Requests completed.
    pub request_completions: u64,
    /// Packets sent over the network path.
    pub msgs_net: u64,
    /// Packets sent over the shared-memory path.
    pub msgs_shm: u64,
    /// Wire bytes sent over the network path.
    pub bytes_net: u64,
    /// Wire bytes sent over the shared-memory path.
    pub bytes_shm: u64,
    /// Messages that completed under the eager (or buffered) protocol.
    pub eager_msgs: u64,
    /// Rendezvous handshakes started.
    pub rndv_started: u64,
    /// Rendezvous handshakes granted.
    pub rndv_granted: u64,
    /// Rendezvous transfers completed.
    pub rndv_completed: u64,
    /// Messages queued unexpected.
    pub unexpected_msgs: u64,
    /// Progress callers that failed the engine `try_lock`.
    pub engine_lock_contended: u64,
    /// Contended callers served by the lock holder (flat-combining).
    pub combining_handoffs: u64,
    /// Tag matches satisfied from an exact-`(src, tag)` bucket.
    pub match_bucket_hits: u64,
    /// Tag matches satisfied from the wildcard side-queue.
    pub match_wildcard_hits: u64,
    /// Bytes handed to a wire transport for transmission.
    pub wire_bytes_tx: u64,
    /// Bytes read off a wire transport's sockets.
    pub wire_bytes_rx: u64,
    /// Payload bytes memcpy'd on the message datapath.
    pub bytes_copied: u64,
    /// Sends diverted to overflow because a shm ring was full.
    pub shm_ring_full: u64,
    /// Wire-transport reconnect attempts.
    pub transport_reconnects: u64,
    /// Peers a wire transport has given up on.
    pub transport_dead_peers: u64,
    /// Seconds the bootstrap rendezvous took (0 when no bootstrap ran).
    pub bootstrap_secs: f64,
    /// Ranks the failure detector has declared failed.
    pub ranks_failed: u64,
    /// Communicators revoked.
    pub comms_revoked: u64,
    /// Fault-tolerant agreement operations completed.
    pub agree_rounds: u64,
    /// Failure-detector epoch bumps.
    pub detector_epochs: u64,
    /// Deterministic-simulation schedules fully explored.
    pub dst_schedules_explored: u64,
    /// Continuations attached to requests.
    pub continuations_attached: u64,
    /// Continuations enqueued for deferred execution.
    pub continuations_ready: u64,
    /// Continuations executed.
    pub continuations_fired: u64,
    /// Task wakers invoked by request completion.
    pub wakers_woken: u64,
    /// Timestamped flow records sent.
    pub flow_records_sent: u64,
    /// Timestamped flow records received.
    pub flow_records_recv: u64,
    /// Flow frontier advances.
    pub flow_frontier_updates: u64,
    /// Capability-delta gossip bytes sent.
    pub flow_capability_gossip_bytes: u64,
    /// Stalled-frontier capability holder world rank + 1 (0 = no stall).
    pub flow_stalled_holder: u64,
    /// Timestamp a stalled frontier is stuck at.
    pub flow_stalled_at: u64,
    /// Persistent-request re-fires down the slot-addressed fast path.
    pub persist_refires: u64,
    /// Partitions marked ready on active partitioned send rounds.
    pub partitions_ready: u64,
    /// Unready partitions of the oldest stalled partitioned round
    /// (0 = no stall).
    pub persist_part_stalled: u64,
    /// Milliseconds the oldest stalled partitioned round has waited.
    pub persist_part_stalled_ms: u64,
    /// Socket-touching syscalls issued by a wire transport.
    pub wire_syscalls: u64,
    /// Speculative per-peer socket polls skipped thanks to the reactor.
    pub wire_syscalls_saved: u64,
    /// `epoll_wait` returns that carried at least one readiness event.
    pub reactor_wakeups: u64,
    /// Published-but-unconsumed readiness bits (gauge).
    pub reactor_ready_pending: u64,
}

impl Counters {
    /// A fresh, zeroed counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Flush one progress sweep's locally-tallied totals. Called once per
    /// sweep by the engine so the per-poll hot path never touches an
    /// atomic.
    pub fn record_sweep(
        &self,
        hook_polls: u64,
        hook_progress: u64,
        task_polls: u64,
        task_completions: u64,
    ) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        if hook_polls > 0 {
            self.hook_polls.fetch_add(hook_polls, Ordering::Relaxed);
        }
        if hook_progress > 0 {
            self.hook_progress
                .fetch_add(hook_progress, Ordering::Relaxed);
        }
        let no_prog = hook_polls.saturating_sub(hook_progress);
        if no_prog > 0 {
            self.hook_no_progress.fetch_add(no_prog, Ordering::Relaxed);
        }
        if task_polls > 0 {
            self.task_polls.fetch_add(task_polls, Ordering::Relaxed);
        }
        if task_completions > 0 {
            self.task_completions
                .fetch_add(task_completions, Ordering::Relaxed);
        }
    }

    /// Raise the recorded maximum no-progress streak to `streak` if it is
    /// a new high-water mark.
    pub fn observe_no_progress_streak(&self, streak: u64) {
        self.max_no_progress_streak
            .fetch_max(streak, Ordering::Relaxed);
    }

    /// Count one packet of `bytes` sent on `path`.
    pub fn record_packet(&self, path: PathKind, bytes: u64) {
        match path {
            PathKind::Net => {
                self.msgs_net.fetch_add(1, Ordering::Relaxed);
                self.bytes_net.fetch_add(bytes, Ordering::Relaxed);
            }
            PathKind::Shmem => {
                self.msgs_shm.fetch_add(1, Ordering::Relaxed);
                self.bytes_shm.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Count `bytes` written toward a wire-transport socket.
    pub fn record_wire_tx(&self, bytes: u64) {
        self.wire_bytes_tx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count `bytes` read off a wire-transport socket.
    pub fn record_wire_rx(&self, bytes: u64) {
        self.wire_bytes_rx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count `bytes` of payload memcpy'd on the message datapath.
    /// Called at the site of the copy, never speculatively.
    pub fn record_bytes_copied(&self, bytes: u64) {
        self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record how long the bootstrap rendezvous took (overwrites; there
    /// is one bootstrap per process).
    pub fn record_bootstrap_secs(&self, secs: f64) {
        self.bootstrap_secs.store(secs.to_bits(), Ordering::Relaxed);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            hook_polls: self.hook_polls.load(Ordering::Relaxed),
            hook_progress: self.hook_progress.load(Ordering::Relaxed),
            hook_no_progress: self.hook_no_progress.load(Ordering::Relaxed),
            max_no_progress_streak: self.max_no_progress_streak.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            task_polls: self.task_polls.load(Ordering::Relaxed),
            task_completions: self.task_completions.load(Ordering::Relaxed),
            request_completions: self.request_completions.load(Ordering::Relaxed),
            msgs_net: self.msgs_net.load(Ordering::Relaxed),
            msgs_shm: self.msgs_shm.load(Ordering::Relaxed),
            bytes_net: self.bytes_net.load(Ordering::Relaxed),
            bytes_shm: self.bytes_shm.load(Ordering::Relaxed),
            eager_msgs: self.eager_msgs.load(Ordering::Relaxed),
            rndv_started: self.rndv_started.load(Ordering::Relaxed),
            rndv_granted: self.rndv_granted.load(Ordering::Relaxed),
            rndv_completed: self.rndv_completed.load(Ordering::Relaxed),
            unexpected_msgs: self.unexpected_msgs.load(Ordering::Relaxed),
            engine_lock_contended: self.engine_lock_contended.load(Ordering::Relaxed),
            combining_handoffs: self.combining_handoffs.load(Ordering::Relaxed),
            match_bucket_hits: self.match_bucket_hits.load(Ordering::Relaxed),
            match_wildcard_hits: self.match_wildcard_hits.load(Ordering::Relaxed),
            wire_bytes_tx: self.wire_bytes_tx.load(Ordering::Relaxed),
            wire_bytes_rx: self.wire_bytes_rx.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            shm_ring_full: self.shm_ring_full.load(Ordering::Relaxed),
            transport_reconnects: self.transport_reconnects.load(Ordering::Relaxed),
            transport_dead_peers: self.transport_dead_peers.load(Ordering::Relaxed),
            bootstrap_secs: f64::from_bits(self.bootstrap_secs.load(Ordering::Relaxed)),
            ranks_failed: self.ranks_failed.load(Ordering::Relaxed),
            comms_revoked: self.comms_revoked.load(Ordering::Relaxed),
            agree_rounds: self.agree_rounds.load(Ordering::Relaxed),
            detector_epochs: self.detector_epochs.load(Ordering::Relaxed),
            dst_schedules_explored: self.dst_schedules_explored.load(Ordering::Relaxed),
            continuations_attached: self.continuations_attached.load(Ordering::Relaxed),
            continuations_ready: self.continuations_ready.load(Ordering::Relaxed),
            continuations_fired: self.continuations_fired.load(Ordering::Relaxed),
            wakers_woken: self.wakers_woken.load(Ordering::Relaxed),
            flow_records_sent: self.flow_records_sent.load(Ordering::Relaxed),
            flow_records_recv: self.flow_records_recv.load(Ordering::Relaxed),
            flow_frontier_updates: self.flow_frontier_updates.load(Ordering::Relaxed),
            flow_capability_gossip_bytes: self.flow_capability_gossip_bytes.load(Ordering::Relaxed),
            flow_stalled_holder: self.flow_stalled_holder.load(Ordering::Relaxed),
            flow_stalled_at: self.flow_stalled_at.load(Ordering::Relaxed),
            persist_refires: self.persist_refires.load(Ordering::Relaxed),
            partitions_ready: self.partitions_ready.load(Ordering::Relaxed),
            persist_part_stalled: self.persist_part_stalled.load(Ordering::Relaxed),
            persist_part_stalled_ms: self.persist_part_stalled_ms.load(Ordering::Relaxed),
            wire_syscalls: self.wire_syscalls.load(Ordering::Relaxed),
            wire_syscalls_saved: self.wire_syscalls_saved.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_ready_pending: self.reactor_ready_pending.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.hook_polls.store(0, Ordering::Relaxed);
        self.hook_progress.store(0, Ordering::Relaxed);
        self.hook_no_progress.store(0, Ordering::Relaxed);
        self.max_no_progress_streak.store(0, Ordering::Relaxed);
        self.sweeps.store(0, Ordering::Relaxed);
        self.task_polls.store(0, Ordering::Relaxed);
        self.task_completions.store(0, Ordering::Relaxed);
        self.request_completions.store(0, Ordering::Relaxed);
        self.msgs_net.store(0, Ordering::Relaxed);
        self.msgs_shm.store(0, Ordering::Relaxed);
        self.bytes_net.store(0, Ordering::Relaxed);
        self.bytes_shm.store(0, Ordering::Relaxed);
        self.eager_msgs.store(0, Ordering::Relaxed);
        self.rndv_started.store(0, Ordering::Relaxed);
        self.rndv_granted.store(0, Ordering::Relaxed);
        self.rndv_completed.store(0, Ordering::Relaxed);
        self.unexpected_msgs.store(0, Ordering::Relaxed);
        self.engine_lock_contended.store(0, Ordering::Relaxed);
        self.combining_handoffs.store(0, Ordering::Relaxed);
        self.match_bucket_hits.store(0, Ordering::Relaxed);
        self.match_wildcard_hits.store(0, Ordering::Relaxed);
        self.wire_bytes_tx.store(0, Ordering::Relaxed);
        self.wire_bytes_rx.store(0, Ordering::Relaxed);
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.shm_ring_full.store(0, Ordering::Relaxed);
        self.transport_reconnects.store(0, Ordering::Relaxed);
        self.transport_dead_peers.store(0, Ordering::Relaxed);
        self.bootstrap_secs.store(0, Ordering::Relaxed);
        self.ranks_failed.store(0, Ordering::Relaxed);
        self.comms_revoked.store(0, Ordering::Relaxed);
        self.agree_rounds.store(0, Ordering::Relaxed);
        self.detector_epochs.store(0, Ordering::Relaxed);
        self.dst_schedules_explored.store(0, Ordering::Relaxed);
        self.continuations_attached.store(0, Ordering::Relaxed);
        self.continuations_ready.store(0, Ordering::Relaxed);
        self.continuations_fired.store(0, Ordering::Relaxed);
        self.wakers_woken.store(0, Ordering::Relaxed);
        self.flow_records_sent.store(0, Ordering::Relaxed);
        self.flow_records_recv.store(0, Ordering::Relaxed);
        self.flow_frontier_updates.store(0, Ordering::Relaxed);
        self.flow_capability_gossip_bytes
            .store(0, Ordering::Relaxed);
        self.flow_stalled_holder.store(0, Ordering::Relaxed);
        self.flow_stalled_at.store(0, Ordering::Relaxed);
        self.persist_refires.store(0, Ordering::Relaxed);
        self.partitions_ready.store(0, Ordering::Relaxed);
        self.persist_part_stalled.store(0, Ordering::Relaxed);
        self.persist_part_stalled_ms.store(0, Ordering::Relaxed);
        self.wire_syscalls.store(0, Ordering::Relaxed);
        self.wire_syscalls_saved.store(0, Ordering::Relaxed);
        self.reactor_wakeups.store(0, Ordering::Relaxed);
        self.reactor_ready_pending.store(0, Ordering::Relaxed);
    }
}

impl CounterSnapshot {
    /// Total packets across both paths.
    pub fn msgs_total(&self) -> u64 {
        self.msgs_net + self.msgs_shm
    }

    /// Total wire bytes across both paths.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_net + self.bytes_shm
    }
}

impl std::fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "progress: {} sweeps, {} hook polls ({} progress / {} idle, max streak {})",
            self.sweeps,
            self.hook_polls,
            self.hook_progress,
            self.hook_no_progress,
            self.max_no_progress_streak
        )?;
        writeln!(
            f,
            "tasks:    {} polls, {} completions; {} requests completed",
            self.task_polls, self.task_completions, self.request_completions
        )?;
        writeln!(
            f,
            "fabric:   net {} msgs / {} B, shm {} msgs / {} B",
            self.msgs_net, self.bytes_net, self.msgs_shm, self.bytes_shm
        )?;
        writeln!(
            f,
            "protocol: {} eager, rndv {} started / {} granted / {} done, {} unexpected",
            self.eager_msgs,
            self.rndv_started,
            self.rndv_granted,
            self.rndv_completed,
            self.unexpected_msgs
        )?;
        writeln!(
            f,
            "locking:  {} contended progress calls, {} combining handoffs; \
             matches {} bucket / {} wildcard",
            self.engine_lock_contended,
            self.combining_handoffs,
            self.match_bucket_hits,
            self.match_wildcard_hits
        )?;
        writeln!(
            f,
            "wire:     {} B tx / {} B rx, {} reconnects, {} dead peers, \
             bootstrap {:.3}s",
            self.wire_bytes_tx,
            self.wire_bytes_rx,
            self.transport_reconnects,
            self.transport_dead_peers,
            self.bootstrap_secs
        )?;
        writeln!(
            f,
            "reactor:  {} syscalls, {} speculative polls saved, {} wakeups, \
             {} ready-unswept",
            self.wire_syscalls,
            self.wire_syscalls_saved,
            self.reactor_wakeups,
            self.reactor_ready_pending
        )?;
        writeln!(
            f,
            "copies:   {} B memcpy'd on the datapath, {} shm ring-full stalls",
            self.bytes_copied, self.shm_ring_full
        )?;
        writeln!(
            f,
            "resil:    {} ranks failed, {} comms revoked, {} agree ops, \
             {} detector epochs",
            self.ranks_failed, self.comms_revoked, self.agree_rounds, self.detector_epochs
        )?;
        writeln!(
            f,
            "async:    continuations {} attached / {} ready / {} fired, \
             {} wakers woken",
            self.continuations_attached,
            self.continuations_ready,
            self.continuations_fired,
            self.wakers_woken
        )?;
        writeln!(
            f,
            "flow:     {} records sent / {} recv, {} frontier updates, \
             {} B gossip",
            self.flow_records_sent,
            self.flow_records_recv,
            self.flow_frontier_updates,
            self.flow_capability_gossip_bytes
        )?;
        writeln!(
            f,
            "persist:  {} re-fires, {} partitions ready",
            self.persist_refires, self.partitions_ready
        )?;
        write!(
            f,
            "dst:      {} schedules explored",
            self.dst_schedules_explored
        )
    }
}

/// The process-wide counter set.
pub fn global() -> &'static Counters {
    static GLOBAL: OnceLock<Counters> = OnceLock::new();
    GLOBAL.get_or_init(Counters::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sweep_accumulates_and_splits_idle_polls() {
        let c = Counters::new();
        c.record_sweep(5, 2, 10, 3);
        c.record_sweep(4, 4, 0, 0);
        let s = c.snapshot();
        assert_eq!(s.sweeps, 2);
        assert_eq!(s.hook_polls, 9);
        assert_eq!(s.hook_progress, 6);
        assert_eq!(s.hook_no_progress, 3);
        assert_eq!(s.task_polls, 10);
        assert_eq!(s.task_completions, 3);
    }

    #[test]
    fn streak_is_a_high_water_mark() {
        let c = Counters::new();
        c.observe_no_progress_streak(10);
        c.observe_no_progress_streak(3);
        c.observe_no_progress_streak(17);
        assert_eq!(c.snapshot().max_no_progress_streak, 17);
    }

    #[test]
    fn packets_split_by_path() {
        let c = Counters::new();
        c.record_packet(PathKind::Net, 100);
        c.record_packet(PathKind::Net, 50);
        c.record_packet(PathKind::Shmem, 8);
        let s = c.snapshot();
        assert_eq!(s.msgs_net, 2);
        assert_eq!(s.bytes_net, 150);
        assert_eq!(s.msgs_shm, 1);
        assert_eq!(s.bytes_shm, 8);
        assert_eq!(s.msgs_total(), 3);
        assert_eq!(s.bytes_total(), 158);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = Counters::new();
        c.record_sweep(5, 2, 10, 3);
        c.record_packet(PathKind::Net, 100);
        c.observe_no_progress_streak(9);
        c.rndv_started.fetch_add(2, Ordering::Relaxed);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn wire_counters_accumulate_and_reset() {
        let c = Counters::new();
        c.record_wire_tx(100);
        c.record_wire_tx(28);
        c.record_wire_rx(128);
        c.record_bytes_copied(64);
        c.record_bytes_copied(36);
        c.shm_ring_full.fetch_add(2, Ordering::Relaxed);
        c.transport_reconnects.fetch_add(3, Ordering::Relaxed);
        c.transport_dead_peers.fetch_add(1, Ordering::Relaxed);
        c.record_bootstrap_secs(0.25);
        let s = c.snapshot();
        assert_eq!(s.wire_bytes_tx, 128);
        assert_eq!(s.wire_bytes_rx, 128);
        assert_eq!(s.bytes_copied, 100);
        assert_eq!(s.shm_ring_full, 2);
        assert_eq!(s.transport_reconnects, 3);
        assert_eq!(s.transport_dead_peers, 1);
        assert_eq!(s.bootstrap_secs, 0.25);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn resilience_counters_accumulate_and_reset() {
        let c = Counters::new();
        c.ranks_failed.fetch_add(1, Ordering::Relaxed);
        c.comms_revoked.fetch_add(2, Ordering::Relaxed);
        c.agree_rounds.fetch_add(3, Ordering::Relaxed);
        c.detector_epochs.fetch_add(4, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.ranks_failed, 1);
        assert_eq!(s.comms_revoked, 2);
        assert_eq!(s.agree_rounds, 3);
        assert_eq!(s.detector_epochs, 4);
        assert!(s.to_string().contains("ranks failed"));
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn flow_counters_accumulate_and_reset() {
        let c = Counters::new();
        c.flow_records_sent.fetch_add(10, Ordering::Relaxed);
        c.flow_records_recv.fetch_add(9, Ordering::Relaxed);
        c.flow_frontier_updates.fetch_add(4, Ordering::Relaxed);
        c.flow_capability_gossip_bytes
            .fetch_add(96, Ordering::Relaxed);
        c.flow_stalled_holder.store(3, Ordering::Relaxed);
        c.flow_stalled_at.store(41, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.flow_records_sent, 10);
        assert_eq!(s.flow_records_recv, 9);
        assert_eq!(s.flow_frontier_updates, 4);
        assert_eq!(s.flow_capability_gossip_bytes, 96);
        assert_eq!(s.flow_stalled_holder, 3);
        assert_eq!(s.flow_stalled_at, 41);
        assert!(s.to_string().contains("frontier updates"));
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn persist_counters_snapshot_display_and_reset() {
        let c = Counters::new();
        c.persist_refires.fetch_add(1000, Ordering::Relaxed);
        c.partitions_ready.fetch_add(64, Ordering::Relaxed);
        c.persist_part_stalled.store(3, Ordering::Relaxed);
        c.persist_part_stalled_ms.store(750, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.persist_refires, 1000);
        assert_eq!(s.partitions_ready, 64);
        assert_eq!(s.persist_part_stalled, 3);
        assert_eq!(s.persist_part_stalled_ms, 750);
        assert!(s.to_string().contains("re-fires"));
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn reactor_counters_accumulate_and_reset() {
        let c = Counters::new();
        c.wire_syscalls.fetch_add(128, Ordering::Relaxed);
        c.wire_syscalls_saved.fetch_add(63, Ordering::Relaxed);
        c.reactor_wakeups.fetch_add(9, Ordering::Relaxed);
        c.reactor_ready_pending.store(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.wire_syscalls, 128);
        assert_eq!(s.wire_syscalls_saved, 63);
        assert_eq!(s.reactor_wakeups, 9);
        assert_eq!(s.reactor_ready_pending, 2);
        assert!(s.to_string().contains("speculative polls saved"));
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn display_mentions_key_figures() {
        let c = Counters::new();
        c.record_sweep(3, 1, 0, 0);
        c.record_packet(PathKind::Shmem, 64);
        let text = c.snapshot().to_string();
        assert!(text.contains("hook polls"));
        assert!(text.contains("64 B"));
    }
}

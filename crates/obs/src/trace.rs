//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Converts ring snapshots into the Trace Event Format JSON that
//! `chrome://tracing`, `ui.perfetto.dev`, and Speedscope all open:
//! duration events (`"ph":"X"`) for hook polls and progress sweeps,
//! instants (`"ph":"i"`) for everything else, and metadata (`"ph":"M"`)
//! naming each recording thread. JSON is emitted by hand — the exporter
//! runs off the hot path and the format is tiny, so no serializer
//! dependency is warranted.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::event::{Event, EventKind, PollVerdict, TaskVerdict};
use crate::ring::ThreadSnapshot;

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn us(t_seconds: f64) -> f64 {
    t_seconds * 1e6
}

struct TraceEvent {
    name: String,
    cat: &'static str,
    ph: char,
    ts: f64,
    dur: Option<f64>,
    args: Vec<(&'static str, String)>,
}

fn class_name(class: u8) -> &'static str {
    match class {
        0 => "dtengine",
        1 => "collsched",
        2 => "shmem",
        3 => "netmod",
        _ => "other",
    }
}

fn convert(ev: &Event) -> TraceEvent {
    let ts = us(ev.t);
    match ev.kind {
        EventKind::HookRegistered {
            stream,
            class,
            name,
        } => TraceEvent {
            name: format!("register {}", name.resolve()),
            cat: "engine",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("stream", stream.to_string()),
                ("class", format!("\"{}\"", class_name(class))),
            ],
        },
        EventKind::HookPoll {
            stream,
            class,
            name,
            verdict,
            dur,
        } => TraceEvent {
            name: format!("poll {}", name.resolve()),
            cat: "engine",
            ph: 'X',
            ts,
            dur: Some(us(dur)),
            args: vec![
                ("stream", stream.to_string()),
                ("class", format!("\"{}\"", class_name(class))),
                (
                    "verdict",
                    match verdict {
                        PollVerdict::Progress => "\"progress\"".to_string(),
                        PollVerdict::NoProgress => "\"no-progress\"".to_string(),
                    },
                ),
            ],
        },
        EventKind::StreamProgress {
            stream,
            dur,
            hook_polls,
            tasks_polled,
            tasks_completed,
            made_progress,
        } => TraceEvent {
            name: format!("progress stream {stream}"),
            cat: "engine",
            ph: 'X',
            ts,
            dur: Some(us(dur)),
            args: vec![
                ("hook_polls", hook_polls.to_string()),
                ("tasks_polled", tasks_polled.to_string()),
                ("tasks_completed", tasks_completed.to_string()),
                ("made_progress", made_progress.to_string()),
            ],
        },
        EventKind::TaskStart { stream, task } => TraceEvent {
            name: format!("task {task} start"),
            cat: "task",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("stream", stream.to_string())],
        },
        EventKind::TaskPoll {
            stream,
            task,
            verdict,
        } => TraceEvent {
            name: format!(
                "task {task} {}",
                match verdict {
                    TaskVerdict::Done => "done",
                    TaskVerdict::Progress => "progress",
                    TaskVerdict::Pending => "pending",
                    TaskVerdict::Poisoned => "poisoned",
                }
            ),
            cat: "task",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("stream", stream.to_string())],
        },
        EventKind::RequestComplete {
            stream,
            bytes,
            cancelled,
        } => TraceEvent {
            name: "request complete".to_string(),
            cat: "request",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("stream", stream.to_string()),
                ("bytes", bytes.to_string()),
                ("cancelled", cancelled.to_string()),
            ],
        },
        EventKind::FabricTx {
            src,
            dst,
            path,
            bytes,
        } => TraceEvent {
            name: format!("tx {}", path.label()),
            cat: "fabric",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("src", src.to_string()),
                ("dst", dst.to_string()),
                ("bytes", bytes.to_string()),
            ],
        },
        EventKind::FabricRx {
            rank,
            src,
            path,
            bytes,
        } => TraceEvent {
            name: format!("rx {}", path.label()),
            cat: "fabric",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("rank", rank.to_string()),
                ("src", src.to_string()),
                ("bytes", bytes.to_string()),
            ],
        },
        EventKind::EagerSend {
            src,
            dst,
            bytes,
            buffered,
        } => TraceEvent {
            name: if buffered {
                "buffered send"
            } else {
                "eager send"
            }
            .to_string(),
            cat: "protocol",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("src", src.to_string()),
                ("dst", dst.to_string()),
                ("bytes", bytes.to_string()),
            ],
        },
        EventKind::RndvRts {
            send_id,
            src,
            dst,
            total,
        } => TraceEvent {
            name: format!("rndv {send_id} RTS"),
            cat: "protocol",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("src", src.to_string()),
                ("dst", dst.to_string()),
                ("total", total.to_string()),
            ],
        },
        EventKind::RndvCts { send_id, recv_id } => TraceEvent {
            name: format!("rndv {send_id} CTS"),
            cat: "protocol",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("recv_id", recv_id.to_string())],
        },
        EventKind::RndvData {
            recv_id,
            offset,
            bytes,
        } => TraceEvent {
            name: format!("rndv recv {recv_id} data"),
            cat: "protocol",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("offset", offset.to_string()), ("bytes", bytes.to_string())],
        },
        EventKind::RndvDone { id, bytes, sender } => TraceEvent {
            name: format!("rndv {id} done ({})", if sender { "send" } else { "recv" }),
            cat: "protocol",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("bytes", bytes.to_string())],
        },
        EventKind::UnexpectedMsg { src, tag } => TraceEvent {
            name: "unexpected msg".to_string(),
            cat: "matching",
            ph: 'i',
            ts,
            dur: None,
            args: vec![("src", src.to_string()), ("tag", tag.to_string())],
        },
        EventKind::DstStep {
            seed,
            step,
            action,
            subject,
        } => TraceEvent {
            name: format!("dst step {step}"),
            cat: "dst",
            ph: 'i',
            ts,
            dur: None,
            args: vec![
                ("seed", seed.to_string()),
                ("action", action.to_string()),
                ("subject", subject.to_string()),
            ],
        },
    }
}

fn push_event(out: &mut String, tid: usize, te: &TraceEvent, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":");
    esc(&te.name, out);
    let _ = write!(
        out,
        ",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{:.3}",
        te.cat, te.ph, tid, te.ts
    );
    if let Some(d) = te.dur {
        let _ = write!(out, ",\"dur\":{:.3}", d);
    }
    if te.ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in te.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("}}");
}

/// Render snapshots as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(snaps: &[ThreadSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, snap) in snaps.iter().enumerate() {
        // Thread-name metadata so the timeline rows are labelled.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        let _ = write!(out, "{tid},\"args\":{{\"name\":");
        esc(&snap.label, &mut out);
        out.push_str("}}");
        for ev in &snap.events {
            push_event(&mut out, tid, &convert(ev), &mut first);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Write [`chrome_trace_json`] output to `path`.
pub fn write_chrome_trace(path: &Path, snaps: &[ThreadSnapshot]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(snaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NameId};

    fn snap(events: Vec<Event>) -> ThreadSnapshot {
        ThreadSnapshot {
            label: "main \"worker\"".to_string(),
            pushed: events.len() as u64,
            dropped: 0,
            events,
        }
    }

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, and every quote closed.
    fn assert_balanced_json(s: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in s.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
    }

    #[test]
    fn emits_metadata_duration_and_instant_events() {
        let name = NameId::intern("netmod");
        let json = chrome_trace_json(&[snap(vec![
            Event {
                t: 0.001,
                kind: EventKind::HookPoll {
                    stream: 0,
                    class: 3,
                    name,
                    verdict: PollVerdict::Progress,
                    dur: 2e-6,
                },
            },
            Event {
                t: 0.002,
                kind: EventKind::EagerSend {
                    src: 0,
                    dst: 1,
                    bytes: 64,
                    buffered: false,
                },
            },
        ])]);
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("poll netmod"));
        assert!(json.contains("\"dur\":2.000"));
        assert_balanced_json(&json);
    }

    #[test]
    fn escapes_labels() {
        let json = chrome_trace_json(&[snap(vec![])]);
        assert!(json.contains("main \\\"worker\\\""));
        assert_balanced_json(&json);
    }

    #[test]
    fn empty_input_is_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert_balanced_json(&json);
    }

    #[test]
    fn every_event_kind_converts() {
        let name = NameId::intern("x");
        let kinds = vec![
            EventKind::HookRegistered {
                stream: 1,
                class: 0,
                name,
            },
            EventKind::HookPoll {
                stream: 1,
                class: 1,
                name,
                verdict: PollVerdict::NoProgress,
                dur: 0.0,
            },
            EventKind::StreamProgress {
                stream: 1,
                dur: 1e-5,
                hook_polls: 4,
                tasks_polled: 2,
                tasks_completed: 1,
                made_progress: true,
            },
            EventKind::TaskStart { stream: 1, task: 9 },
            EventKind::TaskPoll {
                stream: 1,
                task: 9,
                verdict: TaskVerdict::Done,
            },
            EventKind::RequestComplete {
                stream: 1,
                bytes: 10,
                cancelled: false,
            },
            EventKind::FabricTx {
                src: 0,
                dst: 1,
                path: crate::event::PathKind::Net,
                bytes: 5,
            },
            EventKind::FabricRx {
                rank: 1,
                src: 0,
                path: crate::event::PathKind::Shmem,
                bytes: 5,
            },
            EventKind::EagerSend {
                src: 0,
                dst: 1,
                bytes: 5,
                buffered: true,
            },
            EventKind::RndvRts {
                send_id: 1,
                src: 0,
                dst: 1,
                total: 1 << 20,
            },
            EventKind::RndvCts {
                send_id: 1,
                recv_id: 2,
            },
            EventKind::RndvData {
                recv_id: 2,
                offset: 0,
                bytes: 65536,
            },
            EventKind::RndvDone {
                id: 1,
                bytes: 1 << 20,
                sender: false,
            },
            EventKind::UnexpectedMsg { src: 0, tag: 42 },
        ];
        let events: Vec<Event> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event { t: i as f64, kind })
            .collect();
        let json = chrome_trace_json(&[snap(events)]);
        assert_balanced_json(&json);
        assert!(json.contains("rndv 1 RTS"));
        assert!(json.contains("unexpected msg"));
    }
}

//! Typed progress events and their packed wire form.
//!
//! Events are recorded into per-thread ring buffers (see [`crate::ring`])
//! as fixed-size words so the ring can stay lock-free without `unsafe`
//! reads: every slot is a handful of `AtomicU64`s. This module owns the
//! typed [`EventKind`] enum, the `pack`/`unpack` codec between the two
//! representations, and the [`NameId`] interner that keeps hook names out
//! of the hot path.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Number of `u64` words one packed event occupies: timestamp, tag, and
/// three payload words.
pub const EVENT_WORDS: usize = 5;

/// An interned string id. Interning happens on cold paths (hook
/// registration); events store the 32-bit id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: vec!["?".to_string()],
            index: HashMap::new(),
        })
    })
}

impl NameId {
    /// The id every unknown name decodes to.
    pub const UNKNOWN: NameId = NameId(0);

    /// Intern `name`, returning a stable id for the life of the process.
    pub fn intern(name: &str) -> NameId {
        let mut it = interner().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = it.index.get(name) {
            return NameId(id);
        }
        let id = it.names.len() as u32;
        it.names.push(name.to_string());
        it.index.insert(name.to_string(), id);
        NameId(id)
    }

    /// The interned string (`"?"` for ids never interned).
    pub fn resolve(self) -> String {
        let it = interner().lock().unwrap_or_else(|e| e.into_inner());
        it.names
            .get(self.0 as usize)
            .cloned()
            .unwrap_or_else(|| "?".to_string())
    }
}

/// What a subsystem hook poll reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollVerdict {
    /// The hook advanced something.
    Progress,
    /// The hook polled and found nothing to advance.
    NoProgress,
}

/// What one user async-task poll returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskVerdict {
    /// `MPIX_ASYNC_DONE` — the task completed and was retired.
    Done,
    /// The task advanced but is not finished.
    Progress,
    /// `MPIX_ASYNC_NOPROGRESS` — nothing observed this poll.
    Pending,
    /// The task's poll panicked and the task was discarded.
    Poisoned,
}

/// Which fabric delivery path a packet took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Intra-node shared-memory path.
    Shmem,
    /// Inter-node network path.
    Net,
}

impl PathKind {
    /// Short display name (matches the subsystem hook names).
    pub fn label(self) -> &'static str {
        match self {
            PathKind::Shmem => "shmem",
            PathKind::Net => "net",
        }
    }
}

/// One typed observability event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// [`crate::clock::wtime`] seconds at which the event was recorded
    /// (for duration events: the start).
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the progress engine, fabric, and protocol
/// layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A subsystem hook was registered on a stream.
    HookRegistered {
        /// Stream the hook was registered on.
        stream: u64,
        /// `SubsystemClass` as its `u8` poll-order index.
        class: u8,
        /// Interned hook name.
        name: NameId,
    },
    /// One subsystem hook poll (start time in `t`, duration in `dur`).
    HookPoll {
        /// Stream whose engine polled the hook.
        stream: u64,
        /// `SubsystemClass` as its `u8` poll-order index.
        class: u8,
        /// Interned hook name.
        name: NameId,
        /// What the poll reported.
        verdict: PollVerdict,
        /// Poll duration in seconds.
        dur: f64,
    },
    /// One collated progress sweep over a stream (start in `t`).
    StreamProgress {
        /// The stream that was progressed.
        stream: u64,
        /// Sweep duration in seconds.
        dur: f64,
        /// Subsystem hook polls issued during the sweep.
        hook_polls: u16,
        /// User async tasks polled during the sweep.
        tasks_polled: u32,
        /// User async tasks that completed during the sweep.
        tasks_completed: u16,
        /// Whether anything at all advanced.
        made_progress: bool,
    },
    /// A user async task was started on a stream (`MPIX_Async_start`).
    TaskStart {
        /// The stream the task was attached to.
        stream: u64,
        /// Task id within the stream.
        task: u64,
    },
    /// A user async-task poll returned a non-`Pending` verdict.
    TaskPoll {
        /// The stream that polled the task.
        stream: u64,
        /// Task id within the stream.
        task: u64,
        /// What the poll returned.
        verdict: TaskVerdict,
    },
    /// A request was completed (`MPIX_Request` turned complete).
    RequestComplete {
        /// Stream the request was bound to.
        stream: u64,
        /// Payload bytes of the completed operation.
        bytes: u64,
        /// True if completed as cancelled.
        cancelled: bool,
    },
    /// A packet was injected into the fabric.
    FabricTx {
        /// Source endpoint.
        src: u32,
        /// Destination endpoint.
        dst: u32,
        /// Delivery path chosen.
        path: PathKind,
        /// Wire bytes charged.
        bytes: u32,
    },
    /// A packet was popped from a fabric receive queue.
    FabricRx {
        /// Receiving endpoint.
        rank: u32,
        /// Originating endpoint.
        src: u32,
        /// Path it arrived on.
        path: PathKind,
        /// Wire bytes.
        bytes: u32,
    },
    /// An eager-mode (or buffered) message left the protocol layer.
    EagerSend {
        /// Sender wire endpoint.
        src: u32,
        /// Destination wire endpoint.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// True for the buffered (lightweight) variant.
        buffered: bool,
    },
    /// Rendezvous: sender issued a request-to-send.
    RndvRts {
        /// Sender-side transfer id.
        send_id: u64,
        /// Sender wire endpoint.
        src: u32,
        /// Destination wire endpoint.
        dst: u32,
        /// Total payload bytes of the transfer.
        total: u64,
    },
    /// Rendezvous: receiver granted clear-to-send.
    RndvCts {
        /// Sender-side transfer id being acknowledged.
        send_id: u64,
        /// Receiver-side transfer id.
        recv_id: u64,
    },
    /// Rendezvous: one payload chunk hit the wire.
    RndvData {
        /// Receiver-side transfer id.
        recv_id: u64,
        /// Byte offset of the chunk.
        offset: u64,
        /// Chunk length in bytes.
        bytes: u32,
    },
    /// Rendezvous: a transfer finished on one side.
    RndvDone {
        /// Transfer id (sender- or receiver-side per `sender`).
        id: u64,
        /// Total bytes moved.
        bytes: u64,
        /// True when the sender side completed.
        sender: bool,
    },
    /// An incoming message found no posted receive and was queued
    /// unexpected.
    UnexpectedMsg {
        /// Source rank.
        src: u32,
        /// Message tag (as its bit pattern).
        tag: i64,
    },
    /// One step of a deterministic-simulation schedule (the `mpfa-dst`
    /// trace bridge: the harness mirrors its own trace into the event
    /// ring so DST steps line up with engine/fabric events on a shared
    /// timeline).
    DstStep {
        /// Schedule seed being explored.
        seed: u64,
        /// Step index within the schedule.
        step: u32,
        /// Harness-defined action discriminant.
        action: u8,
        /// Action subject (rank index, victim rank, ...).
        subject: u32,
    },
}

const TAG_HOOK_REGISTERED: u64 = 1;
const TAG_HOOK_POLL: u64 = 2;
const TAG_STREAM_PROGRESS: u64 = 3;
const TAG_TASK_START: u64 = 4;
const TAG_TASK_POLL: u64 = 5;
const TAG_REQUEST_COMPLETE: u64 = 6;
const TAG_FABRIC_TX: u64 = 7;
const TAG_FABRIC_RX: u64 = 8;
const TAG_EAGER_SEND: u64 = 9;
const TAG_RNDV_RTS: u64 = 10;
const TAG_RNDV_CTS: u64 = 11;
const TAG_RNDV_DATA: u64 = 12;
const TAG_RNDV_DONE: u64 = 13;
const TAG_UNEXPECTED: u64 = 14;
const TAG_DST_STEP: u64 = 15;

fn path_bit(p: PathKind) -> u64 {
    match p {
        PathKind::Shmem => 0,
        PathKind::Net => 1,
    }
}

fn path_from(bit: u64) -> PathKind {
    if bit & 1 == 0 {
        PathKind::Shmem
    } else {
        PathKind::Net
    }
}

impl Event {
    /// Pack into the fixed ring-slot form: `[t, tag, a, b, c]`.
    pub fn pack(&self) -> [u64; EVENT_WORDS] {
        let (tag, a, b, c) = match self.kind {
            EventKind::HookRegistered {
                stream,
                class,
                name,
            } => (
                TAG_HOOK_REGISTERED,
                stream,
                (class as u64) | ((name.0 as u64) << 8),
                0,
            ),
            EventKind::HookPoll {
                stream,
                class,
                name,
                verdict,
                dur,
            } => {
                let v = match verdict {
                    PollVerdict::Progress => 1u64,
                    PollVerdict::NoProgress => 0u64,
                };
                (
                    TAG_HOOK_POLL,
                    stream,
                    (class as u64) | (v << 7) | ((name.0 as u64) << 8),
                    dur.to_bits(),
                )
            }
            EventKind::StreamProgress {
                stream,
                dur,
                hook_polls,
                tasks_polled,
                tasks_completed,
                made_progress,
            } => (
                TAG_STREAM_PROGRESS,
                stream,
                (hook_polls as u64)
                    | ((tasks_polled as u64) << 16)
                    | ((tasks_completed as u64) << 48)
                    | ((made_progress as u64) << 63),
                dur.to_bits(),
            ),
            EventKind::TaskStart { stream, task } => (TAG_TASK_START, stream, task, 0),
            EventKind::TaskPoll {
                stream,
                task,
                verdict,
            } => {
                let v = match verdict {
                    TaskVerdict::Done => 0u64,
                    TaskVerdict::Progress => 1,
                    TaskVerdict::Pending => 2,
                    TaskVerdict::Poisoned => 3,
                };
                (TAG_TASK_POLL, stream, task, v)
            }
            EventKind::RequestComplete {
                stream,
                bytes,
                cancelled,
            } => (TAG_REQUEST_COMPLETE, stream, bytes, cancelled as u64),
            EventKind::FabricTx {
                src,
                dst,
                path,
                bytes,
            } => (
                TAG_FABRIC_TX,
                (src as u64) | ((dst as u64) << 32),
                path_bit(path) | ((bytes as u64) << 8),
                0,
            ),
            EventKind::FabricRx {
                rank,
                src,
                path,
                bytes,
            } => (
                TAG_FABRIC_RX,
                (rank as u64) | ((src as u64) << 32),
                path_bit(path) | ((bytes as u64) << 8),
                0,
            ),
            EventKind::EagerSend {
                src,
                dst,
                bytes,
                buffered,
            } => (
                TAG_EAGER_SEND,
                (src as u64) | ((dst as u64) << 32),
                bytes,
                buffered as u64,
            ),
            EventKind::RndvRts {
                send_id,
                src,
                dst,
                total,
            } => (
                TAG_RNDV_RTS,
                send_id,
                (src as u64) | ((dst as u64) << 32),
                total,
            ),
            EventKind::RndvCts { send_id, recv_id } => (TAG_RNDV_CTS, send_id, recv_id, 0),
            EventKind::RndvData {
                recv_id,
                offset,
                bytes,
            } => (TAG_RNDV_DATA, recv_id, offset, bytes as u64),
            EventKind::RndvDone { id, bytes, sender } => (TAG_RNDV_DONE, id, bytes, sender as u64),
            EventKind::UnexpectedMsg { src, tag } => (TAG_UNEXPECTED, src as u64, tag as u64, 0),
            EventKind::DstStep {
                seed,
                step,
                action,
                subject,
            } => (
                TAG_DST_STEP,
                seed,
                (step as u64) | ((action as u64) << 32),
                subject as u64,
            ),
        };
        [self.t.to_bits(), tag, a, b, c]
    }

    /// Decode the packed form; `None` for an unknown tag (e.g. a zeroed
    /// slot).
    pub fn unpack(raw: [u64; EVENT_WORDS]) -> Option<Event> {
        let t = f64::from_bits(raw[0]);
        let (tag, a, b, c) = (raw[1], raw[2], raw[3], raw[4]);
        let kind = match tag {
            TAG_HOOK_REGISTERED => EventKind::HookRegistered {
                stream: a,
                class: (b & 0x7f) as u8,
                name: NameId((b >> 8) as u32),
            },
            TAG_HOOK_POLL => EventKind::HookPoll {
                stream: a,
                class: (b & 0x7f) as u8,
                name: NameId((b >> 8) as u32),
                verdict: if (b >> 7) & 1 == 1 {
                    PollVerdict::Progress
                } else {
                    PollVerdict::NoProgress
                },
                dur: f64::from_bits(c),
            },
            TAG_STREAM_PROGRESS => EventKind::StreamProgress {
                stream: a,
                dur: f64::from_bits(c),
                hook_polls: (b & 0xffff) as u16,
                tasks_polled: ((b >> 16) & 0xffff_ffff) as u32,
                tasks_completed: ((b >> 48) & 0x7fff) as u16,
                made_progress: (b >> 63) == 1,
            },
            TAG_TASK_START => EventKind::TaskStart { stream: a, task: b },
            TAG_TASK_POLL => EventKind::TaskPoll {
                stream: a,
                task: b,
                verdict: match c {
                    0 => TaskVerdict::Done,
                    1 => TaskVerdict::Progress,
                    2 => TaskVerdict::Pending,
                    _ => TaskVerdict::Poisoned,
                },
            },
            TAG_REQUEST_COMPLETE => EventKind::RequestComplete {
                stream: a,
                bytes: b,
                cancelled: c == 1,
            },
            TAG_FABRIC_TX => EventKind::FabricTx {
                src: (a & 0xffff_ffff) as u32,
                dst: (a >> 32) as u32,
                path: path_from(b),
                bytes: (b >> 8) as u32,
            },
            TAG_FABRIC_RX => EventKind::FabricRx {
                rank: (a & 0xffff_ffff) as u32,
                src: (a >> 32) as u32,
                path: path_from(b),
                bytes: (b >> 8) as u32,
            },
            TAG_EAGER_SEND => EventKind::EagerSend {
                src: (a & 0xffff_ffff) as u32,
                dst: (a >> 32) as u32,
                bytes: b,
                buffered: c == 1,
            },
            TAG_RNDV_RTS => EventKind::RndvRts {
                send_id: a,
                src: (b & 0xffff_ffff) as u32,
                dst: (b >> 32) as u32,
                total: c,
            },
            TAG_RNDV_CTS => EventKind::RndvCts {
                send_id: a,
                recv_id: b,
            },
            TAG_RNDV_DATA => EventKind::RndvData {
                recv_id: a,
                offset: b,
                bytes: c as u32,
            },
            TAG_RNDV_DONE => EventKind::RndvDone {
                id: a,
                bytes: b,
                sender: c == 1,
            },
            TAG_UNEXPECTED => EventKind::UnexpectedMsg {
                src: a as u32,
                tag: b as i64,
            },
            TAG_DST_STEP => EventKind::DstStep {
                seed: a,
                step: (b & 0xffff_ffff) as u32,
                action: ((b >> 32) & 0xff) as u8,
                subject: c as u32,
            },
            _ => return None,
        };
        Some(Event { t, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: EventKind) {
        let ev = Event { t: 1.2345, kind };
        let back = Event::unpack(ev.pack()).expect("known tag");
        assert_eq!(back, ev);
    }

    #[test]
    fn all_variants_roundtrip() {
        let name = NameId::intern("netmod");
        roundtrip(EventKind::HookRegistered {
            stream: 7,
            class: 3,
            name,
        });
        roundtrip(EventKind::HookPoll {
            stream: 7,
            class: 3,
            name,
            verdict: PollVerdict::Progress,
            dur: 3.5e-7,
        });
        roundtrip(EventKind::HookPoll {
            stream: u64::MAX,
            class: 4,
            name: NameId::UNKNOWN,
            verdict: PollVerdict::NoProgress,
            dur: 0.0,
        });
        roundtrip(EventKind::StreamProgress {
            stream: 3,
            dur: 1e-6,
            hook_polls: 65535,
            tasks_polled: 1 << 20,
            tasks_completed: 12345,
            made_progress: true,
        });
        roundtrip(EventKind::TaskStart {
            stream: 1,
            task: 1 << 40,
        });
        roundtrip(EventKind::TaskPoll {
            stream: 1,
            task: 2,
            verdict: TaskVerdict::Done,
        });
        roundtrip(EventKind::TaskPoll {
            stream: 1,
            task: 2,
            verdict: TaskVerdict::Poisoned,
        });
        roundtrip(EventKind::RequestComplete {
            stream: 9,
            bytes: 4096,
            cancelled: true,
        });
        roundtrip(EventKind::FabricTx {
            src: 3,
            dst: 250,
            path: PathKind::Net,
            bytes: u32::MAX >> 8,
        });
        roundtrip(EventKind::FabricRx {
            rank: 0,
            src: 9,
            path: PathKind::Shmem,
            bytes: 64,
        });
        roundtrip(EventKind::EagerSend {
            src: 1,
            dst: 2,
            bytes: 1 << 33,
            buffered: true,
        });
        roundtrip(EventKind::RndvRts {
            send_id: 77,
            src: 1,
            dst: 2,
            total: 1 << 30,
        });
        roundtrip(EventKind::RndvCts {
            send_id: 77,
            recv_id: 78,
        });
        roundtrip(EventKind::RndvData {
            recv_id: 78,
            offset: 65536,
            bytes: 65536,
        });
        roundtrip(EventKind::RndvDone {
            id: 77,
            bytes: 1 << 30,
            sender: true,
        });
        roundtrip(EventKind::UnexpectedMsg { src: 3, tag: -1 });
        roundtrip(EventKind::DstStep {
            seed: u64::MAX,
            step: u32::MAX,
            action: 7,
            subject: 42,
        });
    }

    #[test]
    fn unknown_tag_is_none() {
        assert!(Event::unpack([0, 0, 0, 0, 0]).is_none());
        assert!(Event::unpack([0, 999, 0, 0, 0]).is_none());
    }

    #[test]
    fn interner_is_stable_and_idempotent() {
        let a = NameId::intern("alpha-hook");
        let b = NameId::intern("alpha-hook");
        assert_eq!(a, b);
        assert_eq!(a.resolve(), "alpha-hook");
        let c = NameId::intern("beta-hook");
        assert_ne!(a, c);
        assert_eq!(NameId::UNKNOWN.resolve(), "?");
        assert_eq!(NameId(9_999_999).resolve(), "?");
    }

    #[test]
    fn timestamps_survive_packing() {
        let ev = Event {
            t: 123.456789,
            kind: EventKind::TaskStart { stream: 0, task: 0 },
        };
        assert_eq!(Event::unpack(ev.pack()).unwrap().t, 123.456789);
    }
}

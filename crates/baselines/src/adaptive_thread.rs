//! The MVAPICH-style adaptive async-progress thread (paper Section 5.1).
//!
//! "MVAPICH has proposed a design to address these issues by identifying
//! scenarios where asynchronous progress is required and putting the async
//! thread to sleep when it is not required or beneficial." This baseline
//! sleeps after a run of empty polls and wakes either by timeout or by an
//! explicit kick from the operation-initiating path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mpfa_core::sync::{Condvar, Mutex};
use mpfa_core::Stream;

/// Tuning knobs of the adaptive thread.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Consecutive no-progress polls before the thread goes to sleep.
    pub idle_polls_before_sleep: u32,
    /// Maximum sleep before re-checking (safety timeout).
    pub max_sleep: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            idle_polls_before_sleep: 64,
            max_sleep: Duration::from_millis(1),
        }
    }
}

struct Doze {
    lock: Mutex<bool>, // "kicked" flag
    cv: Condvar,
}

/// An async-progress thread that sleeps when idle.
pub struct AdaptiveProgressThread {
    shutdown: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
    sleeps: Arc<AtomicU64>,
    doze: Arc<Doze>,
    thread: Option<JoinHandle<()>>,
}

impl AdaptiveProgressThread {
    /// Enable adaptive async progress on `stream`.
    pub fn enable(stream: &Stream, config: AdaptiveConfig) -> AdaptiveProgressThread {
        let shutdown = Arc::new(AtomicBool::new(false));
        let iterations = Arc::new(AtomicU64::new(0));
        let sleeps = Arc::new(AtomicU64::new(0));
        let doze = Arc::new(Doze {
            lock: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread = {
            let stream = stream.clone();
            let shutdown = shutdown.clone();
            let iterations = iterations.clone();
            let sleeps = sleeps.clone();
            let doze = doze.clone();
            std::thread::Builder::new()
                .name("adaptive-progress".into())
                .spawn(move || {
                    let mut idle_streak = 0u32;
                    while !shutdown.load(Ordering::Acquire) {
                        let out = stream.progress();
                        iterations.fetch_add(1, Ordering::Relaxed);
                        if out.made_progress() || stream.pending_tasks() > 0 {
                            idle_streak = 0;
                            continue;
                        }
                        idle_streak += 1;
                        if idle_streak >= config.idle_polls_before_sleep {
                            sleeps.fetch_add(1, Ordering::Relaxed);
                            let mut kicked = doze.lock.lock();
                            if !*kicked {
                                doze.cv.wait_for(&mut kicked, config.max_sleep);
                            }
                            *kicked = false;
                            idle_streak = 0;
                        }
                    }
                })
                .expect("spawn adaptive progress thread")
        };
        AdaptiveProgressThread {
            shutdown,
            iterations,
            sleeps,
            doze,
            thread: Some(thread),
        }
    }

    /// Wake the thread (called from operation-initiating paths — the
    /// "identify scenarios where asynchronous progress is required" half
    /// of the design).
    pub fn kick(&self) {
        let mut kicked = self.doze.lock.lock();
        *kicked = true;
        self.doze.cv.notify_one();
    }

    /// Progress-loop iterations so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Times the thread went to sleep.
    pub fn sleeps(&self) -> u64 {
        self.sleeps.load(Ordering::Relaxed)
    }

    /// Disable and join.
    pub fn disable(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.kick();
        if let Some(t) = self.thread.take() {
            t.join().expect("adaptive progress thread panicked");
        }
    }
}

impl Drop for AdaptiveProgressThread {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.kick();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, AsyncPoll, CompletionCounter};

    #[test]
    fn completes_tasks_like_the_busy_variant() {
        let stream = Stream::create();
        let bg = AdaptiveProgressThread::enable(&stream, AdaptiveConfig::default());
        let done = CompletionCounter::new(1);
        let d = done.clone();
        let deadline = wtime() + 0.002;
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                d.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        bg.kick();
        let t0 = wtime();
        while !done.is_zero() {
            assert!(wtime() - t0 < 5.0);
            std::hint::spin_loop();
        }
        bg.disable();
    }

    #[test]
    fn sleeps_when_idle() {
        let stream = Stream::create();
        let bg = AdaptiveProgressThread::enable(
            &stream,
            AdaptiveConfig {
                idle_polls_before_sleep: 4,
                max_sleep: Duration::from_micros(200),
            },
        );
        // Nothing to do: the thread must start sleeping.
        let t0 = wtime();
        while bg.sleeps() == 0 {
            assert!(wtime() - t0 < 5.0, "never slept");
            std::hint::spin_loop();
        }
        // While sleeping in 200µs bouts, its poll rate is bounded —
        // unlike the busy baseline, which would spin millions of times.
        bg.disable();
    }

    #[test]
    fn kick_wakes_promptly() {
        let stream = Stream::create();
        let bg = AdaptiveProgressThread::enable(
            &stream,
            // Effectively never wake by timeout.
            AdaptiveConfig {
                idle_polls_before_sleep: 1,
                max_sleep: Duration::from_secs(10),
            },
        );
        let t0 = wtime();
        while bg.sleeps() == 0 {
            assert!(wtime() - t0 < 5.0);
            std::hint::spin_loop();
        }
        let done = CompletionCounter::new(1);
        let d = done.clone();
        stream.async_start(move |_t| {
            d.done();
            AsyncPoll::Done
        });
        bg.kick();
        let t0 = wtime();
        while !done.is_zero() {
            assert!(wtime() - t0 < 5.0, "kick did not wake the thread");
            std::hint::spin_loop();
        }
        bg.disable();
    }
}

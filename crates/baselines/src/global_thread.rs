//! The MPICH `MPIR_CVAR_ASYNC_PROGRESS` baseline (paper Section 5.1).
//!
//! A dedicated thread busy-polls progress on the application's own stream.
//! "Because the async progress thread constantly tries to make progress on
//! operations, it creates latency overhead for all MPI calls due to lock
//! contention" — every application-side progress call (blocking waits,
//! tests, sends on the same stream) now fights this thread for the stream
//! engine lock. The A3 ablation bench quantifies the damage against
//! explicit per-context `MPIX_Stream_progress`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use mpfa_core::Stream;

/// A busy-polling global async-progress thread.
pub struct GlobalProgressThread {
    shutdown: Arc<AtomicBool>,
    iterations: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl GlobalProgressThread {
    /// Enable "async progress" on `stream` — typically the application's
    /// default stream, which is precisely what makes this a bad idea.
    pub fn enable(stream: &Stream) -> GlobalProgressThread {
        let shutdown = Arc::new(AtomicBool::new(false));
        let iterations = Arc::new(AtomicU64::new(0));
        let thread = {
            let stream = stream.clone();
            let shutdown = shutdown.clone();
            let iterations = iterations.clone();
            std::thread::Builder::new()
                .name("async-progress".into())
                .spawn(move || {
                    // The MPICH baseline: an unconditional busy loop. No
                    // yielding, no backoff — maximum contention.
                    while !shutdown.load(Ordering::Acquire) {
                        stream.progress();
                        iterations.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn async progress thread")
        };
        GlobalProgressThread {
            shutdown,
            iterations,
            thread: Some(thread),
        }
    }

    /// Progress-loop iterations so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Disable async progress (join the thread).
    pub fn disable(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            t.join().expect("async progress thread panicked");
        }
    }
}

impl Drop for GlobalProgressThread {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, AsyncPoll, CompletionCounter};

    #[test]
    fn background_thread_completes_tasks() {
        let stream = Stream::create();
        let bg = GlobalProgressThread::enable(&stream);
        let done = CompletionCounter::new(1);
        let d = done.clone();
        let deadline = wtime() + 0.002;
        stream.async_start(move |_t| {
            if wtime() >= deadline {
                d.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let t0 = wtime();
        while !done.is_zero() {
            assert!(wtime() - t0 < 5.0);
            std::hint::spin_loop();
        }
        assert!(bg.iterations() > 0);
        bg.disable();
    }

    #[test]
    fn main_thread_contends_with_background() {
        // Both the baseline thread and the "application" call progress on
        // the same stream; correctness must hold under the contention.
        let stream = Stream::create();
        let bg = GlobalProgressThread::enable(&stream);
        let done = CompletionCounter::new(100);
        for _ in 0..100 {
            let d = done.clone();
            let deadline = wtime() + 0.001;
            stream.async_start(move |_t| {
                if wtime() >= deadline {
                    d.done();
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
        }
        assert!(stream.progress_until(|| done.is_zero(), 5.0));
        bg.disable();
    }

    #[test]
    fn drop_without_disable_joins() {
        let stream = Stream::create();
        {
            let _bg = GlobalProgressThread::enable(&stream);
        }
    }
}

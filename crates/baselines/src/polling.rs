//! Request-array polling loops — the traditional strategy the extension
//! APIs replace (paper Sections 2.5–2.6).
//!
//! Without `MPIX_Stream_progress`, the only way to drive progress is
//! `MPI_Test` on concrete requests, which (a) requires sharing request
//! objects with whatever context polls, and (b) invokes one *redundant*
//! progress call per tested request per sweep. These helpers implement
//! that pattern and count its redundant progress calls so the ablation
//! bench can show the waste.

use mpfa_core::{Request, Status, Stream};

/// Result of a polling sweep over a request array.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PollStats {
    /// Total `test` invocations (each drove one progress call).
    pub tests: u64,
    /// Tests that found an already-complete request — pure waste.
    pub redundant_tests: u64,
    /// Full sweeps over the array.
    pub sweeps: u64,
}

/// `MPI_Testall`-style completion loop: sweep `test` over every request
/// until all are complete. Returns the statuses (request order) and the
/// waste statistics.
pub fn wait_all_by_testing(requests: &[Request]) -> (Vec<Status>, PollStats) {
    let mut stats = PollStats::default();
    let mut done = vec![false; requests.len()];
    let mut statuses: Vec<Option<Status>> = vec![None; requests.len()];
    let mut remaining = requests.len();
    while remaining > 0 {
        stats.sweeps += 1;
        for (i, req) in requests.iter().enumerate() {
            if done[i] {
                continue;
            }
            // The classic pattern: MPI_Test on each pending request —
            // every call invokes progress whether useful or not.
            stats.tests += 1;
            if req.is_complete() {
                // This test's progress invocation was redundant: the
                // request had already completed.
                stats.redundant_tests += 1;
            }
            if let Some(status) = req.test() {
                statuses[i] = Some(status);
                done[i] = true;
                remaining -= 1;
            }
        }
    }
    (
        statuses
            .into_iter()
            .map(|s| s.expect("all complete"))
            .collect(),
        stats,
    )
}

/// `MPI_Testany`-style loop: poll until ANY request completes; returns its
/// index and status.
pub fn wait_any_by_testing(requests: &[Request]) -> (usize, Status, PollStats) {
    assert!(!requests.is_empty(), "wait_any on empty set");
    let mut stats = PollStats::default();
    loop {
        stats.sweeps += 1;
        for (i, req) in requests.iter().enumerate() {
            stats.tests += 1;
            if let Some(status) = req.test() {
                return (i, status, stats);
            }
        }
    }
}

/// The extension-API equivalent, for comparison: ONE progress call per
/// sweep (`MPIX_Stream_progress`), completion checks via the
/// side-effect-free `is_complete`. Returns the same statuses plus the
/// number of progress calls used.
pub fn wait_all_by_stream_progress(stream: &Stream, requests: &[Request]) -> (Vec<Status>, u64) {
    let mut progress_calls = 0u64;
    while !Request::all_complete(requests) {
        stream.progress();
        progress_calls += 1;
    }
    (
        requests
            .iter()
            .map(|r| r.status().expect("all complete"))
            .collect(),
        progress_calls,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_core::{wtime, AsyncPoll};

    /// N requests completed by async deadline tasks on the stream.
    fn timed_requests(stream: &Stream, n: usize, duration: f64) -> Vec<Request> {
        (0..n)
            .map(|i| {
                let (req, completer) = Request::pair(stream);
                let deadline = wtime() + duration * (i + 1) as f64 / n as f64;
                let mut completer = Some(completer);
                stream.async_start(move |_t| {
                    if wtime() >= deadline {
                        completer.take().expect("once").complete_empty();
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
                req
            })
            .collect()
    }

    #[test]
    fn testall_loop_completes_everything() {
        let stream = Stream::create();
        let reqs = timed_requests(&stream, 8, 0.002);
        let (statuses, stats) = wait_all_by_testing(&reqs);
        assert_eq!(statuses.len(), 8);
        assert!(statuses.iter().all(|s| !s.cancelled));
        assert!(stats.tests >= 8);
        assert!(stats.sweeps >= 1);
    }

    #[test]
    fn testany_returns_first_completion() {
        let stream = Stream::create();
        let reqs = timed_requests(&stream, 4, 0.002);
        let (idx, status, stats) = wait_any_by_testing(&reqs);
        assert!(idx < 4);
        assert!(!status.cancelled);
        assert!(stats.tests >= 1);
    }

    #[test]
    fn stream_progress_costs_one_call_per_sweep_testing_costs_many() {
        // The headline comparison: per-sweep progress cost is 1 call for
        // the stream variant and up-to-N calls for the testing variant.
        // (Total counts over a wall-clock window are timing-dependent, so
        // the assertion is on the per-sweep ratio, which is structural.)
        let stream = Stream::create();
        let n = 32;
        let reqs = timed_requests(&stream, n, 0.005);
        let (statuses, progress_calls) = wait_all_by_stream_progress(&stream, &reqs);
        assert_eq!(statuses.len(), n);
        assert!(progress_calls >= 1);
        // Stream variant: exactly one progress call per sweep, by
        // construction.

        let stream2 = Stream::create();
        let reqs2 = timed_requests(&stream2, n, 0.005);
        let (_, stats) = wait_all_by_testing(&reqs2);
        assert!(
            stats.tests > stats.sweeps,
            "testing must drive >1 progress call per sweep with {} pending \
             requests (got {} tests over {} sweeps)",
            n,
            stats.tests,
            stats.sweeps
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn wait_any_on_empty_panics() {
        let _ = wait_any_by_testing(&[]);
    }
}

//! # mpfa-baselines — the progress strategies the paper compares against
//!
//! Section 5 of *MPI Progress For All* reviews prior approaches to the
//! progress problem. This crate implements them faithfully so the
//! benchmarks can measure the paper's claims:
//!
//! * [`global_thread`] — MPICH's `MPIR_CVAR_ASYNC_PROGRESS`: a dedicated
//!   background thread busy-polling progress *on the same context the
//!   application uses*, paying global-lock contention on every MPI call
//!   (Section 5.1).
//! * [`adaptive_thread`] — the MVAPICH refinement: the async thread sleeps
//!   whenever progress is not needed, waking on demand (Section 5.1).
//! * [`polling`] — the classic request-array test/test-any loops that the
//!   extension APIs replace: every test drives a redundant progress call
//!   and requires sharing request objects with the polling context
//!   (Sections 2.5–2.6).

#![warn(missing_docs)]

pub mod adaptive_thread;
pub mod global_thread;
pub mod polling;

pub use adaptive_thread::AdaptiveProgressThread;
pub use global_thread::GlobalProgressThread;

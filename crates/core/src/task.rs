//! The `MPIX_Async` extension: user-defined asynchronous tasks progressed by
//! the stream's collated progress engine (paper Section 3.3).
//!
//! A task is any [`AsyncTask`] value (most often a closure). Its
//! [`poll`](AsyncTask::poll) is invoked from inside stream progress along
//! with the runtime's internal subsystem hooks. The task's own value plays
//! the role of the C API's `extra_state` (there is no separate
//! `MPIX_Async_get_state`: Rust closures and structs carry their state).
//!
//! Inside a poll, the [`AsyncThing`] context allows spawning additional
//! tasks; spawned tasks are stashed and spliced into the engine *after* the
//! poll returns, which is exactly the paper's `MPIX_Async_spawn` design
//! ("the implementation [avoids] potential recursion and the need for global
//! queue protection before calling `poll_fn`").

use crate::stream::StreamId;

/// Result of polling an async task — the `MPIX_ASYNC_*` return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncPoll {
    /// The task is finished; the engine removes it. Before returning this,
    /// the task must have released/consumed whatever it owns (in Rust the
    /// engine simply drops the task value).
    ///
    /// Equivalent to `MPIX_ASYNC_DONE`.
    Done,
    /// The task is still pending and this poll made no observable progress.
    ///
    /// Equivalent to `MPIX_ASYNC_NOPROGRESS` (the listings) a.k.a.
    /// `MPIX_ASYNC_PENDING` (the text).
    Pending,
    /// The task is still pending but this poll advanced it (e.g. a protocol
    /// stage completed and the next stage was initiated). The engine counts
    /// this as stream progress.
    Progress,
}

impl AsyncPoll {
    /// Alias for [`AsyncPoll::Pending`], matching `MPIX_ASYNC_NOPROGRESS`.
    pub const NOPROGRESS: AsyncPoll = AsyncPoll::Pending;
}

/// Identifier of a started async task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) u64);

/// The context handed to [`AsyncTask::poll`] — the `MPIX_Async_thing`.
///
/// It exposes the owning stream's id and the deferred-spawn facility.
pub struct AsyncThing {
    pub(crate) stream: StreamId,
    pub(crate) task: TaskId,
    pub(crate) spawned: Vec<Box<dyn AsyncTask>>,
}

impl AsyncThing {
    /// Construct a fresh poll context (engine-internal).
    pub(crate) fn new(stream: StreamId) -> AsyncThing {
        AsyncThing {
            stream,
            task: TaskId(0),
            spawned: Vec::new(),
        }
    }
    /// The stream this task is attached to.
    pub fn stream_id(&self) -> StreamId {
        self.stream
    }

    /// This task's id.
    pub fn task_id(&self) -> TaskId {
        self.task
    }

    /// Spawn an additional async task on the same stream
    /// (`MPIX_Async_spawn`). The new task is queued inside the engine and
    /// becomes pollable after the current poll sweep returns; it is *not*
    /// polled recursively.
    pub fn spawn<F>(&mut self, poll: F)
    where
        F: FnMut(&mut AsyncThing) -> AsyncPoll + Send + 'static,
    {
        self.spawn_task(poll);
    }

    /// [`AsyncThing::spawn`] for non-closure [`AsyncTask`] values.
    pub fn spawn_task(&mut self, task: impl AsyncTask + 'static) {
        self.spawned.push(Box::new(task));
    }
}

/// A user asynchronous task progressed by the stream engine.
///
/// Implemented for all `FnMut(&mut AsyncThing) -> AsyncPoll + Send`
/// closures, so the common form is:
///
/// ```
/// use mpfa_core::{Stream, AsyncPoll, wtime};
/// let stream = Stream::create();
/// let deadline = wtime() + 0.001;
/// stream.async_start(move |_thing| {
///     if wtime() >= deadline { AsyncPoll::Done } else { AsyncPoll::Pending }
/// });
/// while stream.pending_tasks() > 0 {
///     stream.progress();
/// }
/// ```
pub trait AsyncTask: Send {
    /// Advance the task; called from within stream progress.
    ///
    /// Must be lightweight (Section 4.2: heavy poll functions degrade the
    /// response latency of every other task collated on the stream) and must
    /// not invoke stream progress recursively.
    fn poll(&mut self, thing: &mut AsyncThing) -> AsyncPoll;
}

impl<F> AsyncTask for F
where
    F: FnMut(&mut AsyncThing) -> AsyncPoll + Send,
{
    fn poll(&mut self, thing: &mut AsyncThing) -> AsyncPoll {
        self(thing)
    }
}

/// Start an async task on `stream` — `MPIX_Async_start(poll_fn, state,
/// stream)`. Free-function form of [`crate::Stream::async_start`].
pub fn async_start<F>(stream: &crate::Stream, poll: F) -> TaskId
where
    F: FnMut(&mut AsyncThing) -> AsyncPoll + Send + 'static,
{
    stream.async_start(poll)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprogress_alias() {
        assert_eq!(AsyncPoll::NOPROGRESS, AsyncPoll::Pending);
    }

    #[test]
    fn closures_implement_async_task() {
        fn assert_task<T: AsyncTask>(_t: &T) {}
        let c = |_t: &mut AsyncThing| AsyncPoll::Done;
        assert_task(&c);
    }

    struct CountDown(u32);
    impl AsyncTask for CountDown {
        fn poll(&mut self, _thing: &mut AsyncThing) -> AsyncPoll {
            if self.0 == 0 {
                AsyncPoll::Done
            } else {
                self.0 -= 1;
                AsyncPoll::Progress
            }
        }
    }

    #[test]
    fn struct_tasks_implement_async_task() {
        let mut t = CountDown(1);
        let mut thing = AsyncThing::new(StreamId(0));
        thing.task = TaskId(7);
        assert_eq!(t.poll(&mut thing), AsyncPoll::Progress);
        assert_eq!(t.poll(&mut thing), AsyncPoll::Done);
        assert_eq!(thing.task_id(), TaskId(7));
        assert_eq!(thing.stream_id(), StreamId(0));
    }

    #[test]
    fn spawn_defers_into_vec() {
        let mut thing = AsyncThing::new(StreamId(0));
        thing.spawn(|_t| AsyncPoll::Done);
        thing.spawn_task(CountDown(3));
        assert_eq!(thing.spawned.len(), 2);
    }
}

//! Subsystem progress hooks — the internal entries of the collated progress
//! function (the paper's Listing 1.1).
//!
//! A communication runtime (such as `mpfa-mpi`) registers one
//! [`ProgressHook`] per asynchronous subsystem on each [`Stream`] it serves.
//! The engine polls hooks ordered by [`SubsystemClass`], mirroring MPICH:
//! datatype engine, then collective schedules, then shared memory, then the
//! network module — and stops at the first hook that reports progress.
//!
//! [`Stream`]: crate::stream::Stream

use std::fmt;

/// The subsystem classes of MPICH's collated progress, in poll order.
///
/// The ordering embodies the paper's Listing 1.1 rationale: "For the
/// datatype engine, collective, and shared memory (shmem) subsystems, an
/// empty poll incurs a cost equivalent to reading an atomic variable.
/// However, this is not always the case with netmod progress, so we place
/// netmod progress last and skip it whenever progress is made with other
/// subsystems."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SubsystemClass {
    /// Asynchronous datatype pack/unpack engine.
    DatatypeEngine = 0,
    /// Collective-algorithm schedule progression.
    CollectiveSched = 1,
    /// Intra-node shared-memory communication.
    Shmem = 2,
    /// Inter-node network-module communication (polled last; its empty poll
    /// is not free).
    Netmod = 3,
    /// Runtime-internal extensions that are not one of MPICH's four classic
    /// subsystems (polled after netmod).
    Other = 4,
}

impl SubsystemClass {
    /// Number of subsystem classes — sizes per-class arrays such as
    /// [`crate::engine::EngineStats::hook_polls`], so adding a class can
    /// never silently truncate stats.
    pub const COUNT: usize = Self::ALL.len();

    /// All classes in poll order.
    pub const ALL: [SubsystemClass; 5] = [
        SubsystemClass::DatatypeEngine,
        SubsystemClass::CollectiveSched,
        SubsystemClass::Shmem,
        SubsystemClass::Netmod,
        SubsystemClass::Other,
    ];

    /// Bit for skip masks.
    #[inline]
    pub(crate) fn bit(self) -> u8 {
        1u8 << (self as u8)
    }
}

impl fmt::Display for SubsystemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubsystemClass::DatatypeEngine => "datatype-engine",
            SubsystemClass::CollectiveSched => "coll-sched",
            SubsystemClass::Shmem => "shmem",
            SubsystemClass::Netmod => "netmod",
            SubsystemClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// A subsystem progress hook registered on a stream.
///
/// Implementations must be cheap to poll when idle: [`has_work`] should be
/// a single atomic read, and the engine will not call [`poll`] when it
/// returns `false`. (This is the "empty poll costs one atomic read"
/// property the collation policy relies on.)
///
/// Hooks are polled while the stream's engine lock is held; a hook must
/// never re-enter stream progress (the paper prohibits recursive progress).
///
/// [`has_work`]: ProgressHook::has_work
/// [`poll`]: ProgressHook::poll
pub trait ProgressHook: Send {
    /// Short diagnostic name.
    fn name(&self) -> &str;

    /// Which subsystem class this hook belongs to (fixes poll order).
    fn class(&self) -> SubsystemClass;

    /// Cheap pending-work check. Default: always assume work.
    fn has_work(&self) -> bool {
        true
    }

    /// Advance the subsystem. Returns `true` iff progress was made
    /// (an event completed, a protocol state advanced, data moved).
    fn poll(&self) -> bool;
}

/// Identifier of a registered hook, used to unregister it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HookId(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_matches_listing_1_1() {
        assert!(SubsystemClass::DatatypeEngine < SubsystemClass::CollectiveSched);
        assert!(SubsystemClass::CollectiveSched < SubsystemClass::Shmem);
        assert!(SubsystemClass::Shmem < SubsystemClass::Netmod);
        assert!(SubsystemClass::Netmod < SubsystemClass::Other);
    }

    #[test]
    fn bits_are_distinct() {
        let mut seen = 0u8;
        for c in SubsystemClass::ALL {
            assert_eq!(seen & c.bit(), 0);
            seen |= c.bit();
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SubsystemClass::Netmod.to_string(), "netmod");
        assert_eq!(
            SubsystemClass::DatatypeEngine.to_string(),
            "datatype-engine"
        );
    }

    struct Noop;
    impl ProgressHook for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn class(&self) -> SubsystemClass {
            SubsystemClass::Other
        }
        fn poll(&self) -> bool {
            false
        }
    }

    #[test]
    fn default_has_work_is_true() {
        assert!(Noop.has_work());
    }
}

//! MPI *generalized requests* (`MPI_Grequest_start` /
//! `MPI_Grequest_complete`), the tracking-handle half of user-level MPI
//! extensions (paper Sections 4.6 and 5.2).
//!
//! A generalized request wraps a user asynchronous task in a regular
//! [`Request`] so it can be waited on with the standard completion calls.
//! As the paper observes, generalized requests on their own provide *no
//! progress mechanism* — "users are expected to progress the async task
//! behind the generalized request outside of MPI" — which is exactly the
//! gap `MPIX_Async` fills: run the task's progression as an async hook, and
//! call [`Grequest::complete`] from the poll function when it finishes
//! (Listing 1.7).

use crate::request::{Completer, Request, Status};
use crate::stream::Stream;

/// User callbacks of a generalized request. The implementing value is the
/// `extra_state`.
///
/// All three callbacks have do-nothing defaults, matching the common case
/// (the paper's Listing 1.7 uses dummy `query_fn`/`free_fn`/`cancel_fn`).
pub trait GrequestOps: Send {
    /// `query_fn`: produce the status reported to waiters. Called once, when
    /// the request is completed.
    ///
    /// (MPI calls `query_fn` lazily when status is queried; completing the
    /// status eagerly at `Grequest::complete` time is observationally
    /// equivalent for well-formed callbacks, which may not depend on *when*
    /// they run.)
    fn query(&mut self) -> Status {
        Status::empty()
    }

    /// `free_fn`: release user resources. Called when the [`Grequest`]
    /// handle is dropped (after completion or cancellation).
    fn on_free(&mut self) {}

    /// `cancel_fn`: the operation is being cancelled. `already_complete`
    /// tells whether completion raced ahead of the cancel.
    fn on_cancel(&mut self, _already_complete: bool) {}
}

/// A trivial [`GrequestOps`] with all-default callbacks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopOps;
impl GrequestOps for NoopOps {}

/// The producer handle of a generalized request.
///
/// Completing consumes the handle (`MPI_Grequest_complete`); dropping it
/// without completing cancels the request (no waiter may hang on an
/// abandoned operation).
pub struct Grequest {
    ops: Box<dyn GrequestOps>,
    completer: Option<Completer>,
}

/// Start a generalized request on `stream` — `MPI_Grequest_start`.
///
/// Returns the waitable [`Request`] and the [`Grequest`] producer handle.
pub fn grequest_start(stream: &Stream, ops: impl GrequestOps + 'static) -> (Request, Grequest) {
    let (request, completer) = Request::pair(stream);
    (
        request,
        Grequest {
            ops: Box::new(ops),
            completer: Some(completer),
        },
    )
}

impl Grequest {
    /// `MPI_Grequest_complete`: mark the operation finished. The status
    /// reported to waiters comes from the ops' `query`.
    pub fn complete(mut self) {
        let status = self.ops.query();
        if let Some(completer) = self.completer.take() {
            completer.complete(status);
        }
    }

    /// `MPI_Cancel` on the generalized request: invokes `cancel_fn` and
    /// completes the request as cancelled.
    pub fn cancel(mut self) {
        let already = self
            .completer
            .as_ref()
            .map(|c| c.request().is_complete())
            .unwrap_or(true);
        self.ops.on_cancel(already);
        if let Some(completer) = self.completer.take() {
            completer.cancel();
        }
    }

    /// A [`Request`] observing this generalized request.
    pub fn request(&self) -> Request {
        self.completer
            .as_ref()
            .expect("Grequest already completed")
            .request()
    }
}

impl Drop for Grequest {
    fn drop(&mut self) {
        // Abandoned without complete(): cancel (Completer::drop would do the
        // flag, but cancel_fn deserves to run too).
        if let Some(completer) = self.completer.take() {
            self.ops.on_cancel(false);
            completer.cancel();
        }
        self.ops.on_free();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AsyncPoll, AsyncThing};
    use crate::wtime::wtime;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Recording {
        queried: Arc<AtomicUsize>,
        freed: Arc<AtomicBool>,
        cancelled: Arc<AtomicBool>,
        status: Status,
    }

    impl GrequestOps for Recording {
        fn query(&mut self) -> Status {
            self.queried.fetch_add(1, Ordering::Relaxed);
            self.status
        }
        fn on_free(&mut self) {
            self.freed.store(true, Ordering::Relaxed);
        }
        fn on_cancel(&mut self, _already_complete: bool) {
            self.cancelled.store(true, Ordering::Relaxed);
        }
    }

    fn recording() -> (
        Recording,
        Arc<AtomicUsize>,
        Arc<AtomicBool>,
        Arc<AtomicBool>,
    ) {
        let queried = Arc::new(AtomicUsize::new(0));
        let freed = Arc::new(AtomicBool::new(false));
        let cancelled = Arc::new(AtomicBool::new(false));
        (
            Recording {
                queried: queried.clone(),
                freed: freed.clone(),
                cancelled: cancelled.clone(),
                status: Status {
                    source: 9,
                    tag: 8,
                    bytes: 7,
                    cancelled: false,
                },
            },
            queried,
            freed,
            cancelled,
        )
    }

    #[test]
    fn complete_runs_query_and_publishes_status() {
        let s = Stream::create();
        let (ops, queried, freed, cancelled) = recording();
        let (req, greq) = grequest_start(&s, ops);
        assert!(!req.is_complete());
        greq.complete();
        assert!(req.is_complete());
        let st = req.status().unwrap();
        assert_eq!((st.source, st.tag, st.bytes), (9, 8, 7));
        assert_eq!(queried.load(Ordering::Relaxed), 1);
        assert!(
            freed.load(Ordering::Relaxed),
            "free_fn runs when handle dropped"
        );
        assert!(!cancelled.load(Ordering::Relaxed));
    }

    #[test]
    fn cancel_runs_cancel_fn() {
        let s = Stream::create();
        let (ops, queried, freed, cancelled) = recording();
        let (req, greq) = grequest_start(&s, ops);
        greq.cancel();
        assert!(req.is_complete());
        assert!(req.status().unwrap().cancelled);
        assert!(cancelled.load(Ordering::Relaxed));
        assert!(freed.load(Ordering::Relaxed));
        assert_eq!(queried.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drop_without_complete_cancels() {
        let s = Stream::create();
        let (ops, _queried, freed, cancelled) = recording();
        let (req, greq) = grequest_start(&s, ops);
        drop(greq);
        assert!(req.is_complete());
        assert!(req.status().unwrap().cancelled);
        assert!(cancelled.load(Ordering::Relaxed));
        assert!(freed.load(Ordering::Relaxed));
    }

    #[test]
    fn drop_after_on_complete_fires_continuation_exactly_once() {
        // Regression: a grequest abandoned after a continuation was
        // attached must run that continuation exactly once (via the
        // cancel path), not zero times and not twice.
        let s = Stream::create();
        let (ops, _queried, _freed, _cancelled) = recording();
        let (req, greq) = grequest_start(&s, ops);
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        req.on_complete(move |res| {
            let st = res.expect("cancel is completion, not a fault");
            assert!(st.cancelled);
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        drop(greq);
        // Drop enqueued the continuation on the stream; a progress call
        // drains it.
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Nothing further may re-fire it.
        s.progress();
        drop(req);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn complete_then_attach_fires_exactly_once() {
        let s = Stream::create();
        let (req, greq) = grequest_start(&s, NoopOps);
        greq.complete();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        req.on_complete(move |res| {
            assert!(res.is_ok());
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        s.progress();
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn noop_ops_works() {
        let s = Stream::create();
        let (req, greq) = grequest_start(&s, NoopOps);
        greq.complete();
        assert!(req.is_complete());
        assert!(!req.status().unwrap().cancelled);
    }

    #[test]
    fn listing_1_7_dummy_task_via_async_and_grequest() {
        // Reproduces the paper's Listing 1.7: an MPIX_Async task completes a
        // generalized request at a deadline; MPI_Wait on the request drives
        // progress until then.
        let s = Stream::create();
        let (req, greq) = grequest_start(&s, NoopOps);
        let deadline = wtime() + 0.002;
        let mut greq = Some(greq);
        s.async_start(move |_t: &mut AsyncThing| {
            if wtime() > deadline {
                greq.take().unwrap().complete();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let st = req.wait();
        assert!(!st.cancelled);
        assert!(wtime() >= deadline);
        assert_eq!(s.pending_tasks(), 0);
    }
}

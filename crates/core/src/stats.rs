//! Latency statistics collection — the `add_stat` / `report_stat` helpers
//! the paper's Listing 1.3 leaves "implementation omitted".
//!
//! The central metric of the paper's evaluation is **progress latency**: the
//! elapsed time between a task's completion and the moment the progress
//! engine's user code observes and reacts to that completion (Section 4).
//! [`LatencyStats`] accumulates such samples and reports mean/percentiles.

/// An accumulating collection of latency samples, in seconds.
///
/// Not thread-safe by itself; wrap in a `Mutex` (or keep one per thread and
/// [`merge`](LatencyStats::merge)) when sampling from multiple threads.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty collector with room for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Record one latency sample (seconds). Equivalent of the paper's
    /// `add_stat`.
    #[inline]
    pub fn add(&mut self, seconds: f64) {
        self.samples.push(seconds);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Absorb all samples from `other`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Arithmetic mean in seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum sample in seconds (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Maximum sample in seconds (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// `q`-quantile (0.0 ..= 1.0) by nearest-rank on a sorted copy
    /// (0.0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Median (p50) in seconds.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the lowest `keep` fraction of samples (0.0 < keep <= 1.0).
    ///
    /// Microbenchmarks on shared machines pick up rare multi-millisecond
    /// preemption outliers; a top-trimmed mean recovers the underlying
    /// distribution (0.0 when empty).
    pub fn trimmed_mean(&self, keep: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
        let n =
            ((sorted.len() as f64 * keep.clamp(0.0, 1.0)).ceil() as usize).clamp(1, sorted.len());
        sorted[..n].iter().sum::<f64>() / n as f64
    }

    /// One-line human-readable summary with values in microseconds —
    /// the paper's `report_stat`.
    pub fn report(&self, label: &str) -> String {
        format!(
            "{label}: n={} mean={:.3}us p50={:.3}us p95={:.3}us min={:.3}us max={:.3}us",
            self.len(),
            self.mean() * 1e6,
            self.median() * 1e6,
            self.quantile(0.95) * 1e6,
            self.min() * 1e6,
            self.max() * 1e6,
        )
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    /// Map the +/- infinity produced by folding an empty iterator to 0.0.
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn mean_of_known_values() {
        let mut s = LatencyStats::new();
        for v in [1.0, 2.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn quantiles_on_sorted_ranks() {
        let mut s = LatencyStats::new();
        for v in 0..100 {
            s.add(v as f64);
        }
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 99.0);
        assert!((s.quantile(0.95) - 94.0).abs() <= 1.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let mut s = LatencyStats::new();
        s.add(5.0);
        assert_eq!(s.quantile(-1.0), 5.0);
        assert_eq!(s.quantile(2.0), 5.0);
    }

    #[test]
    fn single_sample_dominates_every_stat() {
        let mut s = LatencyStats::with_capacity(1);
        s.add(4.5);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.mean(), 4.5);
        assert_eq!(s.min(), 4.5);
        assert_eq!(s.max(), 4.5);
        // Every quantile of a one-sample distribution is that sample.
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 4.5);
        }
        assert_eq!(s.trimmed_mean(0.5), 4.5);
    }

    #[test]
    fn nearest_rank_rounds_to_closest_sample() {
        // Four samples: ranks 0..=3; nearest-rank maps q to round(3q).
        let mut s = LatencyStats::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            s.add(v);
        }
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(0.33), 20.0); // 3*0.33 = 0.99 -> rank 1
        assert_eq!(s.quantile(0.5), 30.0); // 3*0.5 = 1.5 -> rank 2 (round half up)
        assert_eq!(s.quantile(0.84), 40.0); // 3*0.84 = 2.52 -> rank 3
        assert_eq!(s.quantile(1.0), 40.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyStats::new();
        a.add(1.0);
        let mut b = LatencyStats::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn merge_with_empty_is_noop_both_ways() {
        let mut a = LatencyStats::new();
        a.add(2.0);
        a.merge(&LatencyStats::new());
        assert_eq!(a.len(), 1);
        assert_eq!(a.mean(), 2.0);

        let mut e = LatencyStats::new();
        e.merge(&a);
        assert_eq!(e.len(), 1);
        assert_eq!(e.median(), 2.0);
    }

    #[test]
    fn report_contains_label_and_count() {
        let mut s = LatencyStats::new();
        s.add(1e-6);
        let r = s.report("dummy");
        assert!(r.contains("dummy"));
        assert!(r.contains("n=1"));
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let mut s = LatencyStats::new();
        for _ in 0..9 {
            s.add(1.0);
        }
        s.add(1000.0); // preemption spike
        assert!(s.mean() > 100.0);
        assert!((s.trimmed_mean(0.9) - 1.0).abs() < 1e-12);
        assert_eq!(LatencyStats::new().trimmed_mean(0.9), 0.0);
        // keep=1.0 equals the plain mean.
        assert!((s.trimmed_mean(1.0) - s.mean()).abs() < 1e-9);
    }

    #[test]
    fn unordered_inserts_still_sort_for_quantiles() {
        let mut s = LatencyStats::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            s.add(v);
        }
        assert_eq!(s.median(), 5.0);
    }
}

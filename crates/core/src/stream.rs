//! `MPIX_Stream`: an explicit serial execution context owning a progress
//! engine (paper Sections 3.1–3.2).
//!
//! All operations attached to a stream are serialized by the stream's engine
//! lock; distinct streams share nothing, so threads driving different
//! streams never contend (the fix for the paper's Figure 9 contention,
//! demonstrated flat in Figure 11).
//!
//! [`Stream::global`] plays the role of `MPIX_STREAM_NULL` for purely local
//! (non-MPI) use; a message-passing runtime such as `mpfa-mpi` gives each
//! rank its own default stream instead, since in-process ranks model what
//! would be separate OS processes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use crate::sync::InjectQueue;
use crate::sync::Mutex;

use crate::engine::{Engine, ProgressOutcome, ProgressState};
use crate::hook::{HookId, ProgressHook, SubsystemClass};
use crate::task::{AsyncTask, TaskId};
use crate::wtime::wtime;

/// Process-unique stream identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) u64);

impl StreamId {
    /// Raw numeric value (stable for the life of the process).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Creation-time hints for a stream — the `MPI_Info` argument of
/// `MPIX_Stream_create`, reduced to the knobs this engine understands.
#[derive(Debug, Clone, Default)]
pub struct StreamHints {
    name: Option<String>,
    skip_mask: u8,
}

impl StreamHints {
    /// No hints: poll every subsystem class.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a diagnostic name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Permanently skip a subsystem class on this stream (e.g. skip
    /// [`SubsystemClass::Netmod`] for a stream that never touches
    /// inter-node communication — the paper's Section 3.2 example).
    #[must_use]
    pub fn skip(mut self, class: SubsystemClass) -> Self {
        self.skip_mask |= class.bit();
        self
    }

    fn to_state(&self) -> ProgressState {
        let mut st = ProgressState::default();
        for c in SubsystemClass::ALL {
            if self.skip_mask & c.bit() != 0 {
                st = st.skip(c);
            }
        }
        st
    }
}

pub(crate) struct StreamInner {
    id: StreamId,
    name: Option<String>,
    base_state: ProgressState,
    engine: Mutex<Engine>,
    /// Lock-free injection queue so `async_start` never blocks behind a
    /// progress call in flight on another thread.
    inject: InjectQueue<Box<dyn AsyncTask>>,
    /// Pending user tasks: queued + in-engine (not yet Done/poisoned).
    pending: AtomicUsize,
    /// Total progress invocations (diagnostics).
    progress_calls: AtomicU64,
    /// Ids for injected tasks (assigned before they reach the engine).
    next_injected: AtomicU64,
    /// Contended [`Stream::progress`] callers currently waiting for the
    /// lock holder to sweep on their behalf (flat combining).
    waiters: AtomicUsize,
    /// Count of completed sweeps, published after each one. A waiter that
    /// registered at epoch `e` is satisfied once it observes `e + 2`: the
    /// sweep that published `e + 2` *started* after `e + 1` was published,
    /// which in turn is after the waiter's registration — so one full
    /// drain + poll ran after everything the waiter did beforehand.
    sweep_epoch: AtomicU64,
    /// Packed [`ProgressOutcome`] of the most recent completed sweep (see
    /// [`pack_outcome`]); what a combined waiter reports to its caller.
    last_sweep: AtomicU64,
    /// Continuations of completed requests awaiting execution — the
    /// deferred-execution list of `MPIX_Continue`. Filled at request
    /// completion (which happens under the engine lock, inside a sweep),
    /// drained by every progress caller *after* releasing the lock, so a
    /// continuation observes the stream unlocked and may post operations,
    /// attach further continuations, or wait.
    ready_conts: InjectQueue<Box<dyn FnOnce() + Send>>,
    /// Queued-but-unexecuted continuations (diagnostics + drain gating).
    conts_pending: AtomicUsize,
}

/// An explicit progress stream — `MPIX_Stream`.
///
/// Cheap to clone (`Arc` handle). Dropping the last handle frees the stream
/// (`MPIX_Stream_free`); hooks and tasks still registered are dropped with
/// it.
#[derive(Clone)]
pub struct Stream {
    inner: Arc<StreamInner>,
}

/// A non-owning stream reference, used by requests to drive progress
/// without creating reference cycles.
#[derive(Clone)]
pub struct StreamRef {
    pub(crate) inner: Weak<StreamInner>,
}

impl StreamRef {
    /// Upgrade to a full handle if the stream is still alive.
    pub fn upgrade(&self) -> Option<Stream> {
        self.inner.upgrade().map(|inner| Stream { inner })
    }
}

fn next_stream_id() -> StreamId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    StreamId(NEXT.fetch_add(1, Ordering::Relaxed))
}

impl Stream {
    /// Create a stream with default hints — `MPIX_Stream_create(MPI_INFO_NULL, ..)`.
    pub fn create() -> Stream {
        Self::with_hints(StreamHints::new())
    }

    /// Create a stream with hints — `MPIX_Stream_create(info, ..)`.
    pub fn with_hints(hints: StreamHints) -> Stream {
        Stream {
            inner: Arc::new(StreamInner {
                id: next_stream_id(),
                base_state: hints.to_state(),
                name: hints.name,
                engine: Mutex::new(Engine::new()),
                inject: InjectQueue::new(),
                pending: AtomicUsize::new(0),
                progress_calls: AtomicU64::new(0),
                next_injected: AtomicU64::new(1 << 32),
                waiters: AtomicUsize::new(0),
                sweep_epoch: AtomicU64::new(0),
                last_sweep: AtomicU64::new(0),
                ready_conts: InjectQueue::new(),
                conts_pending: AtomicUsize::new(0),
            }),
        }
    }

    /// The process-global default stream — `MPIX_STREAM_NULL` for code that
    /// is not bound to a message-passing rank context.
    pub fn global() -> Stream {
        static GLOBAL: OnceLock<Stream> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Stream::with_hints(StreamHints::new().name("global")))
            .clone()
    }

    /// This stream's id.
    pub fn id(&self) -> StreamId {
        self.inner.id
    }

    /// Diagnostic name, if any.
    pub fn name(&self) -> Option<&str> {
        self.inner.name.as_deref()
    }

    /// A weak reference for storing inside requests/hooks without keeping
    /// the stream alive.
    pub fn weak(&self) -> StreamRef {
        StreamRef {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Register a subsystem progress hook. Returns an id usable with
    /// [`Stream::unregister_hook`].
    pub fn register_hook(&self, hook: impl ProgressHook + 'static) -> HookId {
        self.register_boxed_hook(Box::new(hook))
    }

    /// Register a boxed subsystem progress hook.
    pub fn register_boxed_hook(&self, hook: Box<dyn ProgressHook>) -> HookId {
        mpfa_obs::record(|| mpfa_obs::EventKind::HookRegistered {
            stream: self.inner.id.0,
            class: hook.class() as u8,
            name: mpfa_obs::NameId::intern(hook.name()),
        });
        self.inner.engine.lock().register_hook(hook)
    }

    /// Remove a previously registered hook. Returns false if unknown.
    pub fn unregister_hook(&self, id: HookId) -> bool {
        self.inner.engine.lock().unregister_hook(id)
    }

    /// Number of registered subsystem hooks.
    pub fn hook_count(&self) -> usize {
        self.inner.engine.lock().hook_count()
    }

    /// Install (or with `None`, remove) a deterministic-simulation hook
    /// deciding the order user async tasks are polled each sweep. See
    /// [`crate::engine::SweepOrder`]; production streams leave this unset
    /// and poll in registration order.
    pub fn set_sweep_order(&self, hook: Option<std::sync::Arc<dyn crate::engine::SweepOrder>>) {
        self.inner.engine.lock().set_sweep_order(hook)
    }

    /// Start a user async task on this stream — `MPIX_Async_start`.
    ///
    /// Never blocks behind an in-flight progress call: the task is pushed to
    /// a lock-free injection queue and spliced into the engine at the start
    /// of the next progress call.
    pub fn async_start<F>(&self, poll: F) -> TaskId
    where
        F: FnMut(&mut crate::task::AsyncThing) -> crate::task::AsyncPoll + Send + 'static,
    {
        self.async_start_task(poll)
    }

    /// [`Stream::async_start`] for non-closure [`AsyncTask`] values.
    pub fn async_start_task(&self, task: impl AsyncTask + 'static) -> TaskId {
        let id = TaskId(self.inner.next_injected.fetch_add(1, Ordering::Relaxed));
        self.inner.pending.fetch_add(1, Ordering::Release);
        // Recorded at injection (not at the drain inside a progress call)
        // so a task started on a never-polled stream is still visible to
        // the doctor's no-poller check.
        mpfa_obs::record(|| mpfa_obs::EventKind::TaskStart {
            stream: self.inner.id.0,
            task: id.0,
        });
        self.inner.inject.push(Box::new(task));
        id
    }

    /// Number of user tasks not yet completed (queued + live).
    pub fn pending_tasks(&self) -> usize {
        self.inner.pending.load(Ordering::Acquire)
    }

    /// Total progress invocations so far (diagnostics).
    pub fn progress_calls(&self) -> u64 {
        self.inner.progress_calls.load(Ordering::Relaxed)
    }

    /// Total user tasks discarded because their poll panicked.
    pub fn poisoned_tasks(&self) -> u64 {
        self.inner.engine.lock().poisoned_total()
    }

    /// Snapshot of the stream's cumulative progress counters.
    pub fn stats(&self) -> crate::engine::EngineStats {
        self.inner.engine.lock().stats()
    }

    /// Drive one collated progress sweep — `MPIX_Stream_progress(stream)`.
    ///
    /// Contention is turned into useful work instead of a lock convoy
    /// (flat combining): a caller that finds the engine lock held registers
    /// as a waiter and spins briefly, while the lock holder re-sweeps on
    /// behalf of registered waiters before releasing. The combined caller
    /// returns the outcome of a sweep that fully ran after it arrived. If
    /// the holder releases first, the spinning caller takes the lock
    /// itself; after a bounded spin it falls back to a blocking sweep, so
    /// the progress guarantee is unchanged.
    pub fn progress(&self) -> ProgressOutcome {
        let out = self.progress_inner();
        self.run_ready_continuations();
        out
    }

    /// The sweep itself; every return path has the [`ReentryGuard`] and the
    /// engine lock released, so the caller can drain continuations.
    fn progress_inner(&self) -> ProgressOutcome {
        let _reentry = ReentryGuard::enter(self.inner.id);
        if let Some(mut engine) = self.inner.engine.try_lock() {
            return self.sweep_holding(&mut engine, &self.inner.base_state.clone());
        }
        mpfa_obs::global_counters()
            .engine_lock_contended
            .fetch_add(1, Ordering::Relaxed);

        // Register, then read the epoch: the sweep that publishes
        // `target` is guaranteed to have started after this point.
        self.inner.waiters.fetch_add(1, Ordering::SeqCst);
        let target = self.inner.sweep_epoch.load(Ordering::Acquire) + 2;
        let mut spins = 0u32;
        loop {
            // The holder may release before serving us — take over.
            if let Some(mut engine) = self.inner.engine.try_lock() {
                self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
                return self.sweep_holding(&mut engine, &self.inner.base_state.clone());
            }
            if self.inner.sweep_epoch.load(Ordering::Acquire) >= target {
                self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
                mpfa_obs::global_counters()
                    .combining_handoffs
                    .fetch_add(1, Ordering::Relaxed);
                return unpack_outcome(self.inner.last_sweep.load(Ordering::Acquire));
            }
            spins += 1;
            if spins > COMBINING_SPIN_LIMIT {
                // Holder is wedged in a long sweep (or past its combining
                // budget): fall back to the blocking path.
                self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
                let mut engine = self.inner.engine.lock();
                return self.sweep_holding(&mut engine, &self.inner.base_state.clone());
            }
            // Single-core friendly: let the holder run.
            std::thread::yield_now();
        }
    }

    /// Progress with an explicit per-call [`ProgressState`]. The stream's
    /// creation hints are still honored (a class skipped by hints stays
    /// skipped). Blocks on the engine lock if another thread is
    /// mid-progress (the pre-combining fallback semantics).
    ///
    /// # Panics
    ///
    /// Panics if called recursively from inside this stream's own progress
    /// (i.e. from a hook or a task's `poll`). The paper prohibits recursive
    /// progress ("invoking progress recursively inside the poll_fn is
    /// prohibited"); without this check the engine lock would deadlock.
    /// Use [`crate::Request::is_complete`] inside polls instead.
    pub fn progress_with(&self, state: &ProgressState) -> ProgressOutcome {
        let merged = merge_states(&self.inner.base_state, state);
        let out = {
            let _reentry = ReentryGuard::enter(self.inner.id);
            let mut engine = self.inner.engine.lock();
            self.sweep_holding(&mut engine, &merged)
        };
        self.run_ready_continuations();
        out
    }

    /// One sweep with the engine lock held, plus the flat-combining
    /// service loop: while contended `progress` callers are registered,
    /// re-sweep on their behalf (bounded) before releasing the lock.
    /// Extra sweeps use the stream's base state — that is what the
    /// combined callers asked for.
    fn sweep_holding(&self, engine: &mut Engine, state: &ProgressState) -> ProgressOutcome {
        self.inner.progress_calls.fetch_add(1, Ordering::Relaxed);
        self.drain_inject(engine);
        let out = engine.poll(state, self.inner.id);
        self.settle_pending(&out);
        self.publish_sweep(&out);
        let mut served = 0u32;
        while served < COMBINING_MAX_RESWEEPS && self.inner.waiters.load(Ordering::SeqCst) > 0 {
            self.inner.progress_calls.fetch_add(1, Ordering::Relaxed);
            self.drain_inject(engine);
            let extra = engine.poll(&self.inner.base_state.clone(), self.inner.id);
            self.settle_pending(&extra);
            self.publish_sweep(&extra);
            served += 1;
        }
        out
    }

    /// Publish a completed sweep: outcome first, then the epoch bump that
    /// waiters gate on.
    fn publish_sweep(&self, out: &ProgressOutcome) {
        self.inner
            .last_sweep
            .store(pack_outcome(out), Ordering::Release);
        self.inner.sweep_epoch.fetch_add(1, Ordering::Release);
    }

    /// Reconcile the lock-free pending counter with a sweep's outcome.
    /// Spawned children are added before finished tasks are subtracted so
    /// the counter never transiently underflows.
    fn settle_pending(&self, out: &ProgressOutcome) {
        if out.tasks_spawned > 0 {
            self.inner
                .pending
                .fetch_add(out.tasks_spawned, Ordering::Release);
        }
        let finished = out.tasks_completed + out.tasks_poisoned;
        if finished > 0 {
            self.inner.pending.fetch_sub(finished, Ordering::Release);
        }
    }

    /// Like [`Stream::progress`] but returns `None` immediately when
    /// another thread holds the engine (no spinning, no combining wait).
    pub fn try_progress(&self) -> Option<ProgressOutcome> {
        let out = {
            let _reentry = ReentryGuard::enter(self.inner.id);
            let Some(mut engine) = self.inner.engine.try_lock() else {
                mpfa_obs::global_counters()
                    .engine_lock_contended
                    .fetch_add(1, Ordering::Relaxed);
                return None;
            };
            self.sweep_holding(&mut engine, &self.inner.base_state.clone())
        };
        self.run_ready_continuations();
        Some(out)
    }

    fn drain_inject(&self, engine: &mut Engine) {
        while let Some(task) = self.inner.inject.pop() {
            engine.add_task(task);
        }
    }

    /// Queue a completed request's continuation for deferred execution.
    /// Lock-free push: completion happens inside a sweep, with the engine
    /// lock held, and must never block there.
    pub(crate) fn enqueue_continuation(&self, cb: Box<dyn FnOnce() + Send>) {
        self.inner.conts_pending.fetch_add(1, Ordering::Release);
        self.inner.ready_conts.push(cb);
    }

    /// Continuations queued but not yet executed (a nonzero value that
    /// never drains means nobody is progressing this stream — the
    /// doctor's "completed request with unfired continuation" pathology).
    pub fn pending_continuations(&self) -> usize {
        self.inner.conts_pending.load(Ordering::Acquire)
    }

    /// Run every queued continuation. Called with no locks held: a
    /// continuation may post operations, attach further continuations
    /// (which land back on this queue and run in the same loop if their
    /// request is already complete), or even progress this stream
    /// recursively — the pop-based loop makes each callback run exactly
    /// once regardless of nesting.
    fn run_ready_continuations(&self) {
        while let Some(cb) = self.inner.ready_conts.pop() {
            // Account before running so a panicking callback (which
            // propagates to the progress caller) can't wedge the pending
            // count that `drain` gates on.
            self.inner.conts_pending.fetch_sub(1, Ordering::Release);
            mpfa_obs::global_counters()
                .continuations_fired
                .fetch_add(1, Ordering::Relaxed);
            cb();
        }
    }

    /// Spin progress until no user tasks remain or `timeout_s` elapses.
    /// Returns true if drained. This is the `MPI_Finalize` behavior of the
    /// paper's Listing 1.2 ("MPI_Finalize will spin progress until all async
    /// tasks complete"), with a safety timeout.
    pub fn drain(&self, timeout_s: f64) -> bool {
        let deadline = wtime() + timeout_s;
        while self.pending_tasks() > 0 || self.pending_continuations() > 0 {
            self.progress();
            if wtime() >= deadline {
                return self.pending_tasks() == 0 && self.pending_continuations() == 0;
            }
        }
        true
    }

    /// Spin progress until `cond()` holds or `timeout_s` elapses. Returns
    /// true if the condition was observed. This is the explicit wait block
    /// of Listing 1.3 (`while (counter > 0) MPIX_Stream_progress(...)`).
    pub fn progress_until(&self, mut cond: impl FnMut() -> bool, timeout_s: f64) -> bool {
        let deadline = wtime() + timeout_s;
        let mut idle = 0u32;
        loop {
            if cond() {
                return true;
            }
            if wtime() >= deadline {
                return cond();
            }
            if self.progress().made_progress() {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                crate::spin::idle_backoff(idle);
            }
        }
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("pending_tasks", &self.pending_tasks())
            .finish()
    }
}

/// Detects recursive progress on the same stream from the same thread and
/// converts the would-be deadlock into a panic (caught by the task sweep's
/// panic isolation, so an offending task is poisoned rather than hanging the
/// process).
struct ReentryGuard {
    id: StreamId,
}

thread_local! {
    static IN_PROGRESS: std::cell::RefCell<Vec<StreamId>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl ReentryGuard {
    fn enter(id: StreamId) -> ReentryGuard {
        IN_PROGRESS.with(|v| {
            let mut v = v.borrow_mut();
            assert!(
                !v.contains(&id),
                "recursive MPIX progress on stream {id:?} — progress must not \
                 be invoked from inside a progress hook or async task poll"
            );
            v.push(id);
        });
        ReentryGuard { id }
    }
}

impl Drop for ReentryGuard {
    fn drop(&mut self) {
        IN_PROGRESS.with(|v| {
            let mut v = v.borrow_mut();
            if let Some(pos) = v.iter().rposition(|s| *s == self.id) {
                v.remove(pos);
            }
        });
    }
}

/// Yields a contended `progress` caller performs before abandoning the
/// combining wait for a blocking lock. Generous: two sweeps normally
/// complete within a few yields, and the fallback only exists so a caller
/// can never be starved by a holder stuck inside a pathological hook.
const COMBINING_SPIN_LIMIT: u32 = 10_000;

/// Upper bound on extra sweeps a lock holder runs on behalf of waiters
/// before releasing, so one holder cannot be captured indefinitely by a
/// steady stream of contended callers.
const COMBINING_MAX_RESWEEPS: u32 = 4;

/// Pack the fields of a [`ProgressOutcome`] a combined waiter cares about
/// into one atomic word: bit 0 = subsystem progress, then three 21-bit
/// saturating task counts. `tasks_spawned` is deliberately dropped — the
/// holder already settled the pending counter for its own sweep.
fn pack_outcome(out: &ProgressOutcome) -> u64 {
    const MASK: u64 = (1 << 21) - 1;
    let completed = (out.tasks_completed as u64).min(MASK);
    let progressed = (out.tasks_progressed as u64).min(MASK);
    let poisoned = (out.tasks_poisoned as u64).min(MASK);
    (out.subsystem_progress as u64) | completed << 1 | progressed << 22 | poisoned << 43
}

fn unpack_outcome(packed: u64) -> ProgressOutcome {
    const MASK: u64 = (1 << 21) - 1;
    ProgressOutcome {
        subsystem_progress: packed & 1 != 0,
        tasks_completed: (packed >> 1 & MASK) as usize,
        tasks_progressed: (packed >> 22 & MASK) as usize,
        tasks_poisoned: (packed >> 43 & MASK) as usize,
        tasks_spawned: 0,
    }
}

fn merge_states(base: &ProgressState, call: &ProgressState) -> ProgressState {
    let mut merged = *call;
    for c in SubsystemClass::ALL {
        if base.skips(c) {
            merged = merged.skip(c);
        }
    }
    if !base.polls_tasks() {
        merged = merged.without_tasks();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AsyncPoll, AsyncThing};
    use std::sync::atomic::AtomicBool;

    #[test]
    fn streams_have_unique_ids() {
        let a = Stream::create();
        let b = Stream::create();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn global_stream_is_singleton() {
        assert_eq!(Stream::global().id(), Stream::global().id());
    }

    #[test]
    fn clone_shares_state() {
        let a = Stream::create();
        let b = a.clone();
        a.async_start(|_t: &mut AsyncThing| AsyncPoll::Done);
        assert_eq!(b.pending_tasks(), 1);
        b.progress();
        assert_eq!(a.pending_tasks(), 0);
    }

    #[test]
    fn async_start_then_progress_completes() {
        let s = Stream::create();
        let deadline = wtime() + 0.001;
        s.async_start(move |_t: &mut AsyncThing| {
            if wtime() >= deadline {
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert_eq!(s.pending_tasks(), 1);
        assert!(s.drain(1.0));
        assert_eq!(s.pending_tasks(), 0);
        assert!(s.progress_calls() > 0);
    }

    #[test]
    fn progress_until_condition() {
        let s = Stream::create();
        let flag = Arc::new(AtomicBool::new(false));
        let f = flag.clone();
        let mut polls = 0;
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls >= 5 {
                f.store(true, Ordering::Release);
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(s.progress_until(|| flag.load(Ordering::Acquire), 1.0));
    }

    #[test]
    fn progress_until_times_out() {
        let s = Stream::create();
        assert!(!s.progress_until(|| false, 0.01));
    }

    #[test]
    fn hints_skip_subsystem_permanently() {
        use crate::hook::ProgressHook;
        struct Netmod(Arc<AtomicUsize>);
        impl ProgressHook for Netmod {
            fn name(&self) -> &str {
                "netmod"
            }
            fn class(&self) -> SubsystemClass {
                SubsystemClass::Netmod
            }
            fn poll(&self) -> bool {
                self.0.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
        let polls = Arc::new(AtomicUsize::new(0));
        let s = Stream::with_hints(StreamHints::new().skip(SubsystemClass::Netmod));
        s.register_hook(Netmod(polls.clone()));
        s.progress();
        assert_eq!(polls.load(Ordering::Relaxed), 0);
        // An explicit per-call state cannot un-skip a hinted class.
        s.progress_with(&ProgressState::all());
        assert_eq!(polls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn try_progress_skips_when_contended() {
        let s = Stream::create();
        let guard = s.inner.engine.lock();
        assert!(s.try_progress().is_none());
        drop(guard);
        assert!(s.try_progress().is_some());
    }

    #[test]
    fn pending_count_tracks_spawned_children() {
        let s = Stream::create();
        s.async_start(|t: &mut AsyncThing| {
            t.spawn(|_t: &mut AsyncThing| AsyncPoll::Done);
            AsyncPoll::Done
        });
        assert_eq!(s.pending_tasks(), 1);
        s.progress(); // parent done (-1), child spawned (+1)
        assert_eq!(s.pending_tasks(), 1);
        assert!(s.drain(1.0));
        assert_eq!(s.pending_tasks(), 0);
    }

    #[test]
    fn weak_upgrade_while_alive_only() {
        let s = Stream::create();
        let w = s.weak();
        assert!(w.upgrade().is_some());
        drop(s);
        assert!(w.upgrade().is_none());
    }

    #[test]
    fn poisoned_task_counted() {
        let s = Stream::create();
        s.async_start(|_t: &mut AsyncThing| -> AsyncPoll { panic!("boom") });
        s.progress();
        assert_eq!(s.poisoned_tasks(), 1);
        assert_eq!(s.pending_tasks(), 0);
    }

    #[test]
    fn concurrent_progress_on_one_stream_is_safe() {
        let s = Stream::create();
        let n = 64;
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..n {
            let d = done.clone();
            let deadline = wtime() + 0.002;
            s.async_start(move |_t: &mut AsyncThing| {
                if wtime() >= deadline {
                    d.fetch_add(1, Ordering::Relaxed);
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            });
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    while s.pending_tasks() > 0 {
                        s.progress();
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), n);
    }

    #[test]
    fn concurrent_streams_are_independent() {
        let streams: Vec<Stream> = (0..4).map(|_| Stream::create()).collect();
        std::thread::scope(|scope| {
            for s in &streams {
                let s = s.clone();
                scope.spawn(move || {
                    let deadline = wtime() + 0.002;
                    s.async_start(move |_t: &mut AsyncThing| {
                        if wtime() >= deadline {
                            AsyncPoll::Done
                        } else {
                            AsyncPoll::Pending
                        }
                    });
                    assert!(s.drain(1.0));
                });
            }
        });
        for s in &streams {
            assert_eq!(s.pending_tasks(), 0);
        }
    }

    #[test]
    fn recursive_progress_is_poisoned_not_deadlocked() {
        let s = Stream::create();
        let s2 = s.clone();
        s.async_start(move |_t: &mut AsyncThing| {
            // Prohibited: progress from inside a poll. Must panic (and be
            // isolated as a poisoned task), not deadlock.
            s2.progress();
            AsyncPoll::Done
        });
        s.progress();
        assert_eq!(s.poisoned_tasks(), 1);
        // Stream still usable afterwards.
        s.async_start(|_t: &mut AsyncThing| AsyncPoll::Done);
        assert!(s.drain(1.0));
    }

    #[test]
    fn nested_progress_on_different_streams_is_allowed() {
        let a = Stream::create();
        let b = Stream::create();
        let b2 = b.clone();
        let done = Arc::new(AtomicBool::new(false));
        let d = done.clone();
        b.async_start(move |_t: &mut AsyncThing| {
            d.store(true, Ordering::Release);
            AsyncPoll::Done
        });
        a.async_start(move |_t: &mut AsyncThing| {
            // Progressing a *different* stream from a poll is legal (if
            // inadvisable for latency).
            b2.progress();
            AsyncPoll::Done
        });
        a.progress();
        assert_eq!(a.poisoned_tasks(), 0);
        assert!(done.load(Ordering::Acquire));
    }

    #[test]
    fn injection_while_progressing_is_lock_free() {
        // async_start from thread B while thread A spins progress must not
        // deadlock and the task must eventually run.
        let s = Stream::create();
        let started = Arc::new(AtomicBool::new(false));
        let st = started.clone();
        std::thread::scope(|scope| {
            let s2 = s.clone();
            scope.spawn(move || {
                while !st.load(Ordering::Acquire) {
                    s2.progress();
                }
                // Finish off remaining tasks.
                assert!(s2.drain(1.0));
            });
            let flag = started.clone();
            s.async_start(move |_t: &mut AsyncThing| {
                flag.store(true, Ordering::Release);
                AsyncPoll::Done
            });
        });
        assert_eq!(s.pending_tasks(), 0);
    }
}

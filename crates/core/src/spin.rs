//! Busy-wait primitives used by wait blocks, benchmarks and failure
//! injection.
//!
//! The paper models a *wait block* as a busy poll loop (Section 2.1/2.2);
//! these helpers are the building blocks for such loops and for the
//! artificial poll-function delays of Figure 8.

use crate::wtime::wtime;

/// Busy-spin for `seconds` of wall-clock time by polling [`wtime`].
///
/// This is exactly how the paper implements the Figure 8 poll-function
/// delays ("The delay is implemented by busy-polling `MPI_Wtime`").
#[inline]
pub fn busy_wait(seconds: f64) {
    let deadline = wtime() + seconds;
    while wtime() < deadline {
        std::hint::spin_loop();
    }
}

/// Busy-spin until `cond` returns true or `timeout_s` elapses.
/// Returns `true` if the condition was observed before the timeout.
pub fn spin_until(mut cond: impl FnMut() -> bool, timeout_s: f64) -> bool {
    let deadline = wtime() + timeout_s;
    loop {
        if cond() {
            return true;
        }
        if wtime() >= deadline {
            return false;
        }
        std::hint::spin_loop();
    }
}

/// Escalating backoff for a wait loop that has seen `idle` consecutive
/// progress sweeps with nothing to do.
///
/// A wait block that spins flat-out is right when completion is
/// microseconds away, but on an oversubscribed box (many ranks per
/// core) every spinning waiter steals the CPU from the rank that would
/// have produced its message — at 64 ranks per core the job becomes a
/// context-switch storm that makes *no* rank fast. So waiters escalate:
/// pure spin while fresh (latency unchanged for the common case), then
/// `yield_now` to hand the core to a runnable sibling, then real sleeps
/// capped at 1ms so a parked world costs ~1k wakeups/s per rank instead
/// of a saturated core. Any observed progress resets the caller's
/// counter back to the spin tier.
#[inline]
pub fn idle_backoff(idle: u32) {
    match idle {
        0..=63 => std::hint::spin_loop(),
        64..=255 => std::thread::yield_now(),
        256..=1023 => std::thread::sleep(std::time::Duration::from_micros(100)),
        _ => std::thread::sleep(std::time::Duration::from_millis(1)),
    }
}

/// Perform `units` of synthetic CPU work (a cheap multiply-add chain),
/// returning a value that depends on the computation so the optimizer cannot
/// remove it. Used as the "computation" in overlap experiments.
pub fn compute_units(units: u64) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_wait_waits_at_least_requested() {
        let t0 = wtime();
        busy_wait(0.002);
        assert!(wtime() - t0 >= 0.002);
    }

    #[test]
    fn spin_until_true_immediately() {
        assert!(spin_until(|| true, 0.0));
    }

    #[test]
    fn spin_until_times_out() {
        let t0 = wtime();
        assert!(!spin_until(|| false, 0.005));
        assert!(wtime() - t0 >= 0.005);
    }

    #[test]
    fn spin_until_observes_late_condition() {
        let deadline = wtime() + 0.002;
        assert!(spin_until(|| wtime() >= deadline, 1.0));
    }

    #[test]
    fn compute_units_depends_on_input() {
        assert_ne!(compute_units(10), compute_units(11));
    }

    #[test]
    fn compute_units_zero() {
        // Still returns the seed; must not panic.
        let _ = compute_units(0);
    }
}

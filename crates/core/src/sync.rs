//! Minimal synchronization primitives used across the workspace.
//!
//! The build must work in fully-offline environments, so instead of
//! pulling in `parking_lot`/`crossbeam` this module wraps `std::sync`
//! with the two behaviors the codebase relies on:
//!
//! * [`Mutex::lock`] returns the guard directly and ignores poisoning —
//!   a panic inside a critical section (already contained by the
//!   engine's `catch_unwind`) must not wedge every later locker.
//! * [`InjectQueue`] is a lock-free multi-producer injection queue
//!   (Treiber stack on push, FIFO on the single-consumer drain side) so
//!   `async_start` never blocks behind a progress sweep.

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`:
/// poisoning is ignored, matching the `parking_lot` semantics the
/// codebase was written against.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A poisoned lock (a
    /// panic while held) is treated as unlocked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait_for`] can temporarily hand the underlying guard to
/// `std`'s condvar and put it back; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

/// Whether a [`Condvar::wait_for`] returned because time ran out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`], `parking_lot`-style: the
/// guard is passed by `&mut` and remains valid after the wait.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification
    /// or for `timeout`, whichever comes first; the lock is re-acquired
    /// before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A multi-producer injection queue with lock-free `push`.
///
/// Producers push onto an atomic intrusive stack (one allocation and a
/// CAS loop — never a lock), so task injection can't block behind a
/// progress sweep that holds the engine lock. The consumer side drains
/// the stack in batches and re-reverses it through a small buffer to
/// preserve FIFO order; `pop` is intended for a single consumer at a
/// time (in the engine it runs under the engine lock) but is safe — just
/// not scalable — if misused concurrently.
pub struct InjectQueue<T> {
    head: AtomicPtr<Node<T>>,
    drained: Mutex<VecDeque<T>>,
}

impl<T> InjectQueue<T> {
    /// Create an empty queue.
    pub fn new() -> InjectQueue<T> {
        InjectQueue {
            head: AtomicPtr::new(ptr::null_mut()),
            drained: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a value. Lock-free: one heap allocation plus a CAS loop.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` was just allocated above and is not yet
            // visible to any other thread.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Pop the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        let mut drained = self.drained.lock();
        if let Some(v) = drained.pop_front() {
            return Some(v);
        }
        // Take the whole stack (newest first) and reverse it into the
        // FIFO buffer.
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        while !node.is_null() {
            // Safety: we own the detached chain exclusively — `swap`
            // removed it from all producers' view.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            drained.push_front(boxed.value);
        }
        drained.pop_front()
    }

    /// True when no value is immediately available.
    pub fn is_empty(&self) -> bool {
        self.drained.lock().is_empty() && self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Default for InjectQueue<T> {
    fn default() -> InjectQueue<T> {
        InjectQueue::new()
    }
}

impl<T> Drop for InjectQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// Safety: values travel between threads through the queue, so T must be
// Send; there is no way to get a &T out, so no Sync bound on T needed.
unsafe impl<T: Send> Send for InjectQueue<T> {}
unsafe impl<T: Send> Sync for InjectQueue<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: later lockers proceed normally.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakeup_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        let mut timed_out = false;
        while !*started {
            timed_out = cv
                .wait_for(&mut started, Duration::from_secs(5))
                .timed_out();
            if timed_out {
                break;
            }
        }
        assert!(*started);
        assert!(!timed_out);
        t.join().unwrap();

        // Pure timeout path.
        let r = cv.wait_for(&mut started, Duration::from_millis(1));
        assert!(r.timed_out());
        // Guard is still usable after the wait.
        *started = false;
        assert!(!*started);
    }

    #[test]
    fn inject_queue_fifo() {
        let q = InjectQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn inject_queue_interleaved_drains_stay_fifo() {
        let q = InjectQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        q.push(3);
        // 2 was already drained into the FIFO buffer; 3 is newer.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn inject_queue_concurrent_producers_lose_nothing() {
        const THREADS: usize = 8;
        const PER: usize = 1000;
        let q = Arc::new(InjectQueue::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(t * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = vec![false; THREADS * PER];
        while let Some(v) = q.pop() {
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "lost items");
    }

    #[test]
    fn inject_queue_drop_frees_pending() {
        let q = InjectQueue::new();
        for i in 0..100 {
            q.push(Box::new(i));
        }
        drop(q); // must not leak (checked under miri/asan; here: no crash)
    }
}

//! # mpfa-core — the "MPI Progress For All" extension engine
//!
//! This crate implements the core contribution of *MPI Progress For All*
//! (Zhou, Latham, Raffenetti, Guo, Thakur — SC 2024): a set of extensions
//! that make communication-runtime progress **explicit**, **targeted**, and
//! **interoperable** with user-level asynchronous tasks.
//!
//! The C-level MPIX APIs proposed by the paper map onto this crate as:
//!
//! | paper | here |
//! |---|---|
//! | `MPIX_Stream_create(info, &stream)` | [`Stream::create`] / [`Stream::with_hints`] |
//! | `MPIX_STREAM_NULL` | [`Stream::global`] (process-global default stream) |
//! | `MPIX_Stream_progress(stream)` | [`Stream::progress`] |
//! | `MPIX_Async_start(poll_fn, state, stream)` | [`async_start`] / [`Stream::async_start`] |
//! | `MPIX_Async_get_state` | the task value itself (`self` in [`AsyncTask::poll`]) |
//! | `MPIX_Async_spawn` | [`AsyncThing::spawn`] |
//! | `MPIX_ASYNC_DONE` / `NOPROGRESS` / `PENDING` | [`AsyncPoll`] |
//! | `MPIX_Request_is_complete(req)` | [`Request::is_complete`] |
//! | `MPI_Grequest_start` / `MPI_Grequest_complete` | [`grequest::Grequest`] |
//! | `MPIX_Continue(req, cb, ...)` | [`Request::on_complete`] (and `.await` — [`Request`] is a `Future`) |
//!
//! ## Architecture
//!
//! A [`Stream`] is a *serial execution context* owning a collated progress
//! engine (see the paper's Listing 1.1). The engine holds two kinds of
//! entries:
//!
//! * **subsystem hooks** ([`ProgressHook`]) registered by a runtime
//!   (e.g. `mpfa-mpi` registers datatype-engine, collective-schedule,
//!   shared-memory, and network-module hooks, in exactly MPICH's order), and
//! * **user async tasks** ([`AsyncTask`]) started with [`async_start`] —
//!   the `MPIX_Async` extension.
//!
//! One call to [`Stream::progress`] polls the subsystem hooks in order,
//! short-circuiting the remaining subsystems as soon as one reports progress
//! (Listing 1.1's `goto fn_exit` policy — an empty poll of most subsystems is
//! one atomic read, but the netmod poll is not free, so it goes last and is
//! skipped whenever anything earlier progressed). User async tasks are then
//! polled unconditionally: they are the user's extension of the progress
//! engine and their poll is how completions are *observed*.
//!
//! Each stream serializes its engine behind one lock. Two threads driving the
//! *same* stream contend (the paper's Figure 9); threads driving *different*
//! streams do not (Figure 11).

#![warn(missing_docs)]

pub mod engine;
pub mod grequest;
pub mod hook;
pub mod request;
pub mod spin;
pub mod stats;
pub mod stream;
pub mod sync;
pub mod task;
pub mod wtime;

pub use engine::{EngineStats, ProgressOutcome, ProgressState, SweepOrder};
pub use grequest::{grequest_start, Grequest, GrequestOps, NoopOps};
pub use hook::{HookId, ProgressHook, SubsystemClass};
pub use request::{Completer, CompletionCounter, Continuation, Request, RequestError, Status};
pub use stream::{Stream, StreamHints, StreamId, StreamRef};
pub use task::{async_start, AsyncPoll, AsyncTask, AsyncThing, TaskId};
pub use wtime::{wtick, wtime};

//! Request objects with side-effect-free completion queries — the
//! `MPIX_Request_is_complete` extension (paper Section 3.4).
//!
//! A [`Request`] is the user-visible completion handle of an asynchronous
//! operation; the runtime completes it through the paired [`Completer`].
//! [`Request::is_complete`] is a single atomic load — "there are no side
//! effects that would interfere with other requests or other progress
//! calls" — which makes it safe (and cheap) to call from inside `MPIX_Async`
//! poll functions, where invoking progress recursively is prohibited.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::sync::Mutex;

use crate::stream::{Stream, StreamRef};
use crate::wtime::wtime;

/// A completion callback attached with [`Request::on_complete`] — the
/// `MPIX_Continue` continuation shape: it receives the request's outcome
/// (`Ok(status)` or `Err(error)`) exactly once.
pub type Continuation = Box<dyn FnOnce(Result<Status, RequestError>) + Send>;

/// State of a request's continuation slot. `Fired` means the completion
/// already dispatched earlier continuations; anything attached afterwards
/// dispatches immediately. The transition happens exactly once, under the
/// slot's lock, which is what makes every continuation fire exactly once
/// even when attach races completion (or a grequest drop).
enum ContSlot {
    Pending(Vec<Continuation>),
    Fired,
}

/// Route one continuation toward execution: enqueue on the bound stream's
/// deferred-execution list (drained after the progress sweep releases the
/// engine lock), or — when the stream is already freed and no sweep will
/// ever drain it — run inline.
fn dispatch_continuation(
    stream: &StreamRef,
    cb: Continuation,
    result: Result<Status, RequestError>,
) {
    mpfa_obs::global_counters()
        .continuations_ready
        .fetch_add(1, Ordering::Relaxed);
    match stream.upgrade() {
        Some(s) => s.enqueue_continuation(Box::new(move || cb(result))),
        None => {
            mpfa_obs::global_counters()
                .continuations_fired
                .fetch_add(1, Ordering::Relaxed);
            cb(result);
        }
    }
}

/// Completion status of a finished operation (an `MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank of the matched message (receives), or the local rank.
    pub source: i32,
    /// Message tag.
    pub tag: i32,
    /// Number of payload bytes transferred.
    pub bytes: usize,
    /// True if the operation was cancelled rather than completed.
    pub cancelled: bool,
}

impl Status {
    /// A neutral status for operations with no message metadata (sends,
    /// generalized requests, local tasks).
    pub const fn empty() -> Status {
        Status {
            source: -1,
            tag: -1,
            bytes: 0,
            cancelled: false,
        }
    }

    /// A cancelled status.
    pub const fn cancelled() -> Status {
        Status {
            source: -1,
            tag: -1,
            bytes: 0,
            cancelled: true,
        }
    }
}

impl Default for Status {
    fn default() -> Self {
        Status::empty()
    }
}

/// Why an operation finished unsuccessfully.
///
/// Errored requests still *complete* — `is_complete` flips to true and every
/// wait loop terminates — but the completion carries an error instead of a
/// normal status. This is the ULFM discipline: a failure must surface as an
/// error on the requests it dooms, never as a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The peer this operation was exchanging data with was declared dead.
    PeerFailed {
        /// World rank of the failed peer (-1 if unknown).
        rank: i32,
    },
    /// The communicator this operation ran on was revoked
    /// (`MPIX_Comm_revoke` semantics): the operation can never complete
    /// normally because some participant observed a failure.
    Revoked,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            RequestError::Revoked => write!(f, "communicator revoked"),
        }
    }
}

impl std::error::Error for RequestError {}

struct RequestInner {
    complete: AtomicBool,
    status: Mutex<Status>,
    error: Mutex<Option<RequestError>>,
    stream: StreamRef,
    /// Continuations attached via [`Request::on_complete`].
    conts: Mutex<ContSlot>,
    /// Waker of the task awaiting this request, if any (the async/await
    /// bridge). Last poll wins; woken from `Completer::finish`.
    waker: Mutex<Option<Waker>>,
}

/// The user-facing completion handle of an asynchronous operation.
///
/// Cheap to clone. The operation's owner completes it via the paired
/// [`Completer`]. Waiting drives the stream the request is bound to, so a
/// bare `req.wait()` works without a progress thread (the MPI `MPI_Wait`
/// behavior); polling [`Request::is_complete`] does *not* drive progress
/// (the extension behavior).
#[derive(Clone)]
pub struct Request {
    inner: Arc<RequestInner>,
}

/// The producer side of a [`Request`]; owned by the runtime code that
/// performs the operation.
///
/// If a `Completer` is dropped without completing, the request is completed
/// as *cancelled* — an abandoned operation must never hang its waiters.
pub struct Completer {
    inner: Arc<RequestInner>,
    done: bool,
}

impl Request {
    /// Create an incomplete request bound to `stream`, plus its completer.
    pub fn pair(stream: &Stream) -> (Request, Completer) {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(false),
            status: Mutex::new(Status::empty()),
            error: Mutex::new(None),
            stream: stream.weak(),
            conts: Mutex::new(ContSlot::Pending(Vec::new())),
            waker: Mutex::new(None),
        });
        (
            Request {
                inner: inner.clone(),
            },
            Completer { inner, done: false },
        )
    }

    /// Create an already-complete request (e.g. a lightweight/buffered send
    /// that finished inside the initiation call — Figure 1(a)).
    pub fn completed(stream: &Stream, status: Status) -> Request {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(true),
            status: Mutex::new(status),
            error: Mutex::new(None),
            stream: stream.weak(),
            conts: Mutex::new(ContSlot::Fired),
            waker: Mutex::new(None),
        });
        Request { inner }
    }

    /// Create an already-failed request (e.g. a send initiated toward a rank
    /// the runtime already knows is dead — it fails at initiation rather
    /// than queueing toward a peer that will never drain it).
    pub fn failed(stream: &Stream, err: RequestError) -> Request {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(true),
            status: Mutex::new(Status::cancelled()),
            error: Mutex::new(Some(err)),
            stream: stream.weak(),
            conts: Mutex::new(ContSlot::Fired),
            waker: Mutex::new(None),
        });
        Request { inner }
    }

    /// `MPIX_Request_is_complete`: one atomic acquire load, no progress, no
    /// side effects. Safe to call from inside async poll functions.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.inner.complete.load(Ordering::Acquire)
    }

    /// The status, if complete.
    pub fn status(&self) -> Option<Status> {
        if self.is_complete() {
            Some(*self.inner.status.lock())
        } else {
            None
        }
    }

    /// The error, if the operation completed unsuccessfully. `None` means
    /// either "not complete yet" or "completed without error" — disambiguate
    /// with [`Request::is_complete`] or use [`Request::result`].
    pub fn error(&self) -> Option<RequestError> {
        if self.is_complete() {
            *self.inner.error.lock()
        } else {
            None
        }
    }

    /// The outcome, if complete: `Ok(status)` for a normal completion,
    /// `Err(error)` for a failed one.
    pub fn result(&self) -> Option<Result<Status, RequestError>> {
        if !self.is_complete() {
            return None;
        }
        match *self.inner.error.lock() {
            Some(err) => Some(Err(err)),
            None => Some(Ok(*self.inner.status.lock())),
        }
    }

    /// The stream this request is bound to (if still alive).
    pub fn stream(&self) -> Option<Stream> {
        self.inner.stream.upgrade()
    }

    /// Attach a continuation — the `MPIX_Continue` primitive.
    ///
    /// `cb` runs exactly once with the request's outcome, whether the
    /// operation completes normally, is cancelled (a dropped grequest or
    /// completer still fires it, with a cancelled status), or fails
    /// (`Err(PeerFailed/Revoked)` — failures fire continuations, never
    /// leak them).
    ///
    /// The callback is *not* run from inside the progress sweep: completion
    /// hands it to the bound stream's deferred-execution list, which is
    /// drained after the engine lock is released. A continuation may
    /// therefore post new operations, attach further continuations, and
    /// even wait — it observes the stream unlocked. If the request is
    /// already complete when attached, the callback is enqueued (or, when
    /// the bound stream has been freed, run inline before this returns).
    pub fn on_complete<F>(&self, cb: F)
    where
        F: FnOnce(Result<Status, RequestError>) + Send + 'static,
    {
        mpfa_obs::global_counters()
            .continuations_attached
            .fetch_add(1, Ordering::Relaxed);
        let cb: Continuation = Box::new(cb);
        {
            let mut slot = self.inner.conts.lock();
            match &mut *slot {
                ContSlot::Pending(v) => {
                    v.push(cb);
                    return;
                }
                // Completion already dispatched earlier continuations;
                // fall through and dispatch this late arrival ourselves.
                ContSlot::Fired => {}
            }
        }
        let result = self.result().expect("Fired implies complete");
        dispatch_continuation(&self.inner.stream, cb, result);
    }

    /// `MPI_Wait`: drive the bound stream's progress until complete.
    ///
    /// Idle sweeps back off ([`crate::spin::idle_backoff`]): spinning
    /// flat-out starves the producing rank when ranks outnumber cores,
    /// while a fresh waiter still completes at spin latency.
    ///
    /// If the bound stream has been freed, spins on the completion flag
    /// (some other context must complete the request).
    pub fn wait(&self) -> Status {
        let mut idle = 0u32;
        while !self.is_complete() {
            match self.inner.stream.upgrade() {
                Some(stream) => {
                    if stream.progress().made_progress() {
                        idle = 0;
                    } else {
                        idle = idle.saturating_add(1);
                        crate::spin::idle_backoff(idle);
                    }
                }
                None => std::hint::spin_loop(),
            }
        }
        *self.inner.status.lock()
    }

    /// [`Request::wait`] with a timeout; `None` on timeout.
    ///
    /// The deadline is measured on [`wtime`], so under deterministic
    /// simulation the timeout counts virtual seconds and the call stays
    /// replay-identical across runs.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Status> {
        let deadline = wtime() + timeout.as_secs_f64();
        let mut idle = 0u32;
        while !self.is_complete() {
            if wtime() >= deadline {
                return None;
            }
            match self.inner.stream.upgrade() {
                Some(stream) => {
                    if stream.progress().made_progress() {
                        idle = 0;
                    } else {
                        idle = idle.saturating_add(1);
                        crate::spin::idle_backoff(idle);
                    }
                }
                None => std::hint::spin_loop(),
            }
        }
        Some(*self.inner.status.lock())
    }

    /// `MPI_Test`: one progress call on the bound stream, then a completion
    /// check.
    pub fn test(&self) -> Option<Status> {
        if self.is_complete() {
            return Some(*self.inner.status.lock());
        }
        if let Some(stream) = self.inner.stream.upgrade() {
            stream.progress();
        }
        self.status()
    }

    /// Like [`Request::wait`], but distinguishes failed completions:
    /// `Err(RequestError)` instead of a neutral status. Never hangs on a
    /// failed operation — failures complete the request.
    pub fn wait_result(&self) -> Result<Status, RequestError> {
        self.wait();
        self.result().expect("wait returned, request is complete")
    }

    /// `MPI_Waitall` over a slice of requests.
    pub fn wait_all(requests: &[Request]) -> Vec<Status> {
        requests.iter().map(Request::wait).collect()
    }

    /// `MPI_Waitall` with per-request outcomes — the ULFM shape: every
    /// request is driven to completion (errored ones complete too), and the
    /// caller gets an `Ok`/`Err` per request rather than a hang or a single
    /// aggregate error.
    pub fn wait_all_results(requests: &[Request]) -> Vec<Result<Status, RequestError>> {
        requests.iter().map(Request::wait_result).collect()
    }

    /// `MPI_Testall`: true iff all requests are complete (no progress
    /// driven; combine with explicit stream progress).
    pub fn all_complete(requests: &[Request]) -> bool {
        requests.iter().all(Request::is_complete)
    }

    /// Index of any complete request, if one exists (no progress driven).
    pub fn any_complete(requests: &[Request]) -> Option<usize> {
        requests.iter().position(Request::is_complete)
    }

    /// `MPI_Waitany`: drive the bound streams (round-robin over the
    /// distinct streams of the set) until some request completes; returns
    /// its index and status.
    ///
    /// # Panics
    /// Panics on an empty set (MPI returns `MPI_UNDEFINED`; an empty
    /// waitany is a program error here).
    pub fn wait_any(requests: &[Request]) -> (usize, Status) {
        assert!(!requests.is_empty(), "wait_any on an empty request set");
        let streams = Self::distinct_streams(requests);
        loop {
            if let Some(idx) = Self::any_complete(requests) {
                let status = requests[idx].status().expect("complete");
                return (idx, status);
            }
            if streams.is_empty() {
                std::hint::spin_loop();
            } else {
                for s in &streams {
                    s.progress();
                }
            }
        }
    }

    /// [`Request::wait_any`] with the ULFM outcome shape: the completed
    /// request's index plus its `Ok`/`Err` result.
    pub fn wait_any_result(requests: &[Request]) -> (usize, Result<Status, RequestError>) {
        let (idx, _) = Self::wait_any(requests);
        (idx, requests[idx].result().expect("complete"))
    }

    /// `MPI_Waitsome`: drive the bound streams until *at least one* request
    /// in the set is complete, then return every complete request's index
    /// and outcome (so a burst of completions is harvested in one call —
    /// the executor's fallback path relies on this batching).
    ///
    /// # Panics
    /// Panics on an empty set, like [`Request::wait_any`].
    pub fn wait_some(requests: &[Request]) -> Vec<(usize, Result<Status, RequestError>)> {
        assert!(!requests.is_empty(), "wait_some on an empty request set");
        let streams = Self::distinct_streams(requests);
        loop {
            let done: Vec<(usize, Result<Status, RequestError>)> = requests
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_complete())
                .map(|(i, r)| (i, r.result().expect("complete")))
                .collect();
            if !done.is_empty() {
                return done;
            }
            if streams.is_empty() {
                std::hint::spin_loop();
            } else {
                for s in &streams {
                    s.progress();
                }
            }
        }
    }

    /// The distinct live streams a set of requests is bound to (round-robin
    /// progress targets for the waitany/waitsome family).
    fn distinct_streams(requests: &[Request]) -> Vec<Stream> {
        let mut seen = Vec::new();
        let mut streams = Vec::new();
        for r in requests {
            if let Some(s) = r.inner.stream.upgrade() {
                if !seen.contains(&s.id()) {
                    seen.push(s.id());
                    streams.push(s);
                }
            }
        }
        streams
    }
}

/// The native async/await bridge: a [`Request`] is a future resolving to
/// its completion outcome. The waker is stored per request and woken from
/// [`Completer::finish`] — the same completion point that dispatches
/// continuations — so an executor task awaiting a request is re-polled on
/// the sweep after the operation completes, with no busy-wait.
impl Future for Request {
    type Output = Result<Status, RequestError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(r) = self.result() {
            return Poll::Ready(r);
        }
        *self.inner.waker.lock() = Some(cx.waker().clone());
        // Completion may have raced between the check above and the waker
        // store; re-check so the wakeup is never lost (the completer takes
        // the waker *after* publishing `complete`).
        if let Some(r) = self.result() {
            return Poll::Ready(r);
        }
        Poll::Pending
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl Completer {
    /// Mark the operation complete with `status`, releasing all waiters.
    pub fn complete(mut self, status: Status) {
        self.finish(status, None);
    }

    /// Mark complete with an empty status.
    pub fn complete_empty(self) {
        self.complete(Status::empty());
    }

    /// Complete as cancelled.
    pub fn cancel(self) {
        self.complete(Status::cancelled());
    }

    /// Complete the operation *unsuccessfully*: the request flips to
    /// complete (all wait loops terminate) but carries `err`, retrievable
    /// via [`Request::error`] / [`Request::result`].
    pub fn fail(mut self, err: RequestError) {
        self.finish(Status::cancelled(), Some(err));
    }

    /// Peek: has this completer already fired? (Always false until one of
    /// the completing methods ran; those consume `self`.)
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// A [`Request`] handle observing this completer's operation.
    pub fn request(&self) -> Request {
        Request {
            inner: self.inner.clone(),
        }
    }

    fn finish(&mut self, status: Status, error: Option<RequestError>) {
        if self.done {
            return;
        }
        self.done = true;
        *self.inner.status.lock() = status;
        if error.is_some() {
            *self.inner.error.lock() = error;
        }
        // Release pairs with the Acquire in is_complete: a reader seeing
        // `true` also sees the status (and error) written above.
        self.inner.complete.store(true, Ordering::Release);
        mpfa_obs::global_counters()
            .request_completions
            .fetch_add(1, Ordering::Relaxed);
        mpfa_obs::record(|| mpfa_obs::EventKind::RequestComplete {
            stream: self
                .inner
                .stream
                .upgrade()
                .map(|s| s.id().raw())
                .unwrap_or(0),
            bytes: status.bytes as u64,
            cancelled: status.cancelled,
        });
        // Wake an awaiting task, then dispatch continuations. Both happen
        // after the Release store above, so the woken poll / fired callback
        // observes the completed outcome.
        if let Some(waker) = self.inner.waker.lock().take() {
            mpfa_obs::global_counters()
                .wakers_woken
                .fetch_add(1, Ordering::Relaxed);
            waker.wake();
        }
        let pending = {
            let mut slot = self.inner.conts.lock();
            match std::mem::replace(&mut *slot, ContSlot::Fired) {
                ContSlot::Pending(v) => v,
                ContSlot::Fired => Vec::new(),
            }
        };
        if !pending.is_empty() {
            let result = match *self.inner.error.lock() {
                Some(err) => Err(err),
                None => Ok(status),
            };
            for cb in pending {
                dispatch_continuation(&self.inner.stream, cb, result);
            }
        }
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if !self.done {
            self.finish(Status::cancelled(), None);
        }
    }
}

/// A shared countdown of outstanding operations — the `counter_ptr` pattern
/// of the paper's Listing 1.3, made safe.
#[derive(Clone, Debug)]
pub struct CompletionCounter {
    count: Arc<AtomicUsize>,
}

impl CompletionCounter {
    /// Start at `n` outstanding operations.
    pub fn new(n: usize) -> CompletionCounter {
        CompletionCounter {
            count: Arc::new(AtomicUsize::new(n)),
        }
    }

    /// Register one more outstanding operation.
    pub fn add(&self, n: usize) {
        self.count.fetch_add(n, Ordering::AcqRel);
    }

    /// Mark one operation finished.
    pub fn done(&self) {
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "CompletionCounter underflow");
    }

    /// Outstanding operations.
    pub fn remaining(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// True when nothing is outstanding.
    pub fn is_zero(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AsyncPoll, AsyncThing};

    #[test]
    fn fresh_request_is_incomplete() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        assert!(!req.is_complete());
        assert!(req.status().is_none());
    }

    #[test]
    fn complete_publishes_status() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        c.complete(Status {
            source: 3,
            tag: 7,
            bytes: 42,
            cancelled: false,
        });
        assert!(req.is_complete());
        let st = req.status().unwrap();
        assert_eq!(st.source, 3);
        assert_eq!(st.tag, 7);
        assert_eq!(st.bytes, 42);
        assert!(!st.cancelled);
    }

    #[test]
    fn completed_constructor() {
        let s = Stream::create();
        let req = Request::completed(&s, Status::empty());
        assert!(req.is_complete());
    }

    #[test]
    fn dropping_completer_cancels() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        drop(c);
        assert!(req.is_complete());
        assert!(req.status().unwrap().cancelled);
    }

    #[test]
    fn wait_drives_stream_progress() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        // An async task completes the request after a few polls.
        let mut polls = 0;
        let mut completer = Some(c);
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls >= 3 {
                completer.take().unwrap().complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let st = req.wait();
        assert!(!st.cancelled);
        assert!(s.progress_calls() >= 3);
    }

    #[test]
    fn wait_timeout_expires() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        assert!(req
            .wait_timeout(std::time::Duration::from_millis(10))
            .is_none());
    }

    #[test]
    fn wait_timeout_returns_status_on_completion() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let mut completer = Some(c);
        let mut polls = 0;
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls == 3 {
                completer.take().unwrap().complete(Status {
                    source: 2,
                    ..Status::default()
                });
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let st = req
            .wait_timeout(std::time::Duration::from_secs(30))
            .expect("completes well inside the timeout");
        assert_eq!(st.source, 2);
    }

    #[test]
    fn test_polls_once() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let mut completer = Some(c);
        s.async_start(move |_t: &mut AsyncThing| {
            completer.take().unwrap().complete_empty();
            AsyncPoll::Done
        });
        // First test drives one progress: task completes request.
        let calls_before = s.progress_calls();
        assert!(req.test().is_some());
        assert_eq!(s.progress_calls(), calls_before + 1);
        // Second test short-circuits without progress.
        assert!(req.test().is_some());
        assert_eq!(s.progress_calls(), calls_before + 1);
    }

    #[test]
    fn wait_all_and_queries() {
        let s = Stream::create();
        let (r1, c1) = Request::pair(&s);
        let (r2, c2) = Request::pair(&s);
        assert!(!Request::all_complete(&[r1.clone(), r2.clone()]));
        assert!(Request::any_complete(&[r1.clone(), r2.clone()]).is_none());
        c1.complete_empty();
        assert_eq!(Request::any_complete(&[r1.clone(), r2.clone()]), Some(0));
        c2.complete_empty();
        assert!(Request::all_complete(&[r1.clone(), r2.clone()]));
        let statuses = Request::wait_all(&[r1, r2]);
        assert_eq!(statuses.len(), 2);
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let s = Stream::create();
        let reqs: Vec<Request> = (0..4)
            .map(|i| {
                let (req, completer) = Request::pair(&s);
                let mut polls_left = 4 - i; // request 3 completes first
                let mut completer = Some(completer);
                s.async_start(move |_t| {
                    polls_left -= 1;
                    if polls_left == 0 {
                        completer.take().expect("once").complete(Status {
                            source: i,
                            tag: 0,
                            bytes: 0,
                            cancelled: false,
                        });
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
                req
            })
            .collect();
        let (idx, status) = Request::wait_any(&reqs);
        assert_eq!(idx, 3);
        assert_eq!(status.source, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn wait_any_empty_panics() {
        let _ = Request::wait_any(&[]);
    }

    #[test]
    fn is_complete_has_no_progress_side_effect() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        let calls = s.progress_calls();
        for _ in 0..1000 {
            assert!(!req.is_complete());
        }
        assert_eq!(s.progress_calls(), calls);
    }

    #[test]
    fn is_complete_usable_inside_poll_fn() {
        // The headline pattern: query request completion from inside an
        // async poll without touching progress (Listing 1.6).
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let observed = CompletionCounter::new(1);
        let obs = observed.clone();
        let mut completer = Some(c);
        let mut polls = 0;
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls == 2 {
                completer.take().unwrap().complete_empty();
            }
            if req.is_complete() {
                obs.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(s.progress_until(|| observed.is_zero(), 1.0));
        assert_eq!(s.poisoned_tasks(), 0);
    }

    #[test]
    fn failed_request_completes_with_error() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        assert!(req.error().is_none());
        c.fail(RequestError::PeerFailed { rank: 2 });
        // The failure *completes* the request: waits terminate.
        assert!(req.is_complete());
        assert_eq!(req.error(), Some(RequestError::PeerFailed { rank: 2 }));
        assert_eq!(req.wait_result(), Err(RequestError::PeerFailed { rank: 2 }));
        assert_eq!(
            req.result(),
            Some(Err(RequestError::PeerFailed { rank: 2 }))
        );
    }

    #[test]
    fn failed_constructor_is_born_failed() {
        let s = Stream::create();
        let req = Request::failed(&s, RequestError::Revoked);
        assert!(req.is_complete());
        assert_eq!(req.error(), Some(RequestError::Revoked));
    }

    #[test]
    fn normal_completion_has_no_error() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        c.complete_empty();
        assert!(req.error().is_none());
        assert!(req.wait_result().is_ok());
    }

    #[test]
    fn wait_all_results_mixes_outcomes() {
        let s = Stream::create();
        let (r1, c1) = Request::pair(&s);
        let (r2, c2) = Request::pair(&s);
        let (r3, c3) = Request::pair(&s);
        c1.complete_empty();
        c2.fail(RequestError::Revoked);
        c3.fail(RequestError::PeerFailed { rank: 0 });
        let outcomes = Request::wait_all_results(&[r1, r2, r3]);
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1], Err(RequestError::Revoked));
        assert_eq!(outcomes[2], Err(RequestError::PeerFailed { rank: 0 }));
    }

    #[test]
    fn completion_counter_basics() {
        let c = CompletionCounter::new(2);
        assert_eq!(c.remaining(), 2);
        c.done();
        assert!(!c.is_zero());
        c.done();
        assert!(c.is_zero());
        c.add(1);
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn cross_thread_completion_visibility() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let handle = std::thread::spawn(move || {
            c.complete(Status {
                source: 1,
                tag: 2,
                bytes: 3,
                cancelled: false,
            });
        });
        while !req.is_complete() {
            std::hint::spin_loop();
        }
        let st = req.status().unwrap();
        assert_eq!((st.source, st.tag, st.bytes), (1, 2, 3));
        handle.join().unwrap();
    }

    #[test]
    fn wait_some_returns_completed_subset() {
        let s = Stream::create();
        let reqs: Vec<Request> = (0..4)
            .map(|i| {
                let (req, completer) = Request::pair(&s);
                let mut completer = Some(completer);
                let mut polls = 0;
                s.async_start(move |_t| {
                    polls += 1;
                    // Requests 1 and 3 complete on the first sweep; 0 and 2
                    // two sweeps later.
                    if (i % 2 == 1 && polls >= 1) || polls >= 3 {
                        completer.take().expect("once").complete(Status {
                            source: i,
                            tag: 0,
                            bytes: 0,
                            cancelled: false,
                        });
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
                req
            })
            .collect();
        let done = Request::wait_some(&reqs);
        let idxs: Vec<usize> = done.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![1, 3], "first harvest: the first-sweep pair");
        for (i, r) in &done {
            assert_eq!(r.as_ref().unwrap().source, *i as i32);
        }
        let rest = Request::wait_all_results(&reqs);
        assert!(rest.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn wait_any_result_surfaces_errors() {
        let s = Stream::create();
        let (r1, _c1) = Request::pair(&s);
        let (r2, c2) = Request::pair(&s);
        c2.fail(RequestError::Revoked);
        let (idx, res) = Request::wait_any_result(&[r1, r2]);
        assert_eq!(idx, 1);
        assert_eq!(res, Err(RequestError::Revoked));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn wait_some_empty_panics() {
        let _ = Request::wait_some(&[]);
    }

    #[test]
    fn continuation_fires_on_progress_after_completion() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        req.on_complete(move |res| {
            assert_eq!(res.unwrap().source, 7);
            f.fetch_add(1, Ordering::SeqCst);
        });
        // Attached but incomplete: nothing fires, even across sweeps.
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        c.complete(Status {
            source: 7,
            tag: 0,
            bytes: 0,
            cancelled: false,
        });
        // Completion queues the continuation; the next progress drains it.
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert_eq!(s.pending_continuations(), 1);
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(s.pending_continuations(), 0);
        // Exactly once: more sweeps don't re-fire.
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn continuation_on_already_complete_request_fires() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        c.complete_empty();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        req.on_complete(move |res| {
            assert!(res.is_ok());
            f.fetch_add(1, Ordering::SeqCst);
        });
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Born-complete constructors behave the same.
        let born = Request::completed(&s, Status::empty());
        let f2 = fired.clone();
        born.on_complete(move |_| {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn continuation_fires_inline_when_stream_freed() {
        let s = Stream::create();
        let req = Request::completed(&s, Status::empty());
        drop(s);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        req.on_complete(move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        });
        // No stream left to drain it: ran inline.
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_completer_still_fires_continuation_once() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        req.on_complete(move |res| {
            assert!(res.unwrap().cancelled, "abandoned op completes cancelled");
            f.fetch_add(1, Ordering::SeqCst);
        });
        drop(c);
        s.progress();
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_request_fires_continuation_with_error() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let seen = Arc::new(Mutex::new(None));
        let sn = seen.clone();
        req.on_complete(move |res| {
            *sn.lock() = Some(res);
        });
        c.fail(RequestError::PeerFailed { rank: 3 });
        s.progress();
        assert_eq!(
            *seen.lock(),
            Some(Err(RequestError::PeerFailed { rank: 3 }))
        );
    }

    #[test]
    fn continuation_may_post_ops_and_chain() {
        // Re-entrancy: a continuation posts a new async task, waits on the
        // same stream, and attaches a further continuation.
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let (req2, c2) = Request::pair(&s);
        let mut c2 = Some(c2);
        let chained = Arc::new(AtomicUsize::new(0));
        let ch = chained.clone();
        let s2 = s.clone();
        req.on_complete(move |res| {
            assert!(res.is_ok());
            // Post a new operation from inside the continuation...
            s2.async_start(move |_t| {
                c2.take().expect("once").complete_empty();
                AsyncPoll::Done
            });
            // ...wait for it (legal: we run outside the engine lock)...
            req2.wait();
            // ...and chain another continuation onto the now-complete
            // request; it must run in this same drain.
            let ch2 = ch.clone();
            req2.on_complete(move |_| {
                ch2.fetch_add(1, Ordering::SeqCst);
            });
        });
        c.complete_empty();
        s.progress();
        assert_eq!(chained.load(Ordering::SeqCst), 1);
        assert_eq!(s.pending_continuations(), 0);
        assert_eq!(s.poisoned_tasks(), 0);
    }

    #[test]
    fn multiple_continuations_all_fire() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let f = fired.clone();
            req.on_complete(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            });
        }
        c.complete_empty();
        s.progress();
        assert_eq!(fired.load(Ordering::SeqCst), 5);
    }

    struct FlagWake(AtomicBool);
    impl std::task::Wake for FlagWake {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn request_future_wakes_on_completion() {
        let s = Stream::create();
        let (mut req, c) = Request::pair(&s);
        let flag = Arc::new(FlagWake(AtomicBool::new(false)));
        let waker = Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut req).poll(&mut cx).is_pending());
        assert!(!flag.0.load(Ordering::SeqCst));
        c.complete(Status {
            source: 9,
            tag: 0,
            bytes: 4,
            cancelled: false,
        });
        assert!(flag.0.load(Ordering::SeqCst), "completion wakes the waker");
        match Pin::new(&mut req).poll(&mut cx) {
            Poll::Ready(Ok(st)) => assert_eq!((st.source, st.bytes), (9, 4)),
            other => panic!("expected Ready(Ok), got {other:?}"),
        }
    }

    #[test]
    fn request_future_resolves_to_error_on_failure() {
        let s = Stream::create();
        let (mut req, c) = Request::pair(&s);
        let flag = Arc::new(FlagWake(AtomicBool::new(false)));
        let waker = Waker::from(flag.clone());
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut req).poll(&mut cx).is_pending());
        c.fail(RequestError::Revoked);
        assert!(flag.0.load(Ordering::SeqCst));
        assert_eq!(
            Pin::new(&mut req).poll(&mut cx),
            Poll::Ready(Err(RequestError::Revoked))
        );
    }

    #[test]
    fn wait_survives_freed_stream() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        drop(s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.complete_empty();
        });
        let st = req.wait();
        assert!(!st.cancelled);
        t.join().unwrap();
    }
}

//! Request objects with side-effect-free completion queries — the
//! `MPIX_Request_is_complete` extension (paper Section 3.4).
//!
//! A [`Request`] is the user-visible completion handle of an asynchronous
//! operation; the runtime completes it through the paired [`Completer`].
//! [`Request::is_complete`] is a single atomic load — "there are no side
//! effects that would interfere with other requests or other progress
//! calls" — which makes it safe (and cheap) to call from inside `MPIX_Async`
//! poll functions, where invoking progress recursively is prohibited.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

use crate::stream::{Stream, StreamRef};
use crate::wtime::wtime;

/// Completion status of a finished operation (an `MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank of the matched message (receives), or the local rank.
    pub source: i32,
    /// Message tag.
    pub tag: i32,
    /// Number of payload bytes transferred.
    pub bytes: usize,
    /// True if the operation was cancelled rather than completed.
    pub cancelled: bool,
}

impl Status {
    /// A neutral status for operations with no message metadata (sends,
    /// generalized requests, local tasks).
    pub const fn empty() -> Status {
        Status {
            source: -1,
            tag: -1,
            bytes: 0,
            cancelled: false,
        }
    }

    /// A cancelled status.
    pub const fn cancelled() -> Status {
        Status {
            source: -1,
            tag: -1,
            bytes: 0,
            cancelled: true,
        }
    }
}

impl Default for Status {
    fn default() -> Self {
        Status::empty()
    }
}

/// Why an operation finished unsuccessfully.
///
/// Errored requests still *complete* — `is_complete` flips to true and every
/// wait loop terminates — but the completion carries an error instead of a
/// normal status. This is the ULFM discipline: a failure must surface as an
/// error on the requests it dooms, never as a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The peer this operation was exchanging data with was declared dead.
    PeerFailed {
        /// World rank of the failed peer (-1 if unknown).
        rank: i32,
    },
    /// The communicator this operation ran on was revoked
    /// (`MPIX_Comm_revoke` semantics): the operation can never complete
    /// normally because some participant observed a failure.
    Revoked,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            RequestError::Revoked => write!(f, "communicator revoked"),
        }
    }
}

impl std::error::Error for RequestError {}

struct RequestInner {
    complete: AtomicBool,
    status: Mutex<Status>,
    error: Mutex<Option<RequestError>>,
    stream: StreamRef,
}

/// The user-facing completion handle of an asynchronous operation.
///
/// Cheap to clone. The operation's owner completes it via the paired
/// [`Completer`]. Waiting drives the stream the request is bound to, so a
/// bare `req.wait()` works without a progress thread (the MPI `MPI_Wait`
/// behavior); polling [`Request::is_complete`] does *not* drive progress
/// (the extension behavior).
#[derive(Clone)]
pub struct Request {
    inner: Arc<RequestInner>,
}

/// The producer side of a [`Request`]; owned by the runtime code that
/// performs the operation.
///
/// If a `Completer` is dropped without completing, the request is completed
/// as *cancelled* — an abandoned operation must never hang its waiters.
pub struct Completer {
    inner: Arc<RequestInner>,
    done: bool,
}

impl Request {
    /// Create an incomplete request bound to `stream`, plus its completer.
    pub fn pair(stream: &Stream) -> (Request, Completer) {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(false),
            status: Mutex::new(Status::empty()),
            error: Mutex::new(None),
            stream: stream.weak(),
        });
        (
            Request {
                inner: inner.clone(),
            },
            Completer { inner, done: false },
        )
    }

    /// Create an already-complete request (e.g. a lightweight/buffered send
    /// that finished inside the initiation call — Figure 1(a)).
    pub fn completed(stream: &Stream, status: Status) -> Request {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(true),
            status: Mutex::new(status),
            error: Mutex::new(None),
            stream: stream.weak(),
        });
        Request { inner }
    }

    /// Create an already-failed request (e.g. a send initiated toward a rank
    /// the runtime already knows is dead — it fails at initiation rather
    /// than queueing toward a peer that will never drain it).
    pub fn failed(stream: &Stream, err: RequestError) -> Request {
        let inner = Arc::new(RequestInner {
            complete: AtomicBool::new(true),
            status: Mutex::new(Status::cancelled()),
            error: Mutex::new(Some(err)),
            stream: stream.weak(),
        });
        Request { inner }
    }

    /// `MPIX_Request_is_complete`: one atomic acquire load, no progress, no
    /// side effects. Safe to call from inside async poll functions.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.inner.complete.load(Ordering::Acquire)
    }

    /// The status, if complete.
    pub fn status(&self) -> Option<Status> {
        if self.is_complete() {
            Some(*self.inner.status.lock())
        } else {
            None
        }
    }

    /// The error, if the operation completed unsuccessfully. `None` means
    /// either "not complete yet" or "completed without error" — disambiguate
    /// with [`Request::is_complete`] or use [`Request::result`].
    pub fn error(&self) -> Option<RequestError> {
        if self.is_complete() {
            *self.inner.error.lock()
        } else {
            None
        }
    }

    /// The outcome, if complete: `Ok(status)` for a normal completion,
    /// `Err(error)` for a failed one.
    pub fn result(&self) -> Option<Result<Status, RequestError>> {
        if !self.is_complete() {
            return None;
        }
        match *self.inner.error.lock() {
            Some(err) => Some(Err(err)),
            None => Some(Ok(*self.inner.status.lock())),
        }
    }

    /// The stream this request is bound to (if still alive).
    pub fn stream(&self) -> Option<Stream> {
        self.inner.stream.upgrade()
    }

    /// `MPI_Wait`: drive the bound stream's progress until complete.
    ///
    /// If the bound stream has been freed, spins on the completion flag
    /// (some other context must complete the request).
    pub fn wait(&self) -> Status {
        while !self.is_complete() {
            match self.inner.stream.upgrade() {
                Some(stream) => {
                    stream.progress();
                }
                None => std::hint::spin_loop(),
            }
        }
        *self.inner.status.lock()
    }

    /// [`Request::wait`] with a timeout; `None` on timeout.
    pub fn wait_timeout(&self, timeout_s: f64) -> Option<Status> {
        let deadline = wtime() + timeout_s;
        while !self.is_complete() {
            if wtime() >= deadline {
                return None;
            }
            match self.inner.stream.upgrade() {
                Some(stream) => {
                    stream.progress();
                }
                None => std::hint::spin_loop(),
            }
        }
        Some(*self.inner.status.lock())
    }

    /// `MPI_Test`: one progress call on the bound stream, then a completion
    /// check.
    pub fn test(&self) -> Option<Status> {
        if self.is_complete() {
            return Some(*self.inner.status.lock());
        }
        if let Some(stream) = self.inner.stream.upgrade() {
            stream.progress();
        }
        self.status()
    }

    /// Like [`Request::wait`], but distinguishes failed completions:
    /// `Err(RequestError)` instead of a neutral status. Never hangs on a
    /// failed operation — failures complete the request.
    pub fn wait_result(&self) -> Result<Status, RequestError> {
        self.wait();
        self.result().expect("wait returned, request is complete")
    }

    /// `MPI_Waitall` over a slice of requests.
    pub fn wait_all(requests: &[Request]) -> Vec<Status> {
        requests.iter().map(Request::wait).collect()
    }

    /// `MPI_Waitall` with per-request outcomes — the ULFM shape: every
    /// request is driven to completion (errored ones complete too), and the
    /// caller gets an `Ok`/`Err` per request rather than a hang or a single
    /// aggregate error.
    pub fn wait_all_results(requests: &[Request]) -> Vec<Result<Status, RequestError>> {
        requests.iter().map(Request::wait_result).collect()
    }

    /// `MPI_Testall`: true iff all requests are complete (no progress
    /// driven; combine with explicit stream progress).
    pub fn all_complete(requests: &[Request]) -> bool {
        requests.iter().all(Request::is_complete)
    }

    /// Index of any complete request, if one exists (no progress driven).
    pub fn any_complete(requests: &[Request]) -> Option<usize> {
        requests.iter().position(Request::is_complete)
    }

    /// `MPI_Waitany`: drive the bound streams (round-robin over the
    /// distinct streams of the set) until some request completes; returns
    /// its index and status.
    ///
    /// # Panics
    /// Panics on an empty set (MPI returns `MPI_UNDEFINED`; an empty
    /// waitany is a program error here).
    pub fn wait_any(requests: &[Request]) -> (usize, Status) {
        assert!(!requests.is_empty(), "wait_any on an empty request set");
        let streams: Vec<Stream> = {
            let mut seen = Vec::new();
            let mut streams = Vec::new();
            for r in requests {
                if let Some(s) = r.inner.stream.upgrade() {
                    if !seen.contains(&s.id()) {
                        seen.push(s.id());
                        streams.push(s);
                    }
                }
            }
            streams
        };
        loop {
            if let Some(idx) = Self::any_complete(requests) {
                let status = requests[idx].status().expect("complete");
                return (idx, status);
            }
            if streams.is_empty() {
                std::hint::spin_loop();
            } else {
                for s in &streams {
                    s.progress();
                }
            }
        }
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl Completer {
    /// Mark the operation complete with `status`, releasing all waiters.
    pub fn complete(mut self, status: Status) {
        self.finish(status, None);
    }

    /// Mark complete with an empty status.
    pub fn complete_empty(self) {
        self.complete(Status::empty());
    }

    /// Complete as cancelled.
    pub fn cancel(self) {
        self.complete(Status::cancelled());
    }

    /// Complete the operation *unsuccessfully*: the request flips to
    /// complete (all wait loops terminate) but carries `err`, retrievable
    /// via [`Request::error`] / [`Request::result`].
    pub fn fail(mut self, err: RequestError) {
        self.finish(Status::cancelled(), Some(err));
    }

    /// Peek: has this completer already fired? (Always false until one of
    /// the completing methods ran; those consume `self`.)
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// A [`Request`] handle observing this completer's operation.
    pub fn request(&self) -> Request {
        Request {
            inner: self.inner.clone(),
        }
    }

    fn finish(&mut self, status: Status, error: Option<RequestError>) {
        if self.done {
            return;
        }
        self.done = true;
        *self.inner.status.lock() = status;
        if error.is_some() {
            *self.inner.error.lock() = error;
        }
        // Release pairs with the Acquire in is_complete: a reader seeing
        // `true` also sees the status (and error) written above.
        self.inner.complete.store(true, Ordering::Release);
        mpfa_obs::global_counters()
            .request_completions
            .fetch_add(1, Ordering::Relaxed);
        mpfa_obs::record(|| mpfa_obs::EventKind::RequestComplete {
            stream: self
                .inner
                .stream
                .upgrade()
                .map(|s| s.id().raw())
                .unwrap_or(0),
            bytes: status.bytes as u64,
            cancelled: status.cancelled,
        });
    }
}

impl Drop for Completer {
    fn drop(&mut self) {
        if !self.done {
            self.finish(Status::cancelled(), None);
        }
    }
}

/// A shared countdown of outstanding operations — the `counter_ptr` pattern
/// of the paper's Listing 1.3, made safe.
#[derive(Clone, Debug)]
pub struct CompletionCounter {
    count: Arc<AtomicUsize>,
}

impl CompletionCounter {
    /// Start at `n` outstanding operations.
    pub fn new(n: usize) -> CompletionCounter {
        CompletionCounter {
            count: Arc::new(AtomicUsize::new(n)),
        }
    }

    /// Register one more outstanding operation.
    pub fn add(&self, n: usize) {
        self.count.fetch_add(n, Ordering::AcqRel);
    }

    /// Mark one operation finished.
    pub fn done(&self) {
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "CompletionCounter underflow");
    }

    /// Outstanding operations.
    pub fn remaining(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// True when nothing is outstanding.
    pub fn is_zero(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AsyncPoll, AsyncThing};

    #[test]
    fn fresh_request_is_incomplete() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        assert!(!req.is_complete());
        assert!(req.status().is_none());
    }

    #[test]
    fn complete_publishes_status() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        c.complete(Status {
            source: 3,
            tag: 7,
            bytes: 42,
            cancelled: false,
        });
        assert!(req.is_complete());
        let st = req.status().unwrap();
        assert_eq!(st.source, 3);
        assert_eq!(st.tag, 7);
        assert_eq!(st.bytes, 42);
        assert!(!st.cancelled);
    }

    #[test]
    fn completed_constructor() {
        let s = Stream::create();
        let req = Request::completed(&s, Status::empty());
        assert!(req.is_complete());
    }

    #[test]
    fn dropping_completer_cancels() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        drop(c);
        assert!(req.is_complete());
        assert!(req.status().unwrap().cancelled);
    }

    #[test]
    fn wait_drives_stream_progress() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        // An async task completes the request after a few polls.
        let mut polls = 0;
        let mut completer = Some(c);
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls >= 3 {
                completer.take().unwrap().complete_empty();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        let st = req.wait();
        assert!(!st.cancelled);
        assert!(s.progress_calls() >= 3);
    }

    #[test]
    fn wait_timeout_expires() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        assert!(req.wait_timeout(0.01).is_none());
    }

    #[test]
    fn test_polls_once() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let mut completer = Some(c);
        s.async_start(move |_t: &mut AsyncThing| {
            completer.take().unwrap().complete_empty();
            AsyncPoll::Done
        });
        // First test drives one progress: task completes request.
        let calls_before = s.progress_calls();
        assert!(req.test().is_some());
        assert_eq!(s.progress_calls(), calls_before + 1);
        // Second test short-circuits without progress.
        assert!(req.test().is_some());
        assert_eq!(s.progress_calls(), calls_before + 1);
    }

    #[test]
    fn wait_all_and_queries() {
        let s = Stream::create();
        let (r1, c1) = Request::pair(&s);
        let (r2, c2) = Request::pair(&s);
        assert!(!Request::all_complete(&[r1.clone(), r2.clone()]));
        assert!(Request::any_complete(&[r1.clone(), r2.clone()]).is_none());
        c1.complete_empty();
        assert_eq!(Request::any_complete(&[r1.clone(), r2.clone()]), Some(0));
        c2.complete_empty();
        assert!(Request::all_complete(&[r1.clone(), r2.clone()]));
        let statuses = Request::wait_all(&[r1, r2]);
        assert_eq!(statuses.len(), 2);
    }

    #[test]
    fn wait_any_returns_first_completion() {
        let s = Stream::create();
        let reqs: Vec<Request> = (0..4)
            .map(|i| {
                let (req, completer) = Request::pair(&s);
                let mut polls_left = 4 - i; // request 3 completes first
                let mut completer = Some(completer);
                s.async_start(move |_t| {
                    polls_left -= 1;
                    if polls_left == 0 {
                        completer.take().expect("once").complete(Status {
                            source: i,
                            tag: 0,
                            bytes: 0,
                            cancelled: false,
                        });
                        AsyncPoll::Done
                    } else {
                        AsyncPoll::Pending
                    }
                });
                req
            })
            .collect();
        let (idx, status) = Request::wait_any(&reqs);
        assert_eq!(idx, 3);
        assert_eq!(status.source, 3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn wait_any_empty_panics() {
        let _ = Request::wait_any(&[]);
    }

    #[test]
    fn is_complete_has_no_progress_side_effect() {
        let s = Stream::create();
        let (req, _c) = Request::pair(&s);
        let calls = s.progress_calls();
        for _ in 0..1000 {
            assert!(!req.is_complete());
        }
        assert_eq!(s.progress_calls(), calls);
    }

    #[test]
    fn is_complete_usable_inside_poll_fn() {
        // The headline pattern: query request completion from inside an
        // async poll without touching progress (Listing 1.6).
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let observed = CompletionCounter::new(1);
        let obs = observed.clone();
        let mut completer = Some(c);
        let mut polls = 0;
        s.async_start(move |_t: &mut AsyncThing| {
            polls += 1;
            if polls == 2 {
                completer.take().unwrap().complete_empty();
            }
            if req.is_complete() {
                obs.done();
                AsyncPoll::Done
            } else {
                AsyncPoll::Pending
            }
        });
        assert!(s.progress_until(|| observed.is_zero(), 1.0));
        assert_eq!(s.poisoned_tasks(), 0);
    }

    #[test]
    fn failed_request_completes_with_error() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        assert!(req.error().is_none());
        c.fail(RequestError::PeerFailed { rank: 2 });
        // The failure *completes* the request: waits terminate.
        assert!(req.is_complete());
        assert_eq!(req.error(), Some(RequestError::PeerFailed { rank: 2 }));
        assert_eq!(req.wait_result(), Err(RequestError::PeerFailed { rank: 2 }));
        assert_eq!(
            req.result(),
            Some(Err(RequestError::PeerFailed { rank: 2 }))
        );
    }

    #[test]
    fn failed_constructor_is_born_failed() {
        let s = Stream::create();
        let req = Request::failed(&s, RequestError::Revoked);
        assert!(req.is_complete());
        assert_eq!(req.error(), Some(RequestError::Revoked));
    }

    #[test]
    fn normal_completion_has_no_error() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        c.complete_empty();
        assert!(req.error().is_none());
        assert!(req.wait_result().is_ok());
    }

    #[test]
    fn wait_all_results_mixes_outcomes() {
        let s = Stream::create();
        let (r1, c1) = Request::pair(&s);
        let (r2, c2) = Request::pair(&s);
        let (r3, c3) = Request::pair(&s);
        c1.complete_empty();
        c2.fail(RequestError::Revoked);
        c3.fail(RequestError::PeerFailed { rank: 0 });
        let outcomes = Request::wait_all_results(&[r1, r2, r3]);
        assert!(outcomes[0].is_ok());
        assert_eq!(outcomes[1], Err(RequestError::Revoked));
        assert_eq!(outcomes[2], Err(RequestError::PeerFailed { rank: 0 }));
    }

    #[test]
    fn completion_counter_basics() {
        let c = CompletionCounter::new(2);
        assert_eq!(c.remaining(), 2);
        c.done();
        assert!(!c.is_zero());
        c.done();
        assert!(c.is_zero());
        c.add(1);
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn cross_thread_completion_visibility() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        let handle = std::thread::spawn(move || {
            c.complete(Status {
                source: 1,
                tag: 2,
                bytes: 3,
                cancelled: false,
            });
        });
        while !req.is_complete() {
            std::hint::spin_loop();
        }
        let st = req.status().unwrap();
        assert_eq!((st.source, st.tag, st.bytes), (1, 2, 3));
        handle.join().unwrap();
    }

    #[test]
    fn wait_survives_freed_stream() {
        let s = Stream::create();
        let (req, c) = Request::pair(&s);
        drop(s);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            c.complete_empty();
        });
        let st = req.wait();
        assert!(!st.cancelled);
        t.join().unwrap();
    }
}

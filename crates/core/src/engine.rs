//! The collated progress engine (the paper's Listing 1.1, generalized).
//!
//! One [`Engine`] lives behind each stream's lock. It holds the runtime's
//! subsystem hooks (ordered by [`SubsystemClass`]) and the user's
//! `MPIX_Async` tasks. A single [`Engine::poll`]:
//!
//! 1. polls subsystem hooks in class order, **short-circuiting the rest of
//!    the subsystems at the first one that reports progress** — MPICH's
//!    `if (made_progress) goto fn_exit;` policy;
//! 2. then polls every user async task exactly once (the user extension of
//!    the engine; its poll is how the application observes completions, so
//!    it is never skipped), honoring deferred spawns and isolating panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::hook::{HookId, ProgressHook, SubsystemClass};
use crate::stream::StreamId;
use crate::task::{AsyncPoll, AsyncTask, AsyncThing, TaskId};

/// Decides the order user async tasks are polled within one progress
/// sweep — the deterministic-simulation scheduling hook.
///
/// MPI leaves the poll order of concurrently pending `MPIX_Async` tasks
/// unspecified, so a correct program must tolerate *any* order. A
/// deterministic-simulation harness installs one of these (via
/// [`crate::Stream::set_sweep_order`]) to make the order a pure function
/// of its seed and to deliberately explore adversarial orders.
///
/// `n` is the number of tasks pending at the start of the sweep and
/// `sweep` a per-engine sweep sequence number. The returned vector must
/// be a permutation of `0..n`; anything else is ignored and the engine
/// falls back to registration order. Subsystem hooks are *not*
/// permutable — their class order is the Listing-1.1 contract.
pub trait SweepOrder: Send + Sync {
    /// Produce the poll order for one sweep.
    fn order(&self, stream: StreamId, sweep: u64, n: usize) -> Vec<usize>;
}

/// True when `perm` is a permutation of `0..n`.
fn valid_perm(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &i in perm {
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// Per-call tuning of a progress invocation — MPICH's
/// `MPID_Progress_state`, surfaced.
///
/// The paper (Section 3.2) notes that stream hints may "skip Netmod progress
/// if the subsystem does not depend on inter-node communication"; a
/// `ProgressState` is how a caller (or a stream's hints) expresses such
/// skips for one call.
#[derive(Debug, Clone, Copy)]
pub struct ProgressState {
    skip_mask: u8,
    poll_tasks: bool,
}

impl Default for ProgressState {
    fn default() -> Self {
        ProgressState {
            skip_mask: 0,
            poll_tasks: true,
        }
    }
}

impl ProgressState {
    /// Poll everything (all subsystems + user tasks).
    pub fn all() -> Self {
        Self::default()
    }

    /// Skip one subsystem class.
    #[must_use]
    pub fn skip(mut self, class: SubsystemClass) -> Self {
        self.skip_mask |= class.bit();
        self
    }

    /// Poll *only* the given subsystem classes (user tasks still polled).
    #[must_use]
    pub fn only(classes: &[SubsystemClass]) -> Self {
        let mut mask = 0u8;
        for c in SubsystemClass::ALL {
            mask |= c.bit();
        }
        for c in classes {
            mask &= !c.bit();
        }
        ProgressState {
            skip_mask: mask,
            poll_tasks: true,
        }
    }

    /// Do not poll user async tasks on this call.
    #[must_use]
    pub fn without_tasks(mut self) -> Self {
        self.poll_tasks = false;
        self
    }

    /// Whether `class` is skipped by this state.
    #[inline]
    pub fn skips(&self, class: SubsystemClass) -> bool {
        self.skip_mask & class.bit() != 0
    }

    /// Whether user tasks are polled by this state.
    #[inline]
    pub fn polls_tasks(&self) -> bool {
        self.poll_tasks
    }
}

/// What one progress call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressOutcome {
    /// A subsystem hook reported progress.
    pub subsystem_progress: bool,
    /// Number of user async tasks that returned [`AsyncPoll::Done`].
    pub tasks_completed: usize,
    /// Number of user async tasks that returned [`AsyncPoll::Progress`].
    pub tasks_progressed: usize,
    /// Number of user async tasks whose poll panicked and were discarded.
    pub tasks_poisoned: usize,
    /// Number of new tasks spawned via [`crate::AsyncThing::spawn`] during
    /// this sweep.
    pub tasks_spawned: usize,
}

impl ProgressOutcome {
    /// True if anything at all advanced.
    pub fn made_progress(&self) -> bool {
        self.subsystem_progress || self.tasks_completed > 0 || self.tasks_progressed > 0
    }
}

struct HookEntry {
    id: HookId,
    class: SubsystemClass,
    seq: u64,
    /// Interned hook name for event records (interning happens once at
    /// registration, never on the poll path).
    name: mpfa_obs::NameId,
    hook: Box<dyn ProgressHook>,
}

struct TaskEntry {
    id: TaskId,
    task: Box<dyn AsyncTask>,
}

/// Cumulative per-stream progress counters (diagnostics; see
/// [`crate::Stream::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Subsystem hook `poll` invocations, by [`SubsystemClass`] index.
    pub hook_polls: [u64; SubsystemClass::COUNT],
    /// Hook polls that reported progress, by class index.
    pub hook_progress: [u64; SubsystemClass::COUNT],
    /// Hook polls suppressed by a `has_work() == false` fast path.
    pub hook_idle_skips: u64,
    /// Hook polls skipped by the made-progress short-circuit.
    pub hook_short_circuits: u64,
    /// User task `poll` invocations.
    pub task_polls: u64,
    /// User tasks completed.
    pub task_completions: u64,
}

impl EngineStats {
    /// Total hook polls across all classes.
    pub fn total_hook_polls(&self) -> u64 {
        self.hook_polls.iter().sum()
    }
}

/// The collated progress engine of one stream. Always driven under the
/// stream's engine lock; not itself thread-safe.
pub(crate) struct Engine {
    hooks: Vec<HookEntry>,
    tasks: Vec<TaskEntry>,
    next_hook: u64,
    next_task: u64,
    /// Total user tasks ever poisoned (poll panicked).
    poisoned_total: u64,
    /// Consecutive sweeps that made no progress (for the no-progress
    /// streak high-water mark in the global counters).
    idle_streak: u64,
    /// Sweep sequence number (feeds the sweep-order hook).
    sweep_seq: u64,
    /// Deterministic-simulation task-order hook; `None` (production) uses
    /// the registration-order fast path.
    order_hook: Option<Arc<dyn SweepOrder>>,
    stats: EngineStats,
}

impl Engine {
    pub(crate) fn new() -> Self {
        Engine {
            hooks: Vec::new(),
            tasks: Vec::new(),
            next_hook: 0,
            next_task: 0,
            poisoned_total: 0,
            idle_streak: 0,
            sweep_seq: 0,
            order_hook: None,
            stats: EngineStats::default(),
        }
    }

    pub(crate) fn set_sweep_order(&mut self, hook: Option<Arc<dyn SweepOrder>>) {
        self.order_hook = hook;
    }

    pub(crate) fn stats(&self) -> EngineStats {
        self.stats
    }

    pub(crate) fn register_hook(&mut self, hook: Box<dyn ProgressHook>) -> HookId {
        let id = HookId(self.next_hook);
        self.next_hook += 1;
        let class = hook.class();
        let name = mpfa_obs::NameId::intern(hook.name());
        let entry = HookEntry {
            id,
            class,
            seq: id.0,
            name,
            hook,
        };
        // Keep hooks ordered by (class, registration order).
        let pos = self
            .hooks
            .partition_point(|h| (h.class, h.seq) <= (class, entry.seq));
        self.hooks.insert(pos, entry);
        id
    }

    pub(crate) fn unregister_hook(&mut self, id: HookId) -> bool {
        match self.hooks.iter().position(|h| h.id == id) {
            Some(pos) => {
                self.hooks.remove(pos);
                true
            }
            None => false,
        }
    }

    pub(crate) fn hook_count(&self) -> usize {
        self.hooks.len()
    }

    pub(crate) fn add_task(&mut self, task: Box<dyn AsyncTask>) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        self.tasks.push(TaskEntry { id, task });
        id
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    pub(crate) fn poisoned_total(&self) -> u64 {
        self.poisoned_total
    }

    /// Poll the task at `idx` once, recording its verdict. Returns true
    /// when the task is finished (Done or poisoned) and must be retired
    /// by the caller; removal is the caller's job so both the in-place
    /// fast path and the permuted deferred-removal path share this body.
    fn poll_one_task(
        &mut self,
        idx: usize,
        thing: &mut AsyncThing,
        stream: StreamId,
        out: &mut ProgressOutcome,
        sweep_task_polls: &mut u64,
    ) -> bool {
        use mpfa_obs::{EventKind, TaskVerdict};

        let entry = &mut self.tasks[idx];
        thing.task = entry.id;
        let task_id = entry.id.0;
        self.stats.task_polls += 1;
        *sweep_task_polls += 1;
        let polled = catch_unwind(AssertUnwindSafe(|| entry.task.poll(thing)));
        match polled {
            Ok(AsyncPoll::Done) => {
                out.tasks_completed += 1;
                self.stats.task_completions += 1;
                mpfa_obs::record(|| EventKind::TaskPoll {
                    stream: stream.0,
                    task: task_id,
                    verdict: TaskVerdict::Done,
                });
                true
            }
            Ok(AsyncPoll::Progress) => {
                out.tasks_progressed += 1;
                false
            }
            Ok(AsyncPoll::Pending) => false,
            Err(_) => {
                // A panicking poll poisons only its own task; the
                // engine and the other tasks stay healthy.
                out.tasks_poisoned += 1;
                self.poisoned_total += 1;
                mpfa_obs::record(|| EventKind::TaskPoll {
                    stream: stream.0,
                    task: task_id,
                    verdict: TaskVerdict::Poisoned,
                });
                true
            }
        }
    }

    /// One collated progress sweep. See the module docs for the policy.
    pub(crate) fn poll(&mut self, state: &ProgressState, stream: StreamId) -> ProgressOutcome {
        use mpfa_obs::{EventKind, PollVerdict};

        self.sweep_seq += 1;
        let mut out = ProgressOutcome::default();
        // Sweep-local tallies for the batched counter flush at the end —
        // one set of atomic adds per sweep, not per hook/task.
        let mut sweep_hook_polls = 0u64;
        let mut sweep_hook_progress = 0u64;
        let mut sweep_task_polls = 0u64;
        let sweep_t0 = if mpfa_obs::recording_enabled() {
            crate::wtime::wtime()
        } else {
            0.0
        };

        // Phase 1: subsystems in Listing 1.1 order with short-circuit.
        for (i, entry) in self.hooks.iter().enumerate() {
            if state.skips(entry.class) {
                continue;
            }
            if !entry.hook.has_work() {
                self.stats.hook_idle_skips += 1;
                continue;
            }
            self.stats.hook_polls[entry.class as usize] += 1;
            sweep_hook_polls += 1;
            let t0 = if mpfa_obs::recording_enabled() {
                crate::wtime::wtime()
            } else {
                0.0
            };
            let progressed = entry.hook.poll();
            mpfa_obs::record_at(t0, || EventKind::HookPoll {
                stream: stream.0,
                class: entry.class as u8,
                name: entry.name,
                verdict: if progressed {
                    PollVerdict::Progress
                } else {
                    PollVerdict::NoProgress
                },
                dur: crate::wtime::wtime() - t0,
            });
            if progressed {
                self.stats.hook_progress[entry.class as usize] += 1;
                sweep_hook_progress += 1;
                self.stats.hook_short_circuits += (self.hooks.len() - i).saturating_sub(1) as u64;
                out.subsystem_progress = true;
                break;
            }
        }

        // Phase 2: user async tasks (never short-circuited by subsystem
        // progress — this poll is how the user observes completion events).
        if state.polls_tasks() {
            // One reusable poll context for the whole sweep; its spawn
            // buffer is drained after the sweep.
            let mut thing = AsyncThing::new(stream);
            match self.order_hook.clone() {
                None => {
                    // Production fast path: registration order, retiring
                    // in place.
                    let mut i = 0;
                    while i < self.tasks.len() {
                        let retire = self.poll_one_task(
                            i,
                            &mut thing,
                            stream,
                            &mut out,
                            &mut sweep_task_polls,
                        );
                        if retire {
                            // Dropping the task value releases its state —
                            // the Rust equivalent of poll_fn freeing
                            // extra_state before returning MPIX_ASYNC_DONE.
                            self.tasks.swap_remove(i);
                        } else {
                            i += 1;
                        }
                    }
                }
                Some(hook) => {
                    // Simulation path: poll in the hook's order, deferring
                    // removals so every task is still polled exactly once
                    // per sweep regardless of the permutation.
                    let n = self.tasks.len();
                    let perm = hook.order(stream, self.sweep_seq, n);
                    let identity: Vec<usize>;
                    let order: &[usize] = if valid_perm(&perm, n) {
                        &perm
                    } else {
                        identity = (0..n).collect();
                        &identity
                    };
                    let mut dead = vec![false; n];
                    for &idx in order {
                        dead[idx] = self.poll_one_task(
                            idx,
                            &mut thing,
                            stream,
                            &mut out,
                            &mut sweep_task_polls,
                        );
                    }
                    let mut flags = dead.into_iter();
                    self.tasks.retain(|_| !flags.next().unwrap_or(false));
                }
            }
            // Splice deferred spawns in *after* the sweep (MPIX_Async_spawn:
            // "temporarily stored ... and processed after poll_fn returns").
            out.tasks_spawned = thing.spawned.len();
            for task in thing.spawned {
                let id = self.add_task(task);
                mpfa_obs::record(|| EventKind::TaskStart {
                    stream: stream.0,
                    task: id.0,
                });
            }
        }

        mpfa_obs::record_at(sweep_t0, || EventKind::StreamProgress {
            stream: stream.0,
            dur: crate::wtime::wtime() - sweep_t0,
            hook_polls: sweep_hook_polls.min(u16::MAX as u64) as u16,
            tasks_polled: sweep_task_polls.min(u32::MAX as u64) as u32,
            tasks_completed: (out.tasks_completed as u64).min(u16::MAX as u64) as u16,
            made_progress: out.made_progress(),
        });

        // Batched flush: one burst of atomic adds per sweep keeps the
        // always-on counters off the per-hook/per-task hot path.
        let counters = mpfa_obs::global_counters();
        counters.record_sweep(
            sweep_hook_polls,
            sweep_hook_progress,
            sweep_task_polls,
            out.tasks_completed as u64,
        );
        if out.made_progress() {
            self.idle_streak = 0;
        } else {
            self.idle_streak += 1;
            counters.observe_no_progress_streak(self.idle_streak);
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Hook that records whether it was polled and returns a configured
    /// progress result.
    struct Probe {
        name: &'static str,
        class: SubsystemClass,
        has_work: Arc<AtomicBool>,
        polled: Arc<AtomicUsize>,
        makes_progress: bool,
    }

    impl Probe {
        fn new(
            name: &'static str,
            class: SubsystemClass,
            makes_progress: bool,
        ) -> (Self, Arc<AtomicUsize>, Arc<AtomicBool>) {
            let polled = Arc::new(AtomicUsize::new(0));
            let has_work = Arc::new(AtomicBool::new(true));
            (
                Probe {
                    name,
                    class,
                    has_work: has_work.clone(),
                    polled: polled.clone(),
                    makes_progress,
                },
                polled,
                has_work,
            )
        }
    }

    impl ProgressHook for Probe {
        fn name(&self) -> &str {
            self.name
        }
        fn class(&self) -> SubsystemClass {
            self.class
        }
        fn has_work(&self) -> bool {
            self.has_work.load(Ordering::Relaxed)
        }
        fn poll(&self) -> bool {
            self.polled.fetch_add(1, Ordering::Relaxed);
            self.makes_progress
        }
    }

    fn sid() -> StreamId {
        StreamId(0)
    }

    #[test]
    fn hooks_polled_in_class_order_with_short_circuit() {
        let mut e = Engine::new();
        // Register out of order; engine must sort by class.
        let (netmod, netmod_polls, _) = Probe::new("netmod", SubsystemClass::Netmod, false);
        let (shmem, shmem_polls, _) = Probe::new("shmem", SubsystemClass::Shmem, true);
        let (dt, dt_polls, _) = Probe::new("dt", SubsystemClass::DatatypeEngine, false);
        e.register_hook(Box::new(netmod));
        e.register_hook(Box::new(shmem));
        e.register_hook(Box::new(dt));

        let out = e.poll(&ProgressState::default(), sid());
        assert!(out.subsystem_progress);
        // dt polled (no progress), shmem polled (progress), netmod skipped.
        assert_eq!(dt_polls.load(Ordering::Relaxed), 1);
        assert_eq!(shmem_polls.load(Ordering::Relaxed), 1);
        assert_eq!(netmod_polls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn netmod_polled_when_nothing_else_progresses() {
        let mut e = Engine::new();
        let (shmem, _, _) = Probe::new("shmem", SubsystemClass::Shmem, false);
        let (netmod, netmod_polls, _) = Probe::new("netmod", SubsystemClass::Netmod, false);
        e.register_hook(Box::new(shmem));
        e.register_hook(Box::new(netmod));
        let out = e.poll(&ProgressState::default(), sid());
        assert!(!out.subsystem_progress);
        assert_eq!(netmod_polls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn has_work_false_suppresses_poll() {
        let mut e = Engine::new();
        let (h, polls, has_work) = Probe::new("dt", SubsystemClass::DatatypeEngine, true);
        e.register_hook(Box::new(h));
        has_work.store(false, Ordering::Relaxed);
        let out = e.poll(&ProgressState::default(), sid());
        assert!(!out.subsystem_progress);
        assert_eq!(polls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn progress_state_skips_classes() {
        let mut e = Engine::new();
        let (netmod, polls, _) = Probe::new("netmod", SubsystemClass::Netmod, true);
        e.register_hook(Box::new(netmod));
        let st = ProgressState::default().skip(SubsystemClass::Netmod);
        let out = e.poll(&st, sid());
        assert!(!out.subsystem_progress);
        assert_eq!(polls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn progress_state_only_selects_classes() {
        let st = ProgressState::only(&[SubsystemClass::Shmem]);
        assert!(!st.skips(SubsystemClass::Shmem));
        assert!(st.skips(SubsystemClass::Netmod));
        assert!(st.skips(SubsystemClass::DatatypeEngine));
        assert!(st.polls_tasks());
    }

    #[test]
    fn unregister_hook_removes_it() {
        let mut e = Engine::new();
        let (h, polls, _) = Probe::new("dt", SubsystemClass::DatatypeEngine, true);
        let id = e.register_hook(Box::new(h));
        assert_eq!(e.hook_count(), 1);
        assert!(e.unregister_hook(id));
        assert!(!e.unregister_hook(id));
        assert_eq!(e.hook_count(), 0);
        e.poll(&ProgressState::default(), sid());
        assert_eq!(polls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tasks_polled_every_call_until_done() {
        let mut e = Engine::new();
        let polls = Arc::new(AtomicUsize::new(0));
        let p = polls.clone();
        let mut remaining = 3;
        e.add_task(Box::new(move |_t: &mut AsyncThing| {
            p.fetch_add(1, Ordering::Relaxed);
            if remaining == 0 {
                AsyncPoll::Done
            } else {
                remaining -= 1;
                AsyncPoll::Pending
            }
        }));
        for _ in 0..3 {
            let out = e.poll(&ProgressState::default(), sid());
            assert_eq!(out.tasks_completed, 0);
        }
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_completed, 1);
        assert_eq!(e.task_count(), 0);
        assert_eq!(polls.load(Ordering::Relaxed), 4);
        // Subsequent polls do nothing.
        let out = e.poll(&ProgressState::default(), sid());
        assert!(!out.made_progress());
    }

    #[test]
    fn tasks_polled_even_when_subsystem_progresses() {
        let mut e = Engine::new();
        let (h, _, _) = Probe::new("shmem", SubsystemClass::Shmem, true);
        e.register_hook(Box::new(h));
        e.add_task(Box::new(|_t: &mut AsyncThing| AsyncPoll::Done));
        let out = e.poll(&ProgressState::default(), sid());
        assert!(out.subsystem_progress);
        assert_eq!(out.tasks_completed, 1);
    }

    #[test]
    fn without_tasks_skips_task_sweep() {
        let mut e = Engine::new();
        e.add_task(Box::new(|_t: &mut AsyncThing| AsyncPoll::Done));
        let out = e.poll(&ProgressState::default().without_tasks(), sid());
        assert_eq!(out.tasks_completed, 0);
        assert_eq!(e.task_count(), 1);
    }

    #[test]
    fn spawned_tasks_run_after_sweep_not_recursively() {
        let mut e = Engine::new();
        let child_polls = Arc::new(AtomicUsize::new(0));
        let cp = child_polls.clone();
        e.add_task(Box::new(move |t: &mut AsyncThing| {
            let cp = cp.clone();
            t.spawn(move |_t: &mut AsyncThing| {
                cp.fetch_add(1, Ordering::Relaxed);
                AsyncPoll::Done
            });
            AsyncPoll::Done
        }));
        let out = e.poll(&ProgressState::default(), sid());
        // Parent completed; child spliced but NOT yet polled.
        assert_eq!(out.tasks_completed, 1);
        assert_eq!(child_polls.load(Ordering::Relaxed), 0);
        assert_eq!(e.task_count(), 1);
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_completed, 1);
        assert_eq!(child_polls.load(Ordering::Relaxed), 1);
        assert_eq!(e.task_count(), 0);
    }

    #[test]
    fn spawn_chain_terminates() {
        // A task spawning a task spawning a task — each poll call handles
        // exactly one generation.
        let mut e = Engine::new();
        fn chain(depth: u32) -> Box<dyn AsyncTask> {
            Box::new(move |t: &mut AsyncThing| {
                if depth > 0 {
                    let next = depth - 1;
                    t.spawn(move |t2: &mut AsyncThing| {
                        if next > 0 {
                            // Re-spawn handled by the generic closure below;
                            // keep it simple: just finish.
                            let _ = t2;
                        }
                        AsyncPoll::Done
                    });
                }
                AsyncPoll::Done
            })
        }
        e.add_task(chain(2));
        let mut total_done = 0;
        for _ in 0..5 {
            total_done += e.poll(&ProgressState::default(), sid()).tasks_completed;
        }
        assert_eq!(total_done, 2);
        assert_eq!(e.task_count(), 0);
    }

    #[test]
    fn panicking_task_is_poisoned_and_others_survive() {
        let mut e = Engine::new();
        let survivor_polls = Arc::new(AtomicUsize::new(0));
        let sp = survivor_polls.clone();
        e.add_task(Box::new(|_t: &mut AsyncThing| -> AsyncPoll {
            panic!("injected poll failure");
        }));
        e.add_task(Box::new(move |_t: &mut AsyncThing| {
            sp.fetch_add(1, Ordering::Relaxed);
            AsyncPoll::Pending
        }));
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_poisoned, 1);
        assert_eq!(e.task_count(), 1);
        assert_eq!(e.poisoned_total(), 1);
        assert_eq!(survivor_polls.load(Ordering::Relaxed), 1);
        // Engine still functional.
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_poisoned, 0);
        assert_eq!(survivor_polls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn many_tasks_all_complete() {
        let mut e = Engine::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let d = done.clone();
            let mut n = 2;
            e.add_task(Box::new(move |_t: &mut AsyncThing| {
                if n == 0 {
                    d.fetch_add(1, Ordering::Relaxed);
                    AsyncPoll::Done
                } else {
                    n -= 1;
                    AsyncPoll::Pending
                }
            }));
        }
        let mut sweeps = 0;
        while e.task_count() > 0 {
            e.poll(&ProgressState::default(), sid());
            sweeps += 1;
            assert!(sweeps < 10, "tasks did not drain");
        }
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn stats_count_hook_and_task_activity() {
        let mut e = Engine::new();
        let (shmem, _, _) = Probe::new("shmem", SubsystemClass::Shmem, true);
        let (netmod, _, _) = Probe::new("netmod", SubsystemClass::Netmod, false);
        e.register_hook(Box::new(shmem));
        e.register_hook(Box::new(netmod));
        e.add_task(Box::new(|_t: &mut AsyncThing| AsyncPoll::Done));
        e.poll(&ProgressState::default(), sid());
        let st = e.stats();
        assert_eq!(st.hook_polls[SubsystemClass::Shmem as usize], 1);
        assert_eq!(st.hook_progress[SubsystemClass::Shmem as usize], 1);
        // Netmod was short-circuited away.
        assert_eq!(st.hook_polls[SubsystemClass::Netmod as usize], 0);
        assert_eq!(st.hook_short_circuits, 1);
        assert_eq!(st.task_polls, 1);
        assert_eq!(st.task_completions, 1);
        assert_eq!(st.total_hook_polls(), 1);
    }

    #[test]
    fn stats_count_idle_skips() {
        let mut e = Engine::new();
        let (h, _, has_work) = Probe::new("dt", SubsystemClass::DatatypeEngine, false);
        e.register_hook(Box::new(h));
        has_work.store(false, Ordering::Relaxed);
        e.poll(&ProgressState::default(), sid());
        e.poll(&ProgressState::default(), sid());
        assert_eq!(e.stats().hook_idle_skips, 2);
        assert_eq!(e.stats().total_hook_polls(), 0);
    }

    struct ReverseOrder;
    impl SweepOrder for ReverseOrder {
        fn order(&self, _stream: StreamId, _sweep: u64, n: usize) -> Vec<usize> {
            (0..n).rev().collect()
        }
    }

    struct BogusOrder;
    impl SweepOrder for BogusOrder {
        fn order(&self, _stream: StreamId, _sweep: u64, _n: usize) -> Vec<usize> {
            vec![0, 0, 0] // not a permutation — must be ignored
        }
    }

    fn order_recorder(e: &mut Engine, label: usize, log: &Arc<std::sync::Mutex<Vec<usize>>>) {
        let log = log.clone();
        e.add_task(Box::new(move |_t: &mut AsyncThing| {
            log.lock().unwrap().push(label);
            AsyncPoll::Pending
        }));
    }

    #[test]
    fn sweep_order_hook_permutes_task_polls() {
        let mut e = Engine::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        for label in 0..4 {
            order_recorder(&mut e, label, &log);
        }
        e.set_sweep_order(Some(Arc::new(ReverseOrder)));
        e.poll(&ProgressState::default(), sid());
        assert_eq!(*log.lock().unwrap(), vec![3, 2, 1, 0]);
        // Uninstalling restores registration order.
        e.set_sweep_order(None);
        log.lock().unwrap().clear();
        e.poll(&ProgressState::default(), sid());
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sweep_order_hook_with_retirements_polls_each_task_once() {
        let mut e = Engine::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        // Tasks 0 and 2 finish on the first poll; 1 and 3 keep pending.
        for label in 0..4usize {
            let log = log.clone();
            e.add_task(Box::new(move |_t: &mut AsyncThing| {
                log.lock().unwrap().push(label);
                if label % 2 == 0 {
                    AsyncPoll::Done
                } else {
                    AsyncPoll::Pending
                }
            }));
        }
        e.set_sweep_order(Some(Arc::new(ReverseOrder)));
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_completed, 2);
        assert_eq!(*log.lock().unwrap(), vec![3, 2, 1, 0]);
        assert_eq!(e.task_count(), 2);
        // Survivors still polled on later sweeps.
        log.lock().unwrap().clear();
        e.poll(&ProgressState::default(), sid());
        assert_eq!(*log.lock().unwrap(), vec![3, 1]);
    }

    #[test]
    fn invalid_permutation_falls_back_to_registration_order() {
        let mut e = Engine::new();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        for label in 0..3 {
            order_recorder(&mut e, label, &log);
        }
        e.set_sweep_order(Some(Arc::new(BogusOrder)));
        e.poll(&ProgressState::default(), sid());
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn sweep_order_hook_isolates_panics() {
        let mut e = Engine::new();
        e.add_task(Box::new(|_t: &mut AsyncThing| -> AsyncPoll {
            panic!("injected");
        }));
        e.add_task(Box::new(|_t: &mut AsyncThing| AsyncPoll::Pending));
        e.set_sweep_order(Some(Arc::new(ReverseOrder)));
        let out = e.poll(&ProgressState::default(), sid());
        assert_eq!(out.tasks_poisoned, 1);
        assert_eq!(e.task_count(), 1);
        assert_eq!(e.poisoned_total(), 1);
    }

    #[test]
    fn made_progress_reflects_task_activity() {
        let mut e = Engine::new();
        let mut first = true;
        e.add_task(Box::new(move |_t: &mut AsyncThing| {
            if first {
                first = false;
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        }));
        assert!(e.poll(&ProgressState::default(), sid()).made_progress());
        assert!(!e.poll(&ProgressState::default(), sid()).made_progress());
    }
}

//! `MPI_Wtime` equivalent: a monotonic wall-clock in seconds since an
//! arbitrary process-wide epoch.
//!
//! The paper's dummy tasks and latency benchmarks are all expressed in terms
//! of `MPI_Wtime()` doubles; this module provides the same interface. The
//! implementation lives in [`mpfa_obs::clock`] — the bottom of the crate
//! graph — so observability event timestamps and benchmark timestamps share
//! one epoch and are directly comparable.

pub use mpfa_obs::clock::{warmup, wtick, wtime};

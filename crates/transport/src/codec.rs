//! Frame payload encoding for wire backends.
//!
//! The workspace builds fully offline (no serde), so message types that
//! want to cross a real socket implement [`FrameCodec`] by hand:
//! little-endian fixed-width integers, no implicit lengths (the frame
//! header already carries the payload size, so a trailing byte blob can
//! simply be "the rest of the payload"). The helpers here keep those
//! hand-rolled impls short and uniform.

use crate::bytes::MpfaBytes;

/// A message that can be serialized into (and parsed out of) a wire
/// frame's payload.
///
/// `decode` gets exactly the bytes `encode` appended — the frame layer
/// guarantees payload boundaries — and returns `None` on malformed
/// input (a protocol bug, not an I/O condition).
pub trait FrameCodec: Send + Sized + 'static {
    /// Append this message's payload bytes to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parse a payload produced by [`FrameCodec::encode`].
    fn decode(bytes: &[u8]) -> Option<Self>;

    /// Parse a payload delivered as a refcounted view ([`MpfaBytes`]).
    ///
    /// The default delegates to [`FrameCodec::decode`] on the borrowed
    /// bytes, which copies any payload the message retains. Messages
    /// with large byte fields override this to *slice* the view instead
    /// — that is the zero-copy receive path: a shared-memory backend
    /// hands ring views straight through to the matched receive without
    /// a memcpy.
    fn decode_bytes(bytes: MpfaBytes) -> Option<Self> {
        Self::decode(&bytes)
    }

    /// Exact number of bytes [`FrameCodec::encode`] would append, when
    /// the message can compute it without encoding.
    ///
    /// Backends with preallocated frame space (the shared-memory ring)
    /// use this to reserve the frame in place and then call
    /// [`FrameCodec::encode_into`], skipping the staging buffer — the
    /// payload is memcpy'd exactly once, by the injection itself. The
    /// default `None` routes the message through the staged-encode
    /// fallback.
    fn encoded_len(&self) -> Option<usize> {
        None
    }

    /// Encode into exactly `buf` (whose length a caller obtained from
    /// [`FrameCodec::encoded_len`]). Implementors must fill the whole
    /// slice. Only called when `encoded_len` returned `Some`.
    fn encode_into(&self, _buf: &mut [u8]) {
        unreachable!("encode_into requires an encoded_len implementation");
    }
}

/// Raw byte payloads pass through unchanged (handy for tests and for
/// protocols that do their own packing).
impl FrameCodec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }

    fn encoded_len(&self) -> Option<usize> {
        Some(self.len())
    }

    fn encode_into(&self, buf: &mut [u8]) {
        buf.copy_from_slice(self);
    }
}

/// Refcounted views pass through without copying in either direction on
/// decode; encode necessarily appends (the frame buffer is owned).
impl FrameCodec for MpfaBytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(MpfaBytes::copy_from(bytes))
    }

    fn decode_bytes(bytes: MpfaBytes) -> Option<Self> {
        Some(bytes)
    }

    fn encoded_len(&self) -> Option<usize> {
        Some(self.len())
    }

    fn encode_into(&self, buf: &mut [u8]) {
        buf.copy_from_slice(self);
    }
}

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i32` little-endian.
pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a payload slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Option<i32> {
        let b = self.take(4)?;
        Some(i32::from_le_bytes(b.try_into().ok()?))
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Take everything that remains (possibly empty).
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i32(&mut buf, -42);
        buf.extend_from_slice(b"tail");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.i32(), Some(-42));
        assert_eq!(r.rest(), b"tail");
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_return_none() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), None);
        // A failed read consumes nothing.
        assert_eq!(r.take(3), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn vec_u8_passthrough() {
        let v = vec![9u8, 8, 7];
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf, v);
        assert_eq!(<Vec<u8> as FrameCodec>::decode(&buf), Some(v));
    }

    #[test]
    fn mpfa_bytes_decode_is_zero_copy() {
        let view = MpfaBytes::from(vec![5u8, 6, 7, 8]);
        let mut buf = Vec::new();
        view.encode(&mut buf);
        assert_eq!(buf, vec![5u8, 6, 7, 8]);
        let ptr = view.as_ptr();
        let decoded = <MpfaBytes as FrameCodec>::decode_bytes(view).unwrap();
        assert_eq!(decoded.as_ptr(), ptr, "decode_bytes must not copy");
        // The borrowed-slice path still works (and copies).
        let copied = <MpfaBytes as FrameCodec>::decode(&buf).unwrap();
        assert_eq!(copied, decoded);
        assert_ne!(copied.as_ptr(), ptr);
    }
}

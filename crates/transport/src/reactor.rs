//! The epoll readiness reactor: event-driven wakeups for the wire.
//!
//! Before this module the wire engine's `pump` speculatively polled
//! every peer socket on every progress call — O(peers) syscalls per
//! sweep, which collapses at fan-ins beyond a dozen ranks. The reactor
//! inverts that: **one reactor per process** owns all of a transport's
//! nonblocking sockets inside one edge-triggered epoll set, a dedicated
//! thread blocks in `epoll_wait`, and readiness is published as bits in
//! a lock-free [`ReadySet`] bitmap that the progress engine consumes.
//! `external_work` then answers from a handful of atomic loads, and a
//! pump pass touches only the peers that actually have bytes waiting —
//! O(ready peers), not O(peers).
//!
//! ## Wakeup channels
//!
//! * **Sockets** (TCP/UDS data connections and the listener) are
//!   registered `EPOLLIN | EPOLLRDHUP | EPOLLET`. Edge-triggered means
//!   one event per readable *edge*: the consumer must read to
//!   `WouldBlock` (or explicitly re-mark the bit when it stops early)
//!   or the wakeup is lost — exactly the pathology the obs doctor's
//!   finding 11 and the DST `planted_lost_wakeup_bug` fixture cover.
//! * **The eventfd** doubles as shutdown channel and software doorbell
//!   ([`Reactor::wake`]): anyone can nudge the reactor thread, the
//!   same role the futex doorbell plays for the shared-memory
//!   transport's blocked consumers (`ShmTransport::wait_doorbell`).
//!
//! ## Fallback
//!
//! Off Linux — or with `MPFA_REACTOR=0` — [`Reactor::new`] returns
//! `None` and the wire engine keeps its legacy full-scan pump, so
//! behaviour (not performance) is identical everywhere; the
//! differential tests run both paths against the same byte streams.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Environment variable disabling the reactor (`MPFA_REACTOR=0` forces
/// the legacy full-scan pump even on Linux).
pub const ENV_REACTOR: &str = "MPFA_REACTOR";

/// True when the readiness reactor should be used: Linux, and not
/// explicitly disabled via [`ENV_REACTOR`].
pub fn reactor_enabled() -> bool {
    if !cfg!(target_os = "linux") {
        return false;
    }
    std::env::var(ENV_REACTOR).map_or(true, |v| v != "0" && !v.eq_ignore_ascii_case("false"))
}

/// A fixed-size atomic bitmap of ready peers. The reactor thread marks
/// bits as `epoll_wait` reports readiness; pump passes take them. Both
/// sides are lock-free; `any()` is one atomic load, which is what lets
/// `external_work` answer without a syscall.
pub struct ReadySet {
    words: Box<[AtomicU64]>,
    /// Number of set bits (kept exact: `mark` only increments on a
    /// 0→1 transition it observed atomically).
    set_hint: AtomicUsize,
}

impl ReadySet {
    /// A set able to hold bits `0..n`.
    pub fn new(n: usize) -> ReadySet {
        let words = (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        ReadySet {
            words,
            set_hint: AtomicUsize::new(0),
        }
    }

    /// Set bit `i`. Returns true when the bit was newly set (callers
    /// use this to keep the `reactor_ready_pending` gauge exact).
    pub fn mark(&self, i: usize) -> bool {
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        let newly = prev & mask == 0;
        if newly {
            self.set_hint.fetch_add(1, Ordering::AcqRel);
        }
        newly
    }

    /// Clear bit `i`. Returns true when the bit was set.
    pub fn take(&self, i: usize) -> bool {
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_and(!mask, Ordering::AcqRel);
        let was = prev & mask != 0;
        if was {
            self.set_hint.fetch_sub(1, Ordering::AcqRel);
        }
        was
    }

    /// True when any bit is set. One atomic load.
    pub fn any(&self) -> bool {
        self.set_hint.load(Ordering::Acquire) > 0
    }

    /// Atomically clear every set bit, pushing the indices into `out`
    /// (ascending). Returns how many were taken.
    pub fn take_all(&self, out: &mut Vec<usize>) -> usize {
        if !self.any() {
            return 0;
        }
        let mut taken = 0;
        for (w, word) in self.words.iter().enumerate() {
            if word.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut bits = word.swap(0, Ordering::AcqRel);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push(w * 64 + b);
                taken += 1;
            }
        }
        if taken > 0 {
            self.set_hint.fetch_sub(taken, Ordering::AcqRel);
        }
        taken
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::ReadySet;
    use std::os::raw::{c_int, c_void};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Raw syscalls, declared directly like `shm::sys` — the workspace
    // is std-only, no libc crate.
    mod sys {
        use std::os::raw::{c_int, c_void};

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLLET: u32 = 1 << 31;
        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;
        pub const EINTR: c_int = 4;

        /// Kernel ABI: packed on x86_64, naturally aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub token: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, ev: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                evs: *mut EpollEvent,
                max: c_int,
                timeout_ms: c_int,
            ) -> c_int;
            pub fn eventfd(initval: u32, flags: c_int) -> c_int;
            pub fn close(fd: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        }
    }

    /// Event token for the transport's own listener.
    pub const TOKEN_LISTENER: u64 = u64::MAX;
    /// Event token for the wake/shutdown eventfd.
    pub const TOKEN_WAKE: u64 = u64::MAX - 1;
    /// Event token shared by accepted-but-unidentified (pre-hello)
    /// sockets.
    pub const TOKEN_PENDING: u64 = u64::MAX - 2;

    /// State shared between the reactor thread and pump passes.
    pub struct Shared {
        /// Per-peer readiness bits (bit = peer rank).
        pub ready: ReadySet,
        /// The listener has at least one pending accept.
        pub listener_ready: AtomicBool,
        /// Some pre-hello socket became readable.
        pub pending_ready: AtomicBool,
        shutdown: AtomicBool,
    }

    /// The epoll reactor: fds, the shared readiness surface, and the
    /// thread blocked in `epoll_wait`.
    pub struct Reactor {
        epfd: c_int,
        wakefd: c_int,
        shared: Arc<Shared>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl Reactor {
        /// Build a reactor for `ranks` peers with the transport's
        /// listener pre-registered. `None` when epoll/eventfd are
        /// unavailable (callers fall back to the full-scan pump).
        pub fn new(ranks: usize, listener_fd: c_int) -> Option<Reactor> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return None;
            }
            let wakefd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if wakefd < 0 {
                unsafe { sys::close(epfd) };
                return None;
            }
            let shared = Arc::new(Shared {
                ready: ReadySet::new(ranks),
                listener_ready: AtomicBool::new(false),
                pending_ready: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
            });
            let mut reactor = Reactor {
                epfd,
                wakefd,
                shared: shared.clone(),
                thread: None,
            };
            // The wake channel is level-triggered on purpose: a wake
            // posted while the thread is mid-loop must not be lost.
            // (On any failure from here, Drop closes the fds.)
            if !reactor.ctl(sys::EPOLL_CTL_ADD, wakefd, TOKEN_WAKE, false)
                || !reactor.ctl(sys::EPOLL_CTL_ADD, listener_fd, TOKEN_LISTENER, true)
            {
                return None;
            }
            let thread = std::thread::Builder::new()
                .name("mpfa-reactor".into())
                .spawn(move || reactor_loop(epfd, wakefd, shared))
                .ok()?;
            reactor.thread = Some(thread);
            Some(reactor)
        }

        /// The shared readiness surface pump passes consume.
        pub fn shared(&self) -> &Shared {
            &self.shared
        }

        fn ctl(&self, op: c_int, fd: c_int, token: u64, edge: bool) -> bool {
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN | sys::EPOLLRDHUP | if edge { sys::EPOLLET } else { 0 },
                token,
            };
            mpfa_obs::global_counters()
                .wire_syscalls
                .fetch_add(1, Ordering::Relaxed);
            unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) == 0 }
        }

        /// Register a connected peer socket under its rank token. If
        /// the socket is already readable, edge-triggered ADD delivers
        /// the initial event immediately — nothing is lost in the
        /// connect→register window.
        pub fn add_peer(&self, fd: c_int, rank: usize) -> bool {
            self.ctl(sys::EPOLL_CTL_ADD, fd, rank as u64, true)
        }

        /// Register an accepted, not-yet-identified socket.
        pub fn add_pending(&self, fd: c_int) -> bool {
            self.ctl(sys::EPOLL_CTL_ADD, fd, TOKEN_PENDING, true)
        }

        /// Retag a pending socket that identified itself as `rank`.
        pub fn promote_pending(&self, fd: c_int, rank: usize) -> bool {
            self.ctl(sys::EPOLL_CTL_MOD, fd, rank as u64, true)
        }

        /// Drop a socket from the set. Usually unnecessary — closing
        /// an fd removes it from every epoll set — but pending strays
        /// handed to other owners need an explicit goodbye.
        #[allow(dead_code)]
        pub fn del(&self, fd: c_int) -> bool {
            mpfa_obs::global_counters()
                .wire_syscalls
                .fetch_add(1, Ordering::Relaxed);
            unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) == 0 }
        }

        /// Software doorbell: nudge the reactor thread (and through it,
        /// any `external_work` watcher) without socket traffic.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                sys::write(self.wakefd, &one as *const u64 as *const c_void, 8);
            }
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            if let Some(t) = self.thread.take() {
                self.shared.shutdown.store(true, Ordering::Release);
                self.wake();
                let _ = t.join();
            }
            unsafe {
                sys::close(self.epfd);
                sys::close(self.wakefd);
            }
        }
    }

    fn reactor_loop(epfd: c_int, wakefd: c_int, shared: Arc<Shared>) {
        const MAX_EVENTS: usize = 64;
        let mut evs = [sys::EpollEvent {
            events: 0,
            token: 0,
        }; MAX_EVENTS];
        loop {
            let n = unsafe { sys::epoll_wait(epfd, evs.as_mut_ptr(), MAX_EVENTS as c_int, -1) };
            if n < 0 {
                match std::io::Error::last_os_error().raw_os_error() {
                    Some(e) if e == sys::EINTR => continue,
                    _ => return,
                }
            }
            let counters = mpfa_obs::global_counters();
            let mut published = 0u64;
            for ev in &evs[..n as usize] {
                match ev.token {
                    TOKEN_WAKE => {
                        let mut buf = 0u64;
                        unsafe {
                            sys::read(wakefd, &mut buf as *mut u64 as *mut c_void, 8);
                        }
                    }
                    TOKEN_LISTENER => {
                        shared.listener_ready.store(true, Ordering::Release);
                        published += 1;
                    }
                    TOKEN_PENDING => {
                        shared.pending_ready.store(true, Ordering::Release);
                        published += 1;
                    }
                    rank => {
                        if shared.ready.mark(rank as usize) {
                            counters
                                .reactor_ready_pending
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        published += 1;
                    }
                }
            }
            if published > 0 {
                counters.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::ReadySet;
    use std::sync::atomic::AtomicBool;

    /// Readiness surface the wire pump consumes. Never constructed off
    /// Linux — [`Reactor::new`] always returns `None` there.
    #[allow(dead_code)]
    pub struct Shared {
        /// Per-peer readiness bits (bit = peer rank).
        pub ready: ReadySet,
        /// The listener has at least one pending accept.
        pub listener_ready: AtomicBool,
        /// Some pre-hello socket became readable.
        pub pending_ready: AtomicBool,
    }

    /// Stub reactor for platforms without epoll: construction always
    /// fails, so the wire engine keeps its legacy full-scan pump.
    pub struct Reactor {
        shared: Shared,
    }

    impl Reactor {
        /// Always `None` off Linux.
        pub fn new(_ranks: usize, _listener_fd: i32) -> Option<Reactor> {
            None
        }

        /// The shared readiness surface (unreachable off Linux).
        pub fn shared(&self) -> &Shared {
            &self.shared
        }

        /// No-op off Linux.
        pub fn add_peer(&self, _fd: i32, _rank: usize) -> bool {
            false
        }

        /// No-op off Linux.
        pub fn add_pending(&self, _fd: i32) -> bool {
            false
        }

        /// No-op off Linux.
        pub fn promote_pending(&self, _fd: i32, _rank: usize) -> bool {
            false
        }

        /// No-op off Linux.
        pub fn wake(&self) {}
    }
}

pub use imp::{Reactor, Shared};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_set_marks_takes_and_counts() {
        let s = ReadySet::new(130);
        assert!(!s.any());
        assert!(s.mark(0));
        assert!(s.mark(65));
        assert!(s.mark(129));
        assert!(!s.mark(65), "second mark of a set bit is not new");
        assert!(s.any());
        let mut out = Vec::new();
        assert_eq!(s.take_all(&mut out), 3);
        assert_eq!(out, vec![0, 65, 129]);
        assert!(!s.any());
        assert_eq!(s.take_all(&mut out), 0);
    }

    #[test]
    fn ready_set_single_take_clears_one_bit() {
        let s = ReadySet::new(8);
        s.mark(3);
        s.mark(5);
        assert!(s.take(3));
        assert!(!s.take(3), "already taken");
        assert!(s.any(), "bit 5 still set");
        assert!(s.take(5));
        assert!(!s.any());
    }

    #[test]
    fn ready_set_is_exact_under_concurrent_marks() {
        use std::sync::Arc;
        let s = Arc::new(ReadySet::new(256));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut newly = 0usize;
                    for i in 0..256 {
                        if s.mark((i * 4 + t) % 256) {
                            newly += 1;
                        }
                    }
                    newly
                })
            })
            .collect();
        let newly: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(newly, 256, "every bit newly set exactly once");
        let mut out = Vec::new();
        assert_eq!(s.take_all(&mut out), 256);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_publishes_listener_and_peer_readiness() {
        use std::io::Write;
        use std::os::fd::AsRawFd;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let reactor = Reactor::new(4, listener.as_raw_fd()).expect("reactor on linux");

        // A dial makes the listener readable.
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !reactor
            .shared()
            .listener_ready
            .load(std::sync::atomic::Ordering::Acquire)
        {
            assert!(std::time::Instant::now() < deadline, "no listener wakeup");
            std::thread::yield_now();
        }

        // Register the accepted peer socket and write to it: the peer
        // bit must light up without anyone polling the socket.
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();
        assert!(reactor.add_peer(sock.as_raw_fd(), 2));
        client.write_all(b"ding").unwrap();
        while !reactor.shared().ready.any() {
            assert!(std::time::Instant::now() < deadline, "no peer wakeup");
            std::thread::yield_now();
        }
        let mut out = Vec::new();
        reactor.shared().ready.take_all(&mut out);
        assert_eq!(out, vec![2]);
        // Keep the obs gauge exact: these bits were consumed.
        mpfa_obs::global_counters()
            .reactor_ready_pending
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

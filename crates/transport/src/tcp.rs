//! TCP backend: the wire engine over kernel TCP sockets.
//!
//! Works on localhost and across a LAN. Nagle is disabled on every
//! connection — the MPI layer sends many small control frames
//! (RTS/CTS/acks) whose latency matters far more than segment packing.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use crate::wire::{SockFamily, WireTransport};
use crate::TransportKind;

/// The TCP address family.
pub struct TcpFamily;

impl SockFamily for TcpFamily {
    type Listener = TcpListener;
    type Stream = TcpStream;
    const KIND: TransportKind = TransportKind::Tcp;

    fn bind(hint: &str) -> io::Result<(TcpListener, String)> {
        let listener = TcpListener::bind(hint)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        Ok((listener, addr))
    }

    fn accept(listener: &TcpListener) -> io::Result<Option<TcpStream>> {
        match listener.accept() {
            Ok((sock, _)) => {
                let _ = sock.set_nodelay(true);
                Ok(Some(sock))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
        let sa: SocketAddr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let sock = TcpStream::connect_timeout(&sa, timeout)?;
        let _ = sock.set_nodelay(true);
        Ok(sock)
    }

    fn set_nonblocking(stream: &TcpStream, on: bool) -> io::Result<()> {
        stream.set_nonblocking(on)
    }

    fn set_read_timeout(stream: &TcpStream, timeout: Option<Duration>) -> io::Result<()> {
        stream.set_read_timeout(timeout)
    }

    #[cfg(unix)]
    fn listener_fd(listener: &TcpListener) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(listener.as_raw_fd())
    }

    #[cfg(unix)]
    fn stream_fd(stream: &TcpStream) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(stream.as_raw_fd())
    }

    fn cleanup(_addr: &str) {}
}

/// The TCP transport: see [`WireTransport`] for the full contract.
pub type TcpTransport<M> = WireTransport<M, TcpFamily>;

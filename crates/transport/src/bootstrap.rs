//! Bootstrap rendezvous: how N freshly-spawned processes find each
//! other and come up as one connected world.
//!
//! The shape is the classic PMI handshake, shrunk to its essentials:
//!
//! 1. Every rank binds its **data** listener first (at an ephemeral
//!    address), so its concrete address exists before anyone asks.
//! 2. **Rank 0** binds a second, well-known **rendezvous** listener at
//!    the address in `MPFA_PEERS`. Every other rank dials it (with
//!    retry — rank 0 may not be up yet) and submits
//!    `[rank: u32][len: u32][data address]`.
//! 3. Once all `N-1` submissions are in, rank 0 answers each with the
//!    full peer table `[count: u32]` + `count × [len: u32][bytes]`.
//! 4. Everyone builds its [`WireTransport`] from the table and pumps
//!    until the data mesh is fully connected.
//! 5. Barrier: each rank sends one `READY` byte on its rendezvous
//!    connection; rank 0 answers each with one `GO` byte after all
//!    have reported. Nobody touches MPI traffic before `GO`, so no
//!    rank can race ahead of a peer that is still dialing.
//!
//! ## Tree rendezvous
//!
//! The flat handshake funnels `N-1` connections into rank 0 — fine at
//! 8 ranks, a serial accept storm at 256. Worlds larger than
//! `fanout + 1` ranks therefore rendezvous along a K-ary tree
//! (`MPFA_TREE_FANOUT`, default 8): every internal node binds its own
//! small rendezvous listener, children submit their whole subtree's
//! address table upward, the root scatters the merged table back down
//! the same connections, and the READY/GO barrier runs up-then-down
//! the tree. No process ever handles more than `fanout + 1` handshake
//! sockets, and the depth is `log_K N`.
//!
//! Tree listener addresses are derived from the rendezvous path for
//! UDS/SHM (`{path}.t{rank}`); TCP cannot derive ephemeral ports, so
//! the launcher pre-picks one per rank and passes the list in
//! `MPFA_TREE` (without it, TCP falls back to the flat handshake).
//!
//! The elapsed wall-clock of the whole dance lands in the
//! `bootstrap_secs` obs counter. All handshake sockets are blocking
//! with read timeouts; every stage has a deadline, so a missing peer
//! fails the job instead of hanging it.

use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

use mpfa_core::wtime;

use crate::codec::FrameCodec;
use crate::wire::{Bound, SockFamily, WireOpts, WireTransport};
use crate::{Transport, TransportKind};

/// Env var selecting the backend (`sim` | `tcp` | `uds` | `shm`).
pub const ENV_TRANSPORT: &str = "MPFA_TRANSPORT";
/// Env var carrying this process's world rank.
pub const ENV_RANK: &str = "MPFA_RANK";
/// Env var carrying the world size.
pub const ENV_RANKS: &str = "MPFA_RANKS";
/// Env var carrying the rendezvous address (TCP `host:port` or a UDS
/// socket path) where rank 0 collects the peer table.
pub const ENV_PEERS: &str = "MPFA_PEERS";
/// Env var (set to `1`) that makes every dialer artificially fail its
/// first connection attempt to each peer, exercising the retry path.
pub const ENV_INJECT_CONNECT_FAIL: &str = "MPFA_INJECT_CONNECT_FAIL";
/// Env var carrying comma-separated per-rank tree-rendezvous addresses
/// (index = rank). Needed only for TCP, where internal tree nodes
/// cannot derive a listener address; the launcher pre-picks the ports.
pub const ENV_TREE: &str = "MPFA_TREE";
/// Env var overriding the rendezvous tree fanout (default 8, min 2).
pub const ENV_TREE_FANOUT: &str = "MPFA_TREE_FANOUT";

/// The rendezvous tree fanout `K`: `MPFA_TREE_FANOUT` or 8. Worlds of
/// at most `K + 1` ranks use the flat handshake (the root would accept
/// every rank directly anyway).
pub fn tree_fanout() -> usize {
    std::env::var(ENV_TREE_FANOUT)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k| k >= 2)
        .unwrap_or(8)
}

/// Seconds a rank waits for the whole rendezvous (submission, table,
/// barrier) before giving up.
const RENDEZVOUS_DEADLINE: f64 = 60.0;
/// Seconds allowed for the data mesh to fully connect.
const MESH_DEADLINE: f64 = 30.0;

const READY: u8 = 0xA5;
const GO: u8 = 0x5A;

/// The launcher-provided identity of this process, read from the
/// environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEnv {
    /// This process's world rank.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// Which wire backend to bring up.
    pub kind: TransportKind,
    /// The rendezvous address rank 0 listens on.
    pub rendezvous: String,
    /// Per-rank tree-rendezvous listener addresses (index = rank), when
    /// the launcher provided them (`MPFA_TREE`). UDS/SHM derive these
    /// from `rendezvous` instead and leave this `None`.
    pub tree: Option<Vec<String>>,
}

/// Read the launcher environment, if present. Returns `None` when
/// `MPFA_RANK` is unset (a plain in-process run). Panics on a malformed
/// launcher environment — that is a launcher bug, not a user error.
pub fn boot_env() -> Option<BootEnv> {
    let rank = std::env::var(ENV_RANK).ok()?;
    let rank: usize = rank
        .parse()
        .unwrap_or_else(|_| panic!("bad {ENV_RANK}={rank}"));
    let ranks: usize = std::env::var(ENV_RANKS)
        .unwrap_or_else(|_| panic!("{ENV_RANK} is set but {ENV_RANKS} is not"))
        .parse()
        .expect("bad MPFA_RANKS");
    let kind = match TransportKind::from_env() {
        Ok(Some(k)) => k,
        Ok(None) => TransportKind::Tcp,
        Err(v) => panic!("bad {ENV_TRANSPORT}={v} (want sim|tcp|uds|shm)"),
    };
    let rendezvous = std::env::var(ENV_PEERS)
        .unwrap_or_else(|_| panic!("{ENV_RANK} is set but {ENV_PEERS} is not"));
    assert!(
        rank < ranks,
        "{ENV_RANK}={rank} out of range for {ENV_RANKS}={ranks}"
    );
    let tree = std::env::var(ENV_TREE).ok().map(|v| {
        let addrs: Vec<String> = v.split(',').map(str::to_string).collect();
        assert!(
            addrs.len() == ranks,
            "{ENV_TREE} has {} addresses for {ENV_RANKS}={ranks}",
            addrs.len()
        );
        addrs
    });
    Some(BootEnv {
        rank,
        ranks,
        kind,
        rendezvous,
        tree,
    })
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_string())
}

fn write_u32<S: Write>(s: &mut S, v: u32) -> io::Result<()> {
    s.write_all(&v.to_le_bytes())
}

fn read_u32<S: Read>(s: &mut S) -> io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Where rank `r` binds its data listener (or lays its shared-memory
/// segment), given the rendezvous address: TCP picks an ephemeral
/// localhost port; UDS and SHM lay their files next to the rendezvous
/// socket.
fn data_hint(kind: TransportKind, rendezvous: &str, rank: usize) -> String {
    match kind {
        TransportKind::Tcp => "127.0.0.1:0".to_string(),
        TransportKind::Uds => format!("{rendezvous}.r{rank}"),
        TransportKind::Shm => format!("{rendezvous}.r{rank}.seg"),
        TransportKind::Sim => unreachable!("sim has no data listener"),
    }
}

// --------------------------------------------------------------------
// Tree topology
// --------------------------------------------------------------------

/// Parent of `r` in the K-ary rendezvous tree (root is rank 0).
fn tree_parent(r: usize, fanout: usize) -> Option<usize> {
    (r > 0).then(|| (r - 1) / fanout)
}

/// Direct children of `r` in a K-ary tree over `ranks` ranks.
fn tree_children(r: usize, ranks: usize, fanout: usize) -> std::ops::Range<usize> {
    let lo = (r * fanout + 1).min(ranks);
    let hi = (r * fanout + fanout + 1).min(ranks);
    lo..hi
}

/// Number of ranks in the subtree rooted at `r` (including `r`). Used
/// to validate that a child's gather message covers its whole subtree.
fn subtree_size(r: usize, ranks: usize, fanout: usize) -> usize {
    1 + tree_children(r, ranks, fanout)
        .map(|c| subtree_size(c, ranks, fanout))
        .sum::<usize>()
}

/// The per-rank tree listener addresses, when a tree rendezvous is
/// worth running and addressable: launcher-provided (`MPFA_TREE`)
/// first, else derived from the rendezvous path for UDS/SHM. `None`
/// means run the flat handshake.
fn tree_addrs(env: &BootEnv) -> Option<Vec<String>> {
    if env.ranks <= tree_fanout() + 1 {
        return None;
    }
    if let Some(t) = &env.tree {
        return (t.len() == env.ranks).then(|| t.clone());
    }
    match env.kind {
        // The handshake legs for SHM run over UDS sockets laid next to
        // the rendezvous path, so both kinds derive the same way.
        TransportKind::Uds | TransportKind::Shm => Some(
            (0..env.ranks)
                .map(|r| {
                    if r == 0 {
                        env.rendezvous.clone()
                    } else {
                        format!("{}.t{r}", env.rendezvous)
                    }
                })
                .collect(),
        ),
        _ => None,
    }
}

/// The open handshake connections a rank keeps for the stage-5
/// barrier: flat ranks hold a star around rank 0, tree ranks hold one
/// parent leg plus one leg per direct child.
enum RendezvousConns<F: SockFamily> {
    /// Rank 0: one entry per peer; others: entry 0 only.
    Flat(Vec<Option<F::Stream>>),
    /// Tree node: parent leg (`None` at the root) + child legs.
    Tree {
        parent: Option<F::Stream>,
        children: Vec<F::Stream>,
    },
}

/// Stages 2+3, tree form: gather subtree address tables toward rank 0,
/// scatter the merged table back down the same connections.
fn rendezvous_tree<F: SockFamily>(
    env: &BootEnv,
    my_addr: &str,
    addrs: &[String],
    fanout: usize,
) -> io::Result<(Vec<String>, RendezvousConns<F>)> {
    let io_timeout = Some(Duration::from_secs_f64(RENDEZVOUS_DEADLINE));
    let children: Vec<usize> = tree_children(env.rank, env.ranks, fanout).collect();
    // Bind before dialing the parent, so our children can reach us
    // while we ourselves wait in line.
    let listener = if children.is_empty() {
        None
    } else {
        Some(F::bind(&addrs[env.rank])?.0)
    };

    // -- gather: one message per child, covering its whole subtree ----
    let mut entries: Vec<(usize, String)> = vec![(env.rank, my_addr.to_string())];
    let mut child_conns: Vec<F::Stream> = Vec::with_capacity(children.len());
    if let Some(listener) = &listener {
        let mut missing: Vec<usize> = children.clone();
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        while !missing.is_empty() {
            match F::accept(listener)? {
                Some(mut sock) => {
                    F::set_nonblocking(&sock, false)?;
                    F::set_read_timeout(&sock, io_timeout)?;
                    let child = read_u32(&mut sock)? as usize;
                    let Some(i) = missing.iter().position(|&c| c == child) else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected tree submission from rank {child}"),
                        ));
                    };
                    missing.swap_remove(i);
                    let n = read_u32(&mut sock)? as usize;
                    if n != subtree_size(child, env.ranks, fanout) {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("rank {child} submitted {n} entries for its subtree"),
                        ));
                    }
                    for _ in 0..n {
                        let rank = read_u32(&mut sock)? as usize;
                        let len = read_u32(&mut sock)? as usize;
                        if rank >= env.ranks || len > 4096 {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad tree entry (rank {rank}, len {len})"),
                            ));
                        }
                        let mut addr = vec![0u8; len];
                        sock.read_exact(&mut addr)?;
                        entries.push((
                            rank,
                            String::from_utf8(addr).map_err(|_| {
                                io::Error::new(io::ErrorKind::InvalidData, "non-utf8 peer address")
                            })?,
                        ));
                    }
                    child_conns.push(sock);
                }
                None => {
                    if wtime() > deadline {
                        return Err(timeout_err(&format!(
                            "tree rendezvous: child rank(s) {missing:?} never reported"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    // All children are in: the listener has done its job. The open
    // connections outlive it.
    drop(listener);
    if !children.is_empty() {
        F::cleanup(&addrs[env.rank]);
    }

    if env.rank == 0 {
        let mut table = vec![String::new(); env.ranks];
        for (r, a) in entries {
            table[r] = a;
        }
        debug_assert!(table.iter().all(|a| !a.is_empty()));
        for sock in &mut child_conns {
            write_table(sock, &table)?;
        }
        Ok((
            table,
            RendezvousConns::Tree {
                parent: None,
                children: child_conns,
            },
        ))
    } else {
        // Submit the whole subtree upward, then wait for the full
        // table and forward it down.
        let parent = tree_parent(env.rank, fanout).expect("non-root has a parent");
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        let mut sock = loop {
            match F::connect(&addrs[parent], Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(_) if wtime() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };
        F::set_read_timeout(&sock, io_timeout)?;
        write_u32(&mut sock, env.rank as u32)?;
        write_u32(&mut sock, entries.len() as u32)?;
        for (r, a) in &entries {
            write_u32(&mut sock, *r as u32)?;
            write_u32(&mut sock, a.len() as u32)?;
            sock.write_all(a.as_bytes())?;
        }
        let table = read_table(&mut sock, env.ranks)?;
        for c in &mut child_conns {
            write_table(c, &table)?;
        }
        Ok((
            table,
            RendezvousConns::Tree {
                parent: Some(sock),
                children: child_conns,
            },
        ))
    }
}

/// Serialize the full peer table: `[count] + count × [len][bytes]`.
fn write_table<S: Write>(s: &mut S, table: &[String]) -> io::Result<()> {
    write_u32(s, table.len() as u32)?;
    for addr in table {
        write_u32(s, addr.len() as u32)?;
        s.write_all(addr.as_bytes())?;
    }
    Ok(())
}

/// Read a full peer table, validating the advertised world size.
fn read_table<S: Read>(s: &mut S, ranks: usize) -> io::Result<Vec<String>> {
    let count = read_u32(s)? as usize;
    if count != ranks {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rendezvous table has {count} entries, expected {ranks}"),
        ));
    }
    let mut table = Vec::with_capacity(count);
    for _ in 0..count {
        let len = read_u32(s)? as usize;
        if len > 4096 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer address too long",
            ));
        }
        let mut addr = vec![0u8; len];
        s.read_exact(&mut addr)?;
        table
            .push(String::from_utf8(addr).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "non-utf8 peer address")
            })?);
    }
    Ok(table)
}

/// Stages 2+3: exchange data addresses — along the rendezvous tree
/// when the world is big enough and addressable, else through rank 0's
/// flat listener. Returns the full peer table plus the open handshake
/// connections (used again for the stage-5 barrier).
fn rendezvous_table<F: SockFamily>(
    env: &BootEnv,
    my_addr: &str,
) -> io::Result<(Vec<String>, RendezvousConns<F>)> {
    if let Some(addrs) = tree_addrs(env) {
        return rendezvous_tree::<F>(env, my_addr, &addrs, tree_fanout());
    }
    rendezvous_flat::<F>(env, my_addr)
}

/// Stages 2+3, flat form: everyone reports to rank 0 directly.
#[allow(clippy::type_complexity)]
fn rendezvous_flat<F: SockFamily>(
    env: &BootEnv,
    my_addr: &str,
) -> io::Result<(Vec<String>, RendezvousConns<F>)> {
    let io_timeout = Some(Duration::from_secs_f64(RENDEZVOUS_DEADLINE));
    if env.rank == 0 {
        let (listener, _) = F::bind(&env.rendezvous)?;
        let mut table = vec![String::new(); env.ranks];
        table[0] = my_addr.to_string();
        let mut conns: Vec<Option<F::Stream>> = (0..env.ranks).map(|_| None).collect();
        let mut missing = env.ranks - 1;
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        while missing > 0 {
            match F::accept(&listener)? {
                Some(mut sock) => {
                    F::set_nonblocking(&sock, false)?;
                    F::set_read_timeout(&sock, io_timeout)?;
                    let rank = read_u32(&mut sock)? as usize;
                    let len = read_u32(&mut sock)? as usize;
                    if rank == 0 || rank >= env.ranks || len > 4096 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad rendezvous submission (rank {rank}, len {len})"),
                        ));
                    }
                    let mut addr = vec![0u8; len];
                    sock.read_exact(&mut addr)?;
                    let addr = String::from_utf8(addr).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "non-utf8 peer address")
                    })?;
                    if conns[rank].is_none() {
                        missing -= 1;
                    }
                    table[rank] = addr;
                    conns[rank] = Some(sock);
                }
                None => {
                    if wtime() > deadline {
                        return Err(timeout_err(&format!(
                            "rendezvous: {missing} rank(s) never reported"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Answer everyone with the full table.
        for sock in conns.iter_mut().flatten() {
            write_table(sock, &table)?;
        }
        Ok((table, RendezvousConns::Flat(conns)))
    } else {
        // Dial rank 0, retrying while it comes up.
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        let mut sock = loop {
            match F::connect(&env.rendezvous, Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(_) if wtime() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };
        F::set_read_timeout(&sock, io_timeout)?;
        write_u32(&mut sock, env.rank as u32)?;
        write_u32(&mut sock, my_addr.len() as u32)?;
        sock.write_all(my_addr.as_bytes())?;
        let table = read_table(&mut sock, env.ranks)?;
        let mut conns: Vec<Option<F::Stream>> = (0..env.ranks).map(|_| None).collect();
        conns[0] = Some(sock);
        Ok((table, RendezvousConns::Flat(conns)))
    }
}

fn expect_byte<S: Read>(s: &mut S, want: u8, what: &str) -> io::Result<()> {
    let mut b = [0u8; 1];
    s.read_exact(&mut b)?;
    if b[0] != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad {what} byte"),
        ));
    }
    Ok(())
}

/// Stage 5: READY/GO barrier over the handshake sockets — a star
/// around rank 0 in the flat form, an up-then-down sweep in the tree
/// form — then rank 0 removes the flat rendezvous listener's
/// filesystem residue (tree listeners were cleaned during the
/// rendezvous itself).
fn ready_go_barrier<F: SockFamily>(
    env: &BootEnv,
    conns: &mut RendezvousConns<F>,
) -> io::Result<()> {
    match conns {
        RendezvousConns::Flat(conns) => {
            if env.rank == 0 {
                for sock in conns.iter_mut().flatten() {
                    expect_byte(sock, READY, "READY")?;
                }
                for sock in conns.iter_mut().flatten() {
                    sock.write_all(&[GO])?;
                }
                F::cleanup(&env.rendezvous);
            } else {
                let sock = conns[0].as_mut().expect("rendezvous conn");
                sock.write_all(&[READY])?;
                expect_byte(sock, GO, "GO")?;
            }
        }
        RendezvousConns::Tree { parent, children } => {
            // A READY propagates upward only once this whole subtree is
            // ready; the root's GO then fans back down, so no rank
            // starts MPI traffic before every rank passed establish.
            for sock in children.iter_mut() {
                expect_byte(sock, READY, "READY")?;
            }
            if let Some(p) = parent.as_mut() {
                p.write_all(&[READY])?;
                expect_byte(p, GO, "GO")?;
            }
            for sock in children.iter_mut() {
                sock.write_all(&[GO])?;
            }
        }
    }
    Ok(())
}

fn establish_family<M: FrameCodec, F: SockFamily>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    let t0 = wtime();
    let bound: Bound<F> = Bound::bind(&data_hint(env.kind, &env.rendezvous, env.rank))?;

    // --- stages 2+3: collect/receive the peer table ------------------
    let addr = bound.addr.clone();
    let (table, mut rendezvous_conns) = rendezvous_table::<F>(env, &addr)?;

    // --- stage 4: bring up the data mesh -----------------------------
    let transport: WireTransport<M, F> =
        WireTransport::new(bound, env.rank, table, eps_per_rank, opts);
    transport.establish(MESH_DEADLINE)?;

    // --- stage 5: READY/GO barrier over the rendezvous sockets -------
    ready_go_barrier::<F>(env, &mut rendezvous_conns)?;

    mpfa_obs::global_counters().record_bootstrap_secs(wtime() - t0);
    Ok(Arc::new(transport))
}

/// The shared-memory bootstrap: same rendezvous dance, but the "data
/// address" each rank publishes is the path of its freshly-created mmap
/// segment, and the handshake legs run over Unix-domain sockets laid
/// next to the rendezvous path. Creating the segment *before*
/// submitting and attaching *after* the table arrives means every peer
/// segment already exists at attach time; the READY/GO barrier then
/// guarantees all ranks are fully mapped before any MPI traffic.
#[cfg(unix)]
fn establish_shm<M: FrameCodec>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    let t0 = wtime();
    let seg_path = data_hint(TransportKind::Shm, &env.rendezvous, env.rank);
    let own = crate::shm::ShmSegmentOwner::create(&seg_path, env.ranks, eps_per_rank)?;
    let (table, mut rendezvous_conns) = rendezvous_table::<crate::uds::UdsFamily>(env, own.path())?;
    let transport: crate::shm::ShmTransport<M> =
        crate::shm::ShmTransport::new(own, env.rank, table, opts)?;
    ready_go_barrier::<crate::uds::UdsFamily>(env, &mut rendezvous_conns)?;
    mpfa_obs::global_counters().record_bootstrap_secs(wtime() - t0);
    Ok(Arc::new(transport))
}

/// Run the full bootstrap for this process: bind the data listener,
/// rendezvous for the peer table, connect the mesh, pass the barrier.
/// Returns the ready-to-use transport.
pub fn establish<M: FrameCodec>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    match env.kind {
        TransportKind::Sim => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "the simulated transport is in-process and has no bootstrap",
        )),
        TransportKind::Tcp => establish_family::<M, crate::tcp::TcpFamily>(env, eps_per_rank, opts),
        #[cfg(unix)]
        TransportKind::Uds => establish_family::<M, crate::uds::UdsFamily>(env, eps_per_rank, opts),
        #[cfg(not(unix))]
        TransportKind::Uds => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix domain sockets are not available on this platform",
        )),
        #[cfg(unix)]
        TransportKind::Shm => establish_shm::<M>(env, eps_per_rank, opts),
        #[cfg(not(unix))]
        TransportKind::Shm => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments are not available on this platform",
        )),
    }
}

/// Bind-and-release an ephemeral TCP port for use as a rendezvous
/// address (used by `mpfarun` and tests; a tiny race against port reuse
/// is accepted).
pub fn pick_tcp_rendezvous() -> io::Result<String> {
    let l = std::net::TcpListener::bind("127.0.0.1:0")?;
    Ok(l.local_addr()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Path;

    fn run_world(kind: TransportKind, rendezvous: String, ranks: usize) {
        run_world_tree(kind, rendezvous, ranks, None)
    }

    fn run_world_tree(
        kind: TransportKind,
        rendezvous: String,
        ranks: usize,
        tree: Option<Vec<String>>,
    ) {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let env = BootEnv {
                    rank,
                    ranks,
                    kind,
                    rendezvous: rendezvous.clone(),
                    tree: tree.clone(),
                };
                std::thread::spawn(move || {
                    let t = establish::<Vec<u8>>(&env, 1, WireOpts::default())
                        .unwrap_or_else(|e| panic!("rank {rank} bootstrap failed: {e}"));
                    // Everyone sends one message to every other rank...
                    for dst in 0..ranks {
                        if dst != rank {
                            t.send(rank, dst, vec![rank as u8; 8], 8);
                        }
                    }
                    // ...and collects one from every other rank.
                    let mut got = Vec::new();
                    let deadline = wtime() + 20.0;
                    while got.len() < ranks - 1 {
                        t.progress();
                        t.poll(rank, Path::Net, usize::MAX, &mut got);
                        assert!(wtime() < deadline, "rank {rank} starved");
                    }
                    let mut froms: Vec<usize> = got.iter().map(|e| e.src).collect();
                    froms.sort_unstable();
                    let expect: Vec<usize> = (0..ranks).filter(|&r| r != rank).collect();
                    assert_eq!(froms, expect);
                    for env in &got {
                        assert_eq!(env.msg, vec![env.src as u8; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("bootstrap world thread panicked");
        }
    }

    #[test]
    fn tcp_bootstrap_three_ranks() {
        let rendezvous = pick_tcp_rendezvous().unwrap();
        run_world(TransportKind::Tcp, rendezvous, 3);
        assert!(mpfa_obs::global_counters().snapshot().bootstrap_secs > 0.0);
    }

    #[cfg(unix)]
    #[test]
    fn uds_bootstrap_three_ranks() {
        let dir = std::env::temp_dir().join(format!("mpfa-boot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rendezvous = dir.join("boot.sock").to_string_lossy().into_owned();
        run_world(TransportKind::Uds, rendezvous, 3);
    }

    #[cfg(unix)]
    #[test]
    fn shm_bootstrap_three_ranks() {
        let dir = std::env::temp_dir().join(format!("mpfa-boot-shm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rendezvous = dir.join("boot.sock").to_string_lossy().into_owned();
        run_world(TransportKind::Shm, rendezvous.clone(), 3);
        // Clean shutdown unlinks every rank's segment.
        for r in 0..3 {
            let seg = format!("{rendezvous}.r{r}.seg");
            assert!(
                !std::path::Path::new(&seg).exists(),
                "stale segment {seg} left behind"
            );
        }
    }

    #[test]
    fn boot_env_absent_means_in_process() {
        // The test runner does not set MPFA_RANK.
        assert_eq!(boot_env(), None);
    }

    #[test]
    fn tree_topology_covers_every_rank_once() {
        for ranks in [1, 2, 9, 10, 17, 64, 100, 256] {
            for fanout in [2, 8] {
                let mut seen = vec![0usize; ranks];
                seen[0] += 1;
                for r in 0..ranks {
                    for c in tree_children(r, ranks, fanout) {
                        assert_eq!(tree_parent(c, fanout), Some(r));
                        seen[c] += 1;
                    }
                }
                assert!(seen.iter().all(|&n| n == 1), "ranks={ranks} K={fanout}");
                assert_eq!(subtree_size(0, ranks, fanout), ranks);
            }
        }
    }

    #[cfg(unix)]
    #[test]
    fn uds_tree_bootstrap_sixteen_ranks() {
        // 16 > fanout + 1 = 9, so the UDS path takes the derived-address
        // tree rendezvous automatically.
        let dir = std::env::temp_dir().join(format!("mpfa-boot-tree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rendezvous = dir.join("boot.sock").to_string_lossy().into_owned();
        assert!(tree_addrs(&BootEnv {
            rank: 0,
            ranks: 16,
            kind: TransportKind::Uds,
            rendezvous: rendezvous.clone(),
            tree: None,
        })
        .is_some());
        run_world(TransportKind::Uds, rendezvous.clone(), 16);
        // Tree listener sockets were cleaned up during the rendezvous.
        for r in 0..16 {
            let sock = if r == 0 {
                rendezvous.clone()
            } else {
                format!("{rendezvous}.t{r}")
            };
            assert!(
                !std::path::Path::new(&sock).exists(),
                "stale tree socket {sock}"
            );
        }
    }

    #[test]
    fn tcp_tree_bootstrap_with_launcher_addresses() {
        let ranks = 12;
        let addrs: Vec<String> = (0..ranks).map(|_| pick_tcp_rendezvous().unwrap()).collect();
        run_world_tree(
            TransportKind::Tcp,
            addrs[0].clone(),
            ranks,
            Some(addrs.clone()),
        );
    }

    #[test]
    fn tcp_without_tree_addresses_stays_flat() {
        let env = BootEnv {
            rank: 3,
            ranks: 64,
            kind: TransportKind::Tcp,
            rendezvous: "127.0.0.1:9999".into(),
            tree: None,
        };
        assert!(tree_addrs(&env).is_none());
    }
}

//! Bootstrap rendezvous: how N freshly-spawned processes find each
//! other and come up as one connected world.
//!
//! The shape is the classic PMI handshake, shrunk to its essentials:
//!
//! 1. Every rank binds its **data** listener first (at an ephemeral
//!    address), so its concrete address exists before anyone asks.
//! 2. **Rank 0** binds a second, well-known **rendezvous** listener at
//!    the address in `MPFA_PEERS`. Every other rank dials it (with
//!    retry — rank 0 may not be up yet) and submits
//!    `[rank: u32][len: u32][data address]`.
//! 3. Once all `N-1` submissions are in, rank 0 answers each with the
//!    full peer table `[count: u32]` + `count × [len: u32][bytes]`.
//! 4. Everyone builds its [`WireTransport`] from the table and pumps
//!    until the data mesh is fully connected.
//! 5. Barrier: each rank sends one `READY` byte on its rendezvous
//!    connection; rank 0 answers each with one `GO` byte after all
//!    have reported. Nobody touches MPI traffic before `GO`, so no
//!    rank can race ahead of a peer that is still dialing.
//!
//! The elapsed wall-clock of the whole dance lands in the
//! `bootstrap_secs` obs counter. All handshake sockets are blocking
//! with read timeouts; every stage has a deadline, so a missing peer
//! fails the job instead of hanging it.

use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

use mpfa_core::wtime;

use crate::codec::FrameCodec;
use crate::wire::{Bound, SockFamily, WireOpts, WireTransport};
use crate::{Transport, TransportKind};

/// Env var selecting the backend (`sim` | `tcp` | `uds` | `shm`).
pub const ENV_TRANSPORT: &str = "MPFA_TRANSPORT";
/// Env var carrying this process's world rank.
pub const ENV_RANK: &str = "MPFA_RANK";
/// Env var carrying the world size.
pub const ENV_RANKS: &str = "MPFA_RANKS";
/// Env var carrying the rendezvous address (TCP `host:port` or a UDS
/// socket path) where rank 0 collects the peer table.
pub const ENV_PEERS: &str = "MPFA_PEERS";
/// Env var (set to `1`) that makes every dialer artificially fail its
/// first connection attempt to each peer, exercising the retry path.
pub const ENV_INJECT_CONNECT_FAIL: &str = "MPFA_INJECT_CONNECT_FAIL";

/// Seconds a rank waits for the whole rendezvous (submission, table,
/// barrier) before giving up.
const RENDEZVOUS_DEADLINE: f64 = 60.0;
/// Seconds allowed for the data mesh to fully connect.
const MESH_DEADLINE: f64 = 30.0;

const READY: u8 = 0xA5;
const GO: u8 = 0x5A;

/// The launcher-provided identity of this process, read from the
/// environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootEnv {
    /// This process's world rank.
    pub rank: usize,
    /// World size.
    pub ranks: usize,
    /// Which wire backend to bring up.
    pub kind: TransportKind,
    /// The rendezvous address rank 0 listens on.
    pub rendezvous: String,
}

/// Read the launcher environment, if present. Returns `None` when
/// `MPFA_RANK` is unset (a plain in-process run). Panics on a malformed
/// launcher environment — that is a launcher bug, not a user error.
pub fn boot_env() -> Option<BootEnv> {
    let rank = std::env::var(ENV_RANK).ok()?;
    let rank: usize = rank
        .parse()
        .unwrap_or_else(|_| panic!("bad {ENV_RANK}={rank}"));
    let ranks: usize = std::env::var(ENV_RANKS)
        .unwrap_or_else(|_| panic!("{ENV_RANK} is set but {ENV_RANKS} is not"))
        .parse()
        .expect("bad MPFA_RANKS");
    let kind = match TransportKind::from_env() {
        Ok(Some(k)) => k,
        Ok(None) => TransportKind::Tcp,
        Err(v) => panic!("bad {ENV_TRANSPORT}={v} (want sim|tcp|uds|shm)"),
    };
    let rendezvous = std::env::var(ENV_PEERS)
        .unwrap_or_else(|_| panic!("{ENV_RANK} is set but {ENV_PEERS} is not"));
    assert!(
        rank < ranks,
        "{ENV_RANK}={rank} out of range for {ENV_RANKS}={ranks}"
    );
    Some(BootEnv {
        rank,
        ranks,
        kind,
        rendezvous,
    })
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_string())
}

fn write_u32<S: Write>(s: &mut S, v: u32) -> io::Result<()> {
    s.write_all(&v.to_le_bytes())
}

fn read_u32<S: Read>(s: &mut S) -> io::Result<u32> {
    let mut b = [0u8; 4];
    s.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Where rank `r` binds its data listener (or lays its shared-memory
/// segment), given the rendezvous address: TCP picks an ephemeral
/// localhost port; UDS and SHM lay their files next to the rendezvous
/// socket.
fn data_hint(kind: TransportKind, rendezvous: &str, rank: usize) -> String {
    match kind {
        TransportKind::Tcp => "127.0.0.1:0".to_string(),
        TransportKind::Uds => format!("{rendezvous}.r{rank}"),
        TransportKind::Shm => format!("{rendezvous}.r{rank}.seg"),
        TransportKind::Sim => unreachable!("sim has no data listener"),
    }
}

/// Stages 2+3: exchange data addresses through the rendezvous listener.
/// Returns the full peer table plus the open rendezvous connections
/// (used again for the stage-5 barrier).
#[allow(clippy::type_complexity)]
fn rendezvous_table<F: SockFamily>(
    env: &BootEnv,
    my_addr: &str,
) -> io::Result<(Vec<String>, Vec<Option<F::Stream>>)> {
    let io_timeout = Some(Duration::from_secs_f64(RENDEZVOUS_DEADLINE));
    if env.rank == 0 {
        let (listener, _) = F::bind(&env.rendezvous)?;
        let mut table = vec![String::new(); env.ranks];
        table[0] = my_addr.to_string();
        let mut conns: Vec<Option<F::Stream>> = (0..env.ranks).map(|_| None).collect();
        let mut missing = env.ranks - 1;
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        while missing > 0 {
            match F::accept(&listener)? {
                Some(mut sock) => {
                    F::set_nonblocking(&sock, false)?;
                    F::set_read_timeout(&sock, io_timeout)?;
                    let rank = read_u32(&mut sock)? as usize;
                    let len = read_u32(&mut sock)? as usize;
                    if rank == 0 || rank >= env.ranks || len > 4096 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad rendezvous submission (rank {rank}, len {len})"),
                        ));
                    }
                    let mut addr = vec![0u8; len];
                    sock.read_exact(&mut addr)?;
                    let addr = String::from_utf8(addr).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "non-utf8 peer address")
                    })?;
                    if conns[rank].is_none() {
                        missing -= 1;
                    }
                    table[rank] = addr;
                    conns[rank] = Some(sock);
                }
                None => {
                    if wtime() > deadline {
                        return Err(timeout_err(&format!(
                            "rendezvous: {missing} rank(s) never reported"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Answer everyone with the full table.
        for sock in conns.iter_mut().flatten() {
            write_u32(sock, env.ranks as u32)?;
            for addr in &table {
                write_u32(sock, addr.len() as u32)?;
                sock.write_all(addr.as_bytes())?;
            }
        }
        Ok((table, conns))
    } else {
        // Dial rank 0, retrying while it comes up.
        let deadline = wtime() + RENDEZVOUS_DEADLINE;
        let mut sock = loop {
            match F::connect(&env.rendezvous, Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(_) if wtime() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        };
        F::set_read_timeout(&sock, io_timeout)?;
        write_u32(&mut sock, env.rank as u32)?;
        write_u32(&mut sock, my_addr.len() as u32)?;
        sock.write_all(my_addr.as_bytes())?;
        let count = read_u32(&mut sock)? as usize;
        if count != env.ranks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "rendezvous table has {count} entries, expected {}",
                    env.ranks
                ),
            ));
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let len = read_u32(&mut sock)? as usize;
            if len > 4096 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "peer address too long",
                ));
            }
            let mut addr = vec![0u8; len];
            sock.read_exact(&mut addr)?;
            table.push(String::from_utf8(addr).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "non-utf8 peer address")
            })?);
        }
        let mut conns: Vec<Option<F::Stream>> = (0..env.ranks).map(|_| None).collect();
        conns[0] = Some(sock);
        Ok((table, conns))
    }
}

/// Stage 5: READY/GO barrier over the rendezvous sockets, then rank 0
/// removes the rendezvous listener's filesystem residue.
fn ready_go_barrier<F: SockFamily>(
    env: &BootEnv,
    conns: &mut [Option<F::Stream>],
) -> io::Result<()> {
    if env.rank == 0 {
        for sock in conns.iter_mut().flatten() {
            let mut b = [0u8; 1];
            sock.read_exact(&mut b)?;
            if b[0] != READY {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad READY byte"));
            }
        }
        for sock in conns.iter_mut().flatten() {
            sock.write_all(&[GO])?;
        }
        F::cleanup(&env.rendezvous);
    } else {
        let sock = conns[0].as_mut().expect("rendezvous conn");
        sock.write_all(&[READY])?;
        let mut b = [0u8; 1];
        sock.read_exact(&mut b)?;
        if b[0] != GO {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad GO byte"));
        }
    }
    Ok(())
}

fn establish_family<M: FrameCodec, F: SockFamily>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    let t0 = wtime();
    let bound: Bound<F> = Bound::bind(&data_hint(env.kind, &env.rendezvous, env.rank))?;

    // --- stages 2+3: collect/receive the peer table ------------------
    let addr = bound.addr.clone();
    let (table, mut rendezvous_conns) = rendezvous_table::<F>(env, &addr)?;

    // --- stage 4: bring up the data mesh -----------------------------
    let transport: WireTransport<M, F> =
        WireTransport::new(bound, env.rank, table, eps_per_rank, opts);
    transport.establish(MESH_DEADLINE)?;

    // --- stage 5: READY/GO barrier over the rendezvous sockets -------
    ready_go_barrier::<F>(env, &mut rendezvous_conns)?;

    mpfa_obs::global_counters().record_bootstrap_secs(wtime() - t0);
    Ok(Arc::new(transport))
}

/// The shared-memory bootstrap: same rendezvous dance, but the "data
/// address" each rank publishes is the path of its freshly-created mmap
/// segment, and the handshake legs run over Unix-domain sockets laid
/// next to the rendezvous path. Creating the segment *before*
/// submitting and attaching *after* the table arrives means every peer
/// segment already exists at attach time; the READY/GO barrier then
/// guarantees all ranks are fully mapped before any MPI traffic.
#[cfg(unix)]
fn establish_shm<M: FrameCodec>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    let t0 = wtime();
    let seg_path = data_hint(TransportKind::Shm, &env.rendezvous, env.rank);
    let own = crate::shm::ShmSegmentOwner::create(&seg_path, env.ranks, eps_per_rank)?;
    let (table, mut rendezvous_conns) = rendezvous_table::<crate::uds::UdsFamily>(env, own.path())?;
    let transport: crate::shm::ShmTransport<M> =
        crate::shm::ShmTransport::new(own, env.rank, table, opts)?;
    ready_go_barrier::<crate::uds::UdsFamily>(env, &mut rendezvous_conns)?;
    mpfa_obs::global_counters().record_bootstrap_secs(wtime() - t0);
    Ok(Arc::new(transport))
}

/// Run the full bootstrap for this process: bind the data listener,
/// rendezvous for the peer table, connect the mesh, pass the barrier.
/// Returns the ready-to-use transport.
pub fn establish<M: FrameCodec>(
    env: &BootEnv,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Arc<dyn Transport<M>>> {
    match env.kind {
        TransportKind::Sim => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "the simulated transport is in-process and has no bootstrap",
        )),
        TransportKind::Tcp => establish_family::<M, crate::tcp::TcpFamily>(env, eps_per_rank, opts),
        #[cfg(unix)]
        TransportKind::Uds => establish_family::<M, crate::uds::UdsFamily>(env, eps_per_rank, opts),
        #[cfg(not(unix))]
        TransportKind::Uds => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix domain sockets are not available on this platform",
        )),
        #[cfg(unix)]
        TransportKind::Shm => establish_shm::<M>(env, eps_per_rank, opts),
        #[cfg(not(unix))]
        TransportKind::Shm => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments are not available on this platform",
        )),
    }
}

/// Bind-and-release an ephemeral TCP port for use as a rendezvous
/// address (used by `mpfarun` and tests; a tiny race against port reuse
/// is accepted).
pub fn pick_tcp_rendezvous() -> io::Result<String> {
    let l = std::net::TcpListener::bind("127.0.0.1:0")?;
    Ok(l.local_addr()?.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Path;

    fn run_world(kind: TransportKind, rendezvous: String, ranks: usize) {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let env = BootEnv {
                    rank,
                    ranks,
                    kind,
                    rendezvous: rendezvous.clone(),
                };
                std::thread::spawn(move || {
                    let t = establish::<Vec<u8>>(&env, 1, WireOpts::default())
                        .unwrap_or_else(|e| panic!("rank {rank} bootstrap failed: {e}"));
                    // Everyone sends one message to every other rank...
                    for dst in 0..ranks {
                        if dst != rank {
                            t.send(rank, dst, vec![rank as u8; 8], 8);
                        }
                    }
                    // ...and collects one from every other rank.
                    let mut got = Vec::new();
                    let deadline = wtime() + 20.0;
                    while got.len() < ranks - 1 {
                        t.progress();
                        t.poll(rank, Path::Net, usize::MAX, &mut got);
                        assert!(wtime() < deadline, "rank {rank} starved");
                    }
                    let mut froms: Vec<usize> = got.iter().map(|e| e.src).collect();
                    froms.sort_unstable();
                    let expect: Vec<usize> = (0..ranks).filter(|&r| r != rank).collect();
                    assert_eq!(froms, expect);
                    for env in &got {
                        assert_eq!(env.msg, vec![env.src as u8; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("bootstrap world thread panicked");
        }
    }

    #[test]
    fn tcp_bootstrap_three_ranks() {
        let rendezvous = pick_tcp_rendezvous().unwrap();
        run_world(TransportKind::Tcp, rendezvous, 3);
        assert!(mpfa_obs::global_counters().snapshot().bootstrap_secs > 0.0);
    }

    #[cfg(unix)]
    #[test]
    fn uds_bootstrap_three_ranks() {
        let dir = std::env::temp_dir().join(format!("mpfa-boot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rendezvous = dir.join("boot.sock").to_string_lossy().into_owned();
        run_world(TransportKind::Uds, rendezvous, 3);
    }

    #[cfg(unix)]
    #[test]
    fn shm_bootstrap_three_ranks() {
        let dir = std::env::temp_dir().join(format!("mpfa-boot-shm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rendezvous = dir.join("boot.sock").to_string_lossy().into_owned();
        run_world(TransportKind::Shm, rendezvous.clone(), 3);
        // Clean shutdown unlinks every rank's segment.
        for r in 0..3 {
            let seg = format!("{rendezvous}.r{r}.seg");
            assert!(
                !std::path::Path::new(&seg).exists(),
                "stale segment {seg} left behind"
            );
        }
    }

    #[test]
    fn boot_env_absent_means_in_process() {
        // The test runner does not set MPFA_RANK.
        assert_eq!(boot_env(), None);
    }
}

//! # mpfa-transport — the pluggable packet substrate
//!
//! The paper is explicit that its progress design does not care what
//! "the NIC" is — *"here 'NIC' loosely refers to either hardware
//! operations or software emulations"*. Until now the repo had exactly
//! one substrate, the in-process simulated `mpfa-fabric`. This crate
//! turns the substrate into a trait, [`Transport`], and adds two real
//! kernel-socket backends next to the simulation:
//!
//! * **Sim** — [`sim::SimTransport`] wraps an existing [`Fabric`] with
//!   zero behaviour change. (The blanket `impl Transport for Fabric`
//!   means a bare fabric already *is* a transport.)
//! * **TCP** — [`tcp::TcpTransport`]: localhost/LAN TCP with
//!   length-prefixed framing, nonblocking sockets, per-peer TX
//!   backpressure queues, and connect-timeout plus bounded
//!   exponential-backoff reconnect.
//! * **UDS** — [`uds::UdsTransport`]: the same wire engine over Unix
//!   domain sockets, as the intra-node fast path.
//!
//! On top of the backends sit [`bootstrap`] (a PMI-style rendezvous:
//! rank 0 listens, everyone exchanges a peer table, barrier on ready)
//! and the `mpfarun` launcher binary, which spawns N OS processes and
//! wires `MPFA_TRANSPORT` / `MPFA_RANK` / `MPFA_PEERS` into the
//! environment so `mpfa-mpi` world creation, the netmod subsystem hook,
//! and the eager/rendezvous/pipeline protocols run unmodified over a
//! real wire with real syscall latency and partial reads.
//!
//! The trait deliberately reuses the fabric's vocabulary — endpoints
//! are flat indices (`world_rank * max_vcis + vci`), packets are
//! [`Envelope`]s, delivery paths are [`Path`]s — so the MPI layer's
//! netmod/shmem split keeps working: wire backends deliver everything
//! on [`Path::Net`] and report [`Path::Shmem`] as always empty.

#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

pub use mpfa_fabric::{Envelope, Fabric, Path, TxHandle};

pub mod bootstrap;
pub mod bytes;
pub mod codec;
pub mod reactor;
#[cfg(unix)]
pub mod shm;
pub mod sim;
pub mod tcp;
#[cfg(unix)]
pub mod uds;
pub mod wire;

pub use bytes::{BufPool, BytesBacking, MpfaBytes};
pub use codec::FrameCodec;
pub use reactor::{reactor_enabled, Reactor, ReadySet};
#[cfg(unix)]
pub use shm::ShmTransport;
pub use sim::{sim_rank_views, SimRankTransport, SimTransport};
pub use tcp::TcpTransport;
#[cfg(unix)]
pub use uds::UdsTransport;
pub use wire::{loopback_mesh, Bound, WireOpts, WireTransport};

/// Which packet substrate carries the world's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// The in-process simulated fabric (`mpfa-fabric`).
    #[default]
    Sim,
    /// Kernel TCP sockets (localhost or LAN).
    Tcp,
    /// Unix domain sockets (intra-node).
    Uds,
    /// Memory-mapped shared-memory rings (co-located processes).
    Shm,
}

impl TransportKind {
    /// Parse the `MPFA_TRANSPORT` environment variable, if set.
    ///
    /// Returns `Err` with the offending value when it is set to
    /// something other than `sim`/`tcp`/`uds`/`shm`.
    pub fn from_env() -> Result<Option<TransportKind>, String> {
        match std::env::var(bootstrap::ENV_TRANSPORT) {
            Ok(v) => v.parse().map(Some).map_err(|()| v),
            Err(_) => Ok(None),
        }
    }
}

impl FromStr for TransportKind {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Ok(TransportKind::Sim),
            "tcp" => Ok(TransportKind::Tcp),
            "uds" | "unix" => Ok(TransportKind::Uds),
            "shm" | "shmem" => Ok(TransportKind::Shm),
            _ => Err(()),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Sim => write!(f, "sim"),
            TransportKind::Tcp => write!(f, "tcp"),
            TransportKind::Uds => write!(f, "uds"),
            TransportKind::Shm => write!(f, "shm"),
        }
    }
}

/// A packet substrate: something that can carry framed messages between
/// the world's endpoints and hand arrived ones back to a poller.
///
/// The contract mirrors what the MPI layer's netmod/shmem hooks already
/// relied on from the simulated fabric:
///
/// * **Non-overtaking per directed channel** — two packets from the
///   same source endpoint to the same destination endpoint are
///   delivered in send order. No ordering is promised across channels.
/// * **Reliable while connected** — packets are not dropped, duplicated
///   or corrupted on a live connection. (A wire backend that loses a
///   connection mid-stream discards the partial frame and, after a
///   reconnect, resumes from the next complete frame; see
///   `docs/TRANSPORT.md` for the exact semantics.)
/// * **Nonblocking** — every method returns without waiting on a peer.
///   Wire backends move bytes only inside [`Transport::progress`] and
///   opportunistically inside [`Transport::send`].
pub trait Transport<M: Send>: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;

    /// Total number of endpoints across the whole world
    /// (`ranks * endpoints_per_rank`).
    fn endpoints(&self) -> usize;

    /// Inject a packet from `src_ep` to `dst_ep`. `wire_bytes` is the
    /// payload size the wire charges for (control messages pass 0).
    /// Returns a TX completion handle; wire backends complete
    /// immediately once the frame is queued or written.
    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle;

    /// Drain up to `max` arrived packets for `ep` on `path` into `out`.
    /// Returns the number appended.
    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize;

    /// Packets queued for `ep` on `path` (arrived or still in flight).
    fn queued(&self, ep: usize, path: Path) -> usize;

    /// Pump backend machinery: accept connections, flush TX queues,
    /// read sockets, drive reconnects. Returns true if any bytes moved
    /// or connection state changed. The simulated fabric has no
    /// machinery to pump and returns false.
    fn progress(&self) -> bool {
        false
    }

    /// True when the backend can make progress that is invisible to
    /// [`Transport::queued`] — e.g. bytes sitting in a kernel socket
    /// buffer. Progress hooks must keep polling while this holds, even
    /// if no packet is visibly queued.
    fn external_work(&self) -> bool {
        false
    }

    /// Largest payload this backend moves efficiently as a single eager
    /// frame, or `None` to defer to the protocol layer's configured
    /// thresholds. A shared-memory backend returns a large hint here so
    /// big messages travel as one ring frame delivered as a zero-copy
    /// view, instead of a rendezvous handshake that reassembles chunks
    /// through an extra copy.
    fn eager_hint(&self) -> Option<usize> {
        None
    }

    /// Is `rank`'s connection alive (or not yet needed)? The simulated
    /// fabric's peers are always alive.
    fn peer_alive(&self, _rank: usize) -> bool {
        true
    }

    /// Number of peers whose reconnect budget is exhausted.
    fn dead_peers(&self) -> usize {
        0
    }

    /// Sends discarded because the destination peer was already dead.
    /// Each such send also returns a failed [`TxHandle`] from
    /// [`Transport::send`], so callers can fail the operation
    /// immediately instead of queueing toward a peer that will never
    /// drain it.
    fn failed_sends(&self) -> usize {
        0
    }

    /// Chaos hook: forcibly declare `rank` dead on this transport — the
    /// in-process analogue of `rank`'s OS process being killed. Severs
    /// any live connection, drops frames queued for it, and makes
    /// [`Transport::peer_alive`]/[`Transport::dead_peers`] report the
    /// failure immediately (no reconnect budget to burn). Returns false
    /// when the backend does not support kill injection (the default).
    fn kill_peer(&self, _rank: usize) -> bool {
        false
    }

    /// Chaos hook: schedule `rank` to die when the process clock
    /// ([`mpfa_core::wtime`]) reaches `at` seconds. Under deterministic
    /// simulation the clock is virtual, so the kill lands at exactly the
    /// scheduled instant of the simulated timeline — the same seed
    /// replays the same death. The kill takes effect lazily: the next
    /// liveness observation (send / `peer_alive` / `dead_peers`) at or
    /// after `at` sees the rank dead. Returns false when the backend
    /// does not support scheduled kills (the default).
    fn schedule_kill(&self, _rank: usize, _at: f64) -> bool {
        false
    }
}

/// Chaos helper: declare `victim` dead across a whole in-process mesh,
/// as if its OS process had been killed — every other rank's transport
/// severs its connection to the victim. The victim's own transport is
/// left untouched (a killed process does not observe its own death).
pub fn mesh_kill<M: Send>(mesh: &[Arc<dyn Transport<M>>], victim: usize) {
    for (r, t) in mesh.iter().enumerate() {
        if r != victim {
            t.kill_peer(victim);
        }
    }
}

/// Chaos helper: schedule `victim`'s death at process-clock time `at`
/// on every other rank's transport (see [`Transport::schedule_kill`]).
/// Returns true if every non-victim transport accepted the schedule.
pub fn mesh_schedule_kill<M: Send>(mesh: &[Arc<dyn Transport<M>>], victim: usize, at: f64) -> bool {
    let mut all = true;
    for (r, t) in mesh.iter().enumerate() {
        if r != victim {
            all &= t.schedule_kill(victim, at);
        }
    }
    all
}

/// Shared handle to a transport object, as stored by the MPI layer.
pub type SharedTransport<M> = Arc<dyn Transport<M>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("sim".parse::<TransportKind>(), Ok(TransportKind::Sim));
        assert_eq!("TCP".parse::<TransportKind>(), Ok(TransportKind::Tcp));
        assert_eq!("uds".parse::<TransportKind>(), Ok(TransportKind::Uds));
        assert_eq!("unix".parse::<TransportKind>(), Ok(TransportKind::Uds));
        assert_eq!("shm".parse::<TransportKind>(), Ok(TransportKind::Shm));
        assert_eq!("shmem".parse::<TransportKind>(), Ok(TransportKind::Shm));
        assert!("verbs".parse::<TransportKind>().is_err());
        for k in [
            TransportKind::Sim,
            TransportKind::Tcp,
            TransportKind::Uds,
            TransportKind::Shm,
        ] {
            assert_eq!(k.to_string().parse::<TransportKind>(), Ok(k));
        }
    }

    #[test]
    fn kind_defaults_to_sim() {
        assert_eq!(TransportKind::default(), TransportKind::Sim);
    }
}

//! `mpfarun` — the multi-process launcher.
//!
//! Spawns N copies of a command as separate OS processes, wiring the
//! bootstrap environment (`MPFA_TRANSPORT`, `MPFA_RANK`, `MPFA_RANKS`,
//! `MPFA_PEERS`) into each so that `World::launch` inside the child
//! comes up distributed over a real wire:
//!
//! ```text
//! mpfarun -n 4 [--transport tcp|uds|shm] [--inject-retry] [--timeout SECS]
//!         [--kill-rank R [--kill-after-ms T]] -- CMD [ARGS...]
//! ```
//!
//! A watchdog kills the whole job and exits 124 (the `timeout(1)`
//! convention) if it overruns; otherwise the first nonzero child exit
//! code is propagated.
//!
//! Each rank is spawned as the leader of its own process group, and
//! every kill targets the *group*, so helper processes forked by a rank
//! cannot outlive the job; every killed child is reaped (no zombies).
//!
//! The chaos flags (`--kill-rank R --kill-after-ms T`) SIGKILL one
//! rank's process group `T` milliseconds into the run — the OS-process
//! form of the in-process `mesh_kill` switch. The victim's death is
//! *expected*: its (signal) exit is not propagated, so the job succeeds
//! iff every survivor exits 0, i.e. iff the survivors actually recover.

use std::process::{exit, Child, Command};
use std::time::{Duration, Instant};

use mpfa_transport::bootstrap::{
    pick_tcp_rendezvous, tree_fanout, ENV_INJECT_CONNECT_FAIL, ENV_PEERS, ENV_RANK, ENV_RANKS,
    ENV_TRANSPORT, ENV_TREE,
};
use mpfa_transport::TransportKind;

struct Opts {
    ranks: usize,
    kind: TransportKind,
    inject_retry: bool,
    timeout: Duration,
    kill_rank: Option<usize>,
    kill_after: Duration,
    cmd: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mpfarun -n RANKS [--transport tcp|uds|shm] [--inject-retry] \
         [--timeout SECS] [--kill-rank R [--kill-after-ms T]] -- CMD [ARGS...]"
    );
    exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut ranks = None;
    let mut kind = TransportKind::Tcp;
    let mut inject_retry = false;
    let mut timeout = Duration::from_secs(120);
    let mut kill_rank = None;
    let mut kill_after = Duration::from_millis(50);
    let mut cmd = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-n" | "--ranks" => {
                ranks = args.next().and_then(|v| v.parse().ok());
            }
            "--transport" => match args.next().as_deref().map(str::parse) {
                Some(Ok(k)) if k != TransportKind::Sim => kind = k,
                _ => usage(),
            },
            "--inject-retry" => inject_retry = true,
            "--timeout" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 => timeout = Duration::from_secs_f64(secs),
                _ => usage(),
            },
            "--kill-rank" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) => kill_rank = Some(r),
                None => usage(),
            },
            "--kill-after-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => kill_after = Duration::from_millis(ms),
                None => usage(),
            },
            "--" => {
                cmd.extend(args);
                break;
            }
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }
    let Some(ranks) = ranks else { usage() };
    if ranks == 0 || cmd.is_empty() {
        usage();
    }
    if let Some(r) = kill_rank {
        if r >= ranks {
            eprintln!("mpfarun: --kill-rank {r} out of range for {ranks} ranks");
            exit(2);
        }
    }
    Opts {
        ranks,
        kind,
        inject_retry,
        timeout,
        kill_rank,
        kill_after,
        cmd,
    }
}

fn rendezvous_for(kind: TransportKind) -> String {
    match kind {
        TransportKind::Tcp => pick_tcp_rendezvous().unwrap_or_else(|e| {
            eprintln!("mpfarun: cannot pick a rendezvous port: {e}");
            exit(1);
        }),
        // UDS and SHM both lay their files (sockets / mmap segments)
        // next to a rendezvous socket in a per-job temp directory.
        TransportKind::Uds | TransportKind::Shm => {
            let dir = std::env::temp_dir().join(format!("mpfarun-{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("mpfarun: cannot create {}: {e}", dir.display());
                exit(1);
            }
            dir.join("boot.sock").to_string_lossy().into_owned()
        }
        TransportKind::Sim => unreachable!("parse_args rejects sim"),
    }
}

/// SIGKILL one child's whole process group (the child is its group
/// leader, so `-pid` addresses the group), then the child itself as a
/// backstop, and reap it so nothing is left as a zombie.
fn kill_group(child: &mut Child) {
    #[cfg(unix)]
    {
        let _ = Command::new("kill")
            .args(["-9", "--", &format!("-{}", child.id())])
            .status();
    }
    let _ = child.kill();
    let _ = child.wait();
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, child) in children.iter_mut() {
        kill_group(child);
    }
}

fn main() {
    let opts = parse_args();
    let rendezvous = rendezvous_for(opts.kind);

    // TCP tree rendezvous needs a pre-picked listener address per rank
    // (internal nodes cannot derive ephemeral ports). UDS/SHM derive
    // their tree sockets from the rendezvous path and need nothing.
    let tree = (opts.kind == TransportKind::Tcp && opts.ranks > tree_fanout() + 1).then(|| {
        let mut addrs = vec![rendezvous.clone()];
        for _ in 1..opts.ranks {
            addrs.push(pick_tcp_rendezvous().unwrap_or_else(|e| {
                eprintln!("mpfarun: cannot pick a tree rendezvous port: {e}");
                exit(1);
            }));
        }
        addrs.join(",")
    });

    let mut children: Vec<(usize, Child)> = Vec::with_capacity(opts.ranks);
    for rank in 0..opts.ranks {
        let mut c = Command::new(&opts.cmd[0]);
        c.args(&opts.cmd[1..])
            .env(ENV_TRANSPORT, opts.kind.to_string())
            .env(ENV_RANK, rank.to_string())
            .env(ENV_RANKS, opts.ranks.to_string())
            .env(ENV_PEERS, &rendezvous);
        if let Some(tree) = &tree {
            c.env(ENV_TREE, tree);
        }
        // Each rank leads its own process group so a kill reaches any
        // helpers it forked, not just the rank itself.
        #[cfg(unix)]
        {
            use std::os::unix::process::CommandExt;
            c.process_group(0);
        }
        if opts.inject_retry {
            c.env(ENV_INJECT_CONNECT_FAIL, "1");
        }
        match c.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                eprintln!("mpfarun: cannot spawn rank {rank} ({}): {e}", opts.cmd[0]);
                kill_all(&mut children);
                exit(1);
            }
        }
    }

    let started = Instant::now();
    let mut exit_code = 0;
    let mut kill_pending = opts.kill_rank;
    while !children.is_empty() {
        if started.elapsed() > opts.timeout {
            eprintln!(
                "mpfarun: job exceeded {:.0}s watchdog, killing {} remaining rank(s)",
                opts.timeout.as_secs_f64(),
                children.len()
            );
            kill_all(&mut children);
            exit(124);
        }
        if let Some(victim) = kill_pending {
            if started.elapsed() >= opts.kill_after {
                kill_pending = None;
                if let Some(i) = children.iter().position(|(r, _)| *r == victim) {
                    eprintln!(
                        "mpfarun: chaos: killing rank {victim} at {:.0}ms",
                        started.elapsed().as_secs_f64() * 1e3
                    );
                    let (_, mut child) = children.swap_remove(i);
                    kill_group(&mut child);
                }
            }
        }
        let mut i = 0;
        while i < children.len() {
            match children[i].1.try_wait() {
                Ok(Some(status)) => {
                    let (rank, _) = children.swap_remove(i);
                    let code = status.code().unwrap_or(1);
                    if code != 0 && Some(rank) != opts.kill_rank {
                        eprintln!("mpfarun: rank {rank} exited with code {code}");
                        if exit_code == 0 {
                            exit_code = code;
                        }
                    }
                }
                Ok(None) => i += 1,
                Err(e) => {
                    eprintln!("mpfarun: wait on rank {} failed: {e}", children[i].0);
                    let _ = children.swap_remove(i);
                    if exit_code == 0 {
                        exit_code = 1;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Sweep the per-job directory: live ranks unlink their own files on
    // clean exit, but a SIGKILLed rank (watchdog or chaos) leaves its
    // socket or segment behind — the launcher is the cleanup backstop.
    if matches!(opts.kind, TransportKind::Uds | TransportKind::Shm) {
        let dir = std::env::temp_dir().join(format!("mpfarun-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(dir);
    }
    exit(exit_code);
}

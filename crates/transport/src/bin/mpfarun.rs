//! `mpfarun` — the multi-process launcher.
//!
//! Spawns N copies of a command as separate OS processes, wiring the
//! bootstrap environment (`MPFA_TRANSPORT`, `MPFA_RANK`, `MPFA_RANKS`,
//! `MPFA_PEERS`) into each so that `World::launch` inside the child
//! comes up distributed over a real wire:
//!
//! ```text
//! mpfarun -n 4 [--transport tcp|uds] [--inject-retry] [--timeout SECS] -- CMD [ARGS...]
//! ```
//!
//! A watchdog kills the whole job and exits 124 (the `timeout(1)`
//! convention) if it overruns; otherwise the first nonzero child exit
//! code is propagated.

use std::process::{exit, Child, Command};
use std::time::{Duration, Instant};

use mpfa_transport::bootstrap::{
    pick_tcp_rendezvous, ENV_INJECT_CONNECT_FAIL, ENV_PEERS, ENV_RANK, ENV_RANKS, ENV_TRANSPORT,
};
use mpfa_transport::TransportKind;

struct Opts {
    ranks: usize,
    kind: TransportKind,
    inject_retry: bool,
    timeout: Duration,
    cmd: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mpfarun -n RANKS [--transport tcp|uds] [--inject-retry] \
         [--timeout SECS] -- CMD [ARGS...]"
    );
    exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut ranks = None;
    let mut kind = TransportKind::Tcp;
    let mut inject_retry = false;
    let mut timeout = Duration::from_secs(120);
    let mut cmd = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-n" | "--ranks" => {
                ranks = args.next().and_then(|v| v.parse().ok());
            }
            "--transport" => match args.next().as_deref().map(str::parse) {
                Some(Ok(k)) if k != TransportKind::Sim => kind = k,
                _ => usage(),
            },
            "--inject-retry" => inject_retry = true,
            "--timeout" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 => timeout = Duration::from_secs_f64(secs),
                _ => usage(),
            },
            "--" => {
                cmd.extend(args);
                break;
            }
            "-h" | "--help" => usage(),
            _ => usage(),
        }
    }
    let Some(ranks) = ranks else { usage() };
    if ranks == 0 || cmd.is_empty() {
        usage();
    }
    Opts {
        ranks,
        kind,
        inject_retry,
        timeout,
        cmd,
    }
}

fn rendezvous_for(kind: TransportKind) -> String {
    match kind {
        TransportKind::Tcp => pick_tcp_rendezvous().unwrap_or_else(|e| {
            eprintln!("mpfarun: cannot pick a rendezvous port: {e}");
            exit(1);
        }),
        TransportKind::Uds => {
            let dir = std::env::temp_dir().join(format!("mpfarun-{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("mpfarun: cannot create {}: {e}", dir.display());
                exit(1);
            }
            dir.join("boot.sock").to_string_lossy().into_owned()
        }
        TransportKind::Sim => unreachable!("parse_args rejects sim"),
    }
}

fn kill_all(children: &mut [(usize, Child)]) {
    for (_, child) in children.iter_mut() {
        let _ = child.kill();
    }
    for (_, child) in children.iter_mut() {
        let _ = child.wait();
    }
}

fn main() {
    let opts = parse_args();
    let rendezvous = rendezvous_for(opts.kind);

    let mut children: Vec<(usize, Child)> = Vec::with_capacity(opts.ranks);
    for rank in 0..opts.ranks {
        let mut c = Command::new(&opts.cmd[0]);
        c.args(&opts.cmd[1..])
            .env(ENV_TRANSPORT, opts.kind.to_string())
            .env(ENV_RANK, rank.to_string())
            .env(ENV_RANKS, opts.ranks.to_string())
            .env(ENV_PEERS, &rendezvous);
        if opts.inject_retry {
            c.env(ENV_INJECT_CONNECT_FAIL, "1");
        }
        match c.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                eprintln!("mpfarun: cannot spawn rank {rank} ({}): {e}", opts.cmd[0]);
                kill_all(&mut children);
                exit(1);
            }
        }
    }

    let started = Instant::now();
    let mut exit_code = 0;
    while !children.is_empty() {
        if started.elapsed() > opts.timeout {
            eprintln!(
                "mpfarun: job exceeded {:.0}s watchdog, killing {} remaining rank(s)",
                opts.timeout.as_secs_f64(),
                children.len()
            );
            kill_all(&mut children);
            exit(124);
        }
        let mut i = 0;
        while i < children.len() {
            match children[i].1.try_wait() {
                Ok(Some(status)) => {
                    let (rank, _) = children.swap_remove(i);
                    let code = status.code().unwrap_or(1);
                    if code != 0 {
                        eprintln!("mpfarun: rank {rank} exited with code {code}");
                        if exit_code == 0 {
                            exit_code = code;
                        }
                    }
                }
                Ok(None) => i += 1,
                Err(e) => {
                    eprintln!("mpfarun: wait on rank {} failed: {e}", children[i].0);
                    let _ = children.swap_remove(i);
                    if exit_code == 0 {
                        exit_code = 1;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    if opts.kind == TransportKind::Uds {
        let dir = std::env::temp_dir().join(format!("mpfarun-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(dir);
    }
    exit(exit_code);
}

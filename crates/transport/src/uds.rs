//! Unix-domain-socket backend: the wire engine over `AF_UNIX`.
//!
//! The intra-node fast path: same framing and state machine as TCP but
//! without the TCP/IP stack — no checksums, no Nagle, no port
//! namespace. Addresses are filesystem paths; the listener unlinks a
//! stale socket file before binding and removes its own on drop.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

use crate::wire::{SockFamily, WireTransport};
use crate::TransportKind;

/// The Unix-domain address family.
pub struct UdsFamily;

impl SockFamily for UdsFamily {
    type Listener = UnixListener;
    type Stream = UnixStream;
    const KIND: TransportKind = TransportKind::Uds;

    fn bind(hint: &str) -> io::Result<(UnixListener, String)> {
        // A stale socket file from a dead process would make bind fail.
        let _ = std::fs::remove_file(hint);
        let listener = UnixListener::bind(hint)?;
        listener.set_nonblocking(true)?;
        Ok((listener, hint.to_string()))
    }

    fn accept(listener: &UnixListener) -> io::Result<Option<UnixStream>> {
        match listener.accept() {
            Ok((sock, _)) => Ok(Some(sock)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn connect(addr: &str, _timeout: Duration) -> io::Result<UnixStream> {
        // AF_UNIX connects resolve locally and immediately; std offers
        // no timeout variant and none is needed.
        UnixStream::connect(addr)
    }

    fn set_nonblocking(stream: &UnixStream, on: bool) -> io::Result<()> {
        stream.set_nonblocking(on)
    }

    fn set_read_timeout(stream: &UnixStream, timeout: Option<Duration>) -> io::Result<()> {
        stream.set_read_timeout(timeout)
    }

    fn listener_fd(listener: &UnixListener) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(listener.as_raw_fd())
    }

    fn stream_fd(stream: &UnixStream) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(stream.as_raw_fd())
    }

    fn cleanup(addr: &str) {
        let _ = std::fs::remove_file(addr);
    }
}

/// The UDS transport: see [`WireTransport`] for the full contract.
pub type UdsTransport<M> = WireTransport<M, UdsFamily>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{loopback_mesh, WireOpts};
    use crate::{Path, Transport};
    use mpfa_core::wtime;
    use std::sync::Arc;

    #[test]
    fn uds_pair_roundtrip() {
        let mesh = loopback_mesh::<Vec<u8>>(TransportKind::Uds, 2, 1, WireOpts::default()).unwrap();
        assert_eq!(mesh[0].kind(), TransportKind::Uds);
        for i in 0..20u8 {
            mesh[1].send(1, 0, vec![i; 33], 33);
        }
        let mut out = Vec::new();
        let deadline = wtime() + 10.0;
        while out.len() < 20 {
            mesh[0].progress();
            mesh[0].poll(0, Path::Net, usize::MAX, &mut out);
            assert!(wtime() < deadline, "timed out at {}/20", out.len());
        }
        for (i, env) in out.iter().enumerate() {
            assert_eq!(env.msg, vec![i as u8; 33]);
        }
    }

    #[test]
    fn socket_file_removed_on_drop() {
        let mesh = loopback_mesh::<Vec<u8>>(TransportKind::Uds, 2, 1, WireOpts::default()).unwrap();
        let t0: Arc<dyn Transport<Vec<u8>>> = mesh[0].clone();
        drop(mesh);
        drop(t0);
        // All Arcs gone: the WireInner Drop unlinked the socket files.
        // (Nothing to assert by path here without poking internals —
        // a fresh mesh binding the same temp-dir pattern must succeed.)
        let again =
            loopback_mesh::<Vec<u8>>(TransportKind::Uds, 2, 1, WireOpts::default()).unwrap();
        assert_eq!(again.len(), 2);
    }
}

//! Shared-memory backend: memory-mapped SPSC ring pairs between
//! co-located processes.
//!
//! ## Segment layout
//!
//! Every rank owns one file-backed mmap **segment** holding its
//! *inbound* rings — one lock-free SPSC ring per source rank:
//!
//! ```text
//! [segment header: 4096 B][ring 0][ring 1]...[ring ranks-1]
//! ring i = [ring header: 128 B][data: ring_cap bytes]
//! ```
//!
//! The segment header carries magic/version/geometry plus a futex
//! doorbell word. Each ring header holds the consumer's `head` and the
//! producer's `tail` on separate cache lines; both are monotonically
//! increasing byte offsets (indexed modulo `ring_cap`), so `tail - head`
//! is the bytes in flight and no separate "full" flag is needed. Ring
//! `i` of rank `d`'s segment is written only by rank `i` (the single
//! producer) and read only by rank `d` (the single consumer) — crossing
//! process boundaries costs two atomic operations, never a lock, so a
//! SIGKILLed peer can never leave a cross-process lock held.
//!
//! ## Ring frame protocol
//!
//! Frames use the same 16-byte header as the socket wire
//! (`[payload_len][src_ep][dst_ep][wire_bytes]`, all u32 LE) followed by
//! the payload, padded to an 8-byte boundary so headers stay aligned.
//! Frames are contiguous: a frame that would straddle the ring edge is
//! preceded by a **wrap marker** (`payload_len == u32::MAX`), telling
//! the consumer to skip to offset 0. Payloads at or above
//! [`VIEW_MIN`] bytes are delivered as [`MpfaBytes`] views *into the
//! mapped ring* — no copy; the ring space is released (head advanced)
//! only when the last view clones drop, in frame order.
//!
//! ## Wakeups and liveness
//!
//! Producers bump the destination segment's doorbell and `FUTEX_WAKE`
//! it (Linux); [`ShmTransport::wait_doorbell`] lets a blocked consumer
//! `FUTEX_WAIT` instead of spinning, and [`crate::Transport::external_work`]
//! reports pending ring traffic to the progress engine the same way the
//! socket backends report kernel-buffered bytes. Liveness does not rely
//! on heartbeats: every owner holds an exclusive `flock` on its own
//! segment file from creation until death, and peers probe it with a
//! nonblocking lock attempt — the kernel releases the lock the instant
//! the owner dies (SIGKILL included), so a killed peer's ring is
//! detected, not spun on. On clean shutdown the owner unlinks its own
//! segment file; `mpfarun` additionally sweeps the rendezvous directory
//! so a SIGKILLed rank's segment does not outlive the run.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::wtime;
use mpfa_fabric::{Envelope, Path, TxHandle};

use crate::bytes::{BytesBacking, MpfaBytes};
use crate::codec::FrameCodec;
use crate::wire::{WireOpts, FRAME_HEADER};
use crate::{Transport, TransportKind};

/// Segment header size (one page).
const SEG_HDR: usize = 4096;
/// Ring header size (head and tail on separate cache lines).
const RING_HDR: usize = 128;
/// Segment magic: written last during initialization, checked on attach.
const SEG_MAGIC: u64 = 0x4D50_4641_5348_4D31; // "MPFASHM1"
/// Layout version.
const SEG_VERSION: u32 = 1;
/// Payloads at or above this many bytes are delivered as zero-copy ring
/// views; smaller ones are copied out immediately (cheaper than the
/// release bookkeeping for tiny control frames).
pub const VIEW_MIN: usize = 4096;
/// Default per-ring capacity; override with `MPFA_SHM_RING_BYTES`
/// (power of two, ≥ 64 KiB). A world of N ranks maps N segments of
/// N rings each, so total segment bytes are N² × ring capacity —
/// file-backed and sparse until touched. Beyond 4 ranks the default
/// shrinks automatically so one segment stays within a 64 MiB budget:
/// on machines where the segment directory is disk-backed rather than
/// tmpfs, oversized segments turn ring traffic into page-cache
/// writeback and dominate many-rank wall clock (a 64-rank allreduce
/// measured 7x slower with 1 GiB segments than with 64 MiB ones).
pub const DEFAULT_RING_CAP: u64 = 16 << 20;
/// Environment variable overriding the per-ring capacity in bytes.
pub const ENV_RING_BYTES: &str = "MPFA_SHM_RING_BYTES";
/// Environment variable: set to `1` to request huge pages
/// (`MAP_HUGETLB`) for segment mappings, falling back silently to
/// normal pages when the system has none configured.
pub const ENV_HUGEPAGES: &str = "MPFA_SHM_HUGEPAGES";
/// Seconds between liveness probes of each peer's segment lock.
const PROBE_INTERVAL: f64 = 0.05;
/// How long an attach waits for a peer's segment to appear and
/// initialize before giving up.
const ATTACH_DEADLINE: f64 = 30.0;

// --------------------------------------------------------------------
// Raw syscalls: mmap/flock everywhere on unix, futex on Linux. The
// workspace builds offline with no libc crate; std already links libc,
// so the handful of symbols the backend needs are declared by hand.
// --------------------------------------------------------------------
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    #[cfg(target_os = "linux")]
    pub const MAP_HUGETLB: c_int = 0x40000;
    pub const LOCK_EX: c_int = 2;
    pub const LOCK_NB: c_int = 4;
    pub const LOCK_UN: c_int = 8;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn flock(fd: c_int, operation: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn syscall(num: std::os::raw::c_long, ...) -> std::os::raw::c_long;
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub const SYS_FUTEX: std::os::raw::c_long = 202;
    #[cfg(all(target_os = "linux", target_arch = "aarch64"))]
    pub const SYS_FUTEX: std::os::raw::c_long = 98;

    /// Wake up to `n` waiters on `addr`. No-op off Linux.
    #[allow(unused_variables)]
    pub fn futex_wake(addr: *const u32, n: i32) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        unsafe {
            const FUTEX_WAKE: c_int = 1;
            syscall(SYS_FUTEX, addr, FUTEX_WAKE, n, 0usize, 0usize, 0u32);
        }
    }

    /// Wait on `addr` while it still holds `expected`, up to
    /// `timeout_ns`. Returns immediately off Linux (callers fall back
    /// to polling).
    #[allow(unused_variables)]
    pub fn futex_wait(addr: *const u32, expected: u32, timeout_ns: u64) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        unsafe {
            const FUTEX_WAIT: c_int = 0;
            #[repr(C)]
            struct Timespec {
                sec: i64,
                nsec: i64,
            }
            let ts = Timespec {
                sec: (timeout_ns / 1_000_000_000) as i64,
                nsec: (timeout_ns % 1_000_000_000) as i64,
            };
            syscall(
                SYS_FUTEX,
                addr,
                FUTEX_WAIT,
                expected,
                &ts as *const Timespec,
            );
        }
    }
}

/// Round `n` up to the next multiple of 8 (frame alignment).
#[inline]
fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Per-ring capacity: env override or a rank-count-aware default.
/// Panics on an override that is not a power of two ≥ 64 KiB (a
/// launcher bug, not a user error).
///
/// Without an override, worlds beyond 4 ranks halve the 16 MiB ring
/// until a whole segment (N rings) fits in a 64 MiB budget — a 64-rank
/// world gets 1 MiB rings (64 MiB segments) instead of 1 GiB segments
/// that thrash writeback on disk-backed segment directories, and a
/// 256-rank world gets 256 KiB rings. The 64 KiB floor always wins
/// over the budget.
fn ring_cap_from_env(ranks: usize) -> u64 {
    match std::env::var(ENV_RING_BYTES) {
        Ok(v) => {
            let cap: u64 = v
                .parse()
                .unwrap_or_else(|_| panic!("bad {ENV_RING_BYTES}={v} (want bytes)"));
            assert!(
                cap.is_power_of_two() && cap >= 64 * 1024,
                "bad {ENV_RING_BYTES}={v} (want power of two >= 65536)"
            );
            cap
        }
        Err(_) => default_ring_cap(ranks),
    }
}

/// The no-override default: halve [`DEFAULT_RING_CAP`] until one
/// segment (`ranks` rings) fits in 64 MiB, floored at 64 KiB.
fn default_ring_cap(ranks: usize) -> u64 {
    const SEG_BUDGET: u64 = 64 << 20;
    let mut cap = DEFAULT_RING_CAP;
    while cap > 64 * 1024 && cap.saturating_mul(ranks as u64) > SEG_BUDGET {
        cap /= 2;
    }
    cap
}

// --------------------------------------------------------------------
// Segment mapping
// --------------------------------------------------------------------

/// One mapped segment file. Owners (the rank whose inbound rings live
/// here) hold the exclusive liveness flock and unlink the file on drop;
/// attachers only probe the lock. The mapping outlives the transport as
/// long as any [`MpfaBytes`] ring view holds an `Arc` to it.
struct SegMap {
    ptr: *mut u8,
    len: usize,
    /// Kept open: the fd anchors the mmap name and carries the flock.
    file: File,
    path: String,
    /// Owner side: unlink the file (and try to remove its now-empty
    /// parent directory) on drop.
    owner: bool,
}

// SAFETY: the mapping is shared memory by design; all cross-thread and
// cross-process access goes through atomics plus the SPSC ring
// protocol documented at module level.
unsafe impl Send for SegMap {}
unsafe impl Sync for SegMap {}

impl SegMap {
    fn map(file: File, len: usize, path: &str, owner: bool) -> io::Result<SegMap> {
        let huge = std::env::var(ENV_HUGEPAGES)
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut flags = sys::MAP_SHARED;
        #[cfg(target_os = "linux")]
        if huge {
            flags |= sys::MAP_HUGETLB;
        }
        let mut ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                flags,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 && huge {
            // No huge pages configured (or filesystem refuses them):
            // fall back to normal pages silently.
            ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
        }
        if ptr as isize == -1 {
            return Err(io::Error::other(format!(
                "mmap of {path} ({len} bytes) failed"
            )));
        }
        Ok(SegMap {
            ptr: ptr.cast(),
            len,
            file,
            path: path.to_string(),
            owner,
        })
    }

    /// Pointer to byte `off` of the mapping.
    #[inline]
    fn at(&self, off: usize) -> *mut u8 {
        debug_assert!(off < self.len);
        unsafe { self.ptr.add(off) }
    }

    #[inline]
    fn u64_at(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off.is_multiple_of(8));
        unsafe { &*self.at(off).cast::<AtomicU64>() }
    }

    #[inline]
    fn u32_at(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off.is_multiple_of(4));
        unsafe { &*self.at(off).cast::<AtomicU32>() }
    }

    /// True when the owner process no longer holds the liveness lock
    /// (it exited or was killed). Only meaningful from an attacher fd.
    fn owner_gone(&self) -> bool {
        let fd = self.file.as_raw_fd();
        if unsafe { sys::flock(fd, sys::LOCK_EX | sys::LOCK_NB) } == 0 {
            unsafe { sys::flock(fd, sys::LOCK_UN) };
            true
        } else {
            false
        }
    }
}

impl Drop for SegMap {
    fn drop(&mut self) {
        unsafe { sys::munmap(self.ptr.cast(), self.len) };
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
            if let Some(dir) = std::path::Path::new(&self.path).parent() {
                // Last one out removes the (then-empty) mesh directory.
                let _ = std::fs::remove_dir(dir);
            }
        }
    }
}

/// Segment geometry helpers (offsets into a mapping).
#[derive(Clone, Copy)]
struct Geometry {
    ranks: usize,
    ring_cap: u64,
}

impl Geometry {
    fn seg_len(&self) -> usize {
        SEG_HDR + self.ranks * (RING_HDR + self.ring_cap as usize)
    }
    fn ring_base(&self, i: usize) -> usize {
        SEG_HDR + i * (RING_HDR + self.ring_cap as usize)
    }
    fn head_off(&self, i: usize) -> usize {
        self.ring_base(i)
    }
    fn tail_off(&self, i: usize) -> usize {
        self.ring_base(i) + 64
    }
    fn data_off(&self, i: usize) -> usize {
        self.ring_base(i) + RING_HDR
    }
    /// Segment doorbell (futex word) offset.
    fn doorbell_off(&self) -> usize {
        40
    }
}

/// A created-but-not-yet-wired own segment: rings zeroed, liveness
/// flock held, magic written. Created before the bootstrap rendezvous
/// so the segment path can be published as this rank's data address.
pub struct ShmSegmentOwner {
    map: Arc<SegMap>,
    geo: Geometry,
    eps_per_rank: usize,
}

impl ShmSegmentOwner {
    /// Create (or replace) the segment file at `path` for a world of
    /// `ranks` ranks with `eps_per_rank` endpoints each. Ring capacity
    /// comes from `MPFA_SHM_RING_BYTES` (default 16 MiB).
    pub fn create(path: &str, ranks: usize, eps_per_rank: usize) -> io::Result<ShmSegmentOwner> {
        assert!(ranks > 0 && eps_per_rank > 0);
        let geo = Geometry {
            ranks,
            ring_cap: ring_cap_from_env(ranks),
        };
        // A stale segment from a dead process would alias the new one.
        let _ = std::fs::remove_file(path);
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.set_len(geo.seg_len() as u64)?;
        if unsafe { sys::flock(file.as_raw_fd(), sys::LOCK_EX | sys::LOCK_NB) } != 0 {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!("cannot take liveness lock on fresh segment {path}"),
            ));
        }
        let map = SegMap::map(file, geo.seg_len(), path, true)?;
        // Geometry first, magic last (Release): attachers spin on the
        // magic and must never observe a half-initialized header.
        map.u32_at(8).store(SEG_VERSION, Ordering::Relaxed);
        map.u32_at(12).store(ranks as u32, Ordering::Relaxed);
        map.u32_at(16).store(eps_per_rank as u32, Ordering::Relaxed);
        map.u64_at(24).store(geo.ring_cap, Ordering::Relaxed);
        map.u64_at(0).store(SEG_MAGIC, Ordering::Release);
        Ok(ShmSegmentOwner {
            map: Arc::new(map),
            geo,
            eps_per_rank,
        })
    }

    /// The segment file path (what peers attach — published as this
    /// rank's data address during bootstrap).
    pub fn path(&self) -> &str {
        &self.map.path
    }
}

/// Attach a peer's segment, waiting for it to appear and initialize.
fn attach(path: &str, want: Geometry, want_eps: usize) -> io::Result<Arc<SegMap>> {
    let deadline = wtime() + ATTACH_DEADLINE;
    loop {
        if let Ok(file) = OpenOptions::new().read(true).write(true).open(path) {
            if file.metadata().map(|m| m.len()).unwrap_or(0) >= want.seg_len() as u64 {
                let map = SegMap::map(file, want.seg_len(), path, false)?;
                if map.u64_at(0).load(Ordering::Acquire) == SEG_MAGIC {
                    let (ver, ranks, eps) = (
                        map.u32_at(8).load(Ordering::Relaxed),
                        map.u32_at(12).load(Ordering::Relaxed) as usize,
                        map.u32_at(16).load(Ordering::Relaxed) as usize,
                    );
                    let cap = map.u64_at(24).load(Ordering::Relaxed);
                    if ver != SEG_VERSION
                        || ranks != want.ranks
                        || eps != want_eps
                        || cap != want.ring_cap
                    {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "segment {path} geometry mismatch \
                                 (v{ver}, {ranks} ranks, {eps} eps, ring {cap})"
                            ),
                        ));
                    }
                    return Ok(Arc::new(map));
                }
            }
        }
        if wtime() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("peer segment {path} not initialized within {ATTACH_DEADLINE}s"),
            ));
        }
        // Each retry re-opens and re-maps the file, so spinning here is a
        // syscall storm that starves the very peer we are waiting on when
        // ranks outnumber cores. Sleep instead of yielding.
        std::thread::sleep(std::time::Duration::from_micros(500));
    }
}

// --------------------------------------------------------------------
// Ring space release (consumer side)
// --------------------------------------------------------------------

/// Shared release state of one inbound ring: views drop in any order,
/// but `head` may only advance through *contiguous* released intervals
/// — releasing past a still-referenced earlier frame would let the
/// producer overwrite bytes a view can still read.
struct RingRelease {
    seg: Arc<SegMap>,
    head_off: usize,
    pending: Mutex<Vec<(u64, u64)>>,
}

impl RingRelease {
    fn release(&self, start: u64, end: u64) {
        let head = self.seg.u64_at(self.head_off);
        let mut pending = self.pending.lock();
        pending.push((start, end));
        let mut h = head.load(Ordering::Relaxed);
        while let Some(i) = pending.iter().position(|&(s, _)| s == h) {
            h = pending.swap_remove(i).1;
            head.store(h, Ordering::Release);
        }
    }
}

/// Backing of a zero-copy ring view: keeps the mapping alive and
/// releases the frame's ring interval when the last clone drops.
struct RingViewBacking {
    rel: Arc<RingRelease>,
    start: u64,
    end: u64,
}

impl BytesBacking for RingViewBacking {}

impl Drop for RingViewBacking {
    fn drop(&mut self) {
        self.rel.release(self.start, self.end);
    }
}

// --------------------------------------------------------------------
// The transport
// --------------------------------------------------------------------

struct RxLane<M> {
    q: Mutex<VecDeque<Envelope<M>>>,
    n: AtomicUsize,
}

impl<M> RxLane<M> {
    fn new() -> Self {
        RxLane {
            q: Mutex::new(VecDeque::new()),
            n: AtomicUsize::new(0),
        }
    }
}

/// Producer-side state toward one peer: the overflow queue absorbing
/// frames when the peer's ring is full, and a reusable encode scratch
/// for messages that cannot be encoded straight into the ring.
struct TxState {
    overflow: VecDeque<Vec<u8>>,
    scratch: Vec<u8>,
}

struct PeerShm {
    /// The peer's mapped segment (`None` for self).
    seg: Option<Arc<SegMap>>,
    tx: Mutex<TxState>,
    dead: AtomicBool,
    /// Process-clock time of the next liveness probe.
    next_probe: Mutex<f64>,
}

struct RxRing {
    /// Local parse cursor (bytes consumed from the ring, monotonic).
    /// Always ≥ the shared `head`, which trails until views release.
    next: u64,
}

struct ShmInner<M> {
    my_rank: usize,
    ranks: usize,
    eps_per_rank: usize,
    geo: Geometry,
    own: Arc<SegMap>,
    peers: Vec<PeerShm>,
    /// Release state of each of our inbound rings, shared with views.
    releases: Vec<Arc<RingRelease>>,
    rx_rings: Vec<Mutex<RxRing>>,
    rx_net: Vec<RxLane<M>>,
    rx_shm: Vec<RxLane<M>>,
    rx_total: AtomicUsize,
    dead: AtomicUsize,
    tx_failed: AtomicUsize,
    pump: Mutex<()>,
}

/// The shared-memory transport: see the module docs for segment
/// layout, ring protocol, wakeup path, and liveness. Cheap to clone.
pub struct ShmTransport<M: FrameCodec> {
    inner: Arc<ShmInner<M>>,
}

impl<M: FrameCodec> Clone for ShmTransport<M> {
    fn clone(&self) -> Self {
        ShmTransport {
            inner: self.inner.clone(),
        }
    }
}

impl<M: FrameCodec> ShmTransport<M> {
    /// Build the transport for `my_rank` from its own created segment
    /// and the full table of peer segment paths (`peer_paths[r]` is
    /// rank `r`'s segment; the entry for `my_rank` is ignored). Waits
    /// for peers' segments to initialize, so callers need only
    /// guarantee every rank has *created* its segment (the bootstrap
    /// rendezvous does).
    pub fn new(
        own: ShmSegmentOwner,
        my_rank: usize,
        peer_paths: Vec<String>,
        _opts: WireOpts,
    ) -> io::Result<ShmTransport<M>> {
        let ranks = peer_paths.len();
        assert!(
            my_rank < ranks,
            "rank {my_rank} out of range for {ranks} ranks"
        );
        assert_eq!(
            own.geo.ranks, ranks,
            "segment created for a different world size"
        );
        let geo = own.geo;
        let eps_per_rank = own.eps_per_rank;
        let mut peers = Vec::with_capacity(ranks);
        for (r, path) in peer_paths.iter().enumerate() {
            let seg = if r == my_rank {
                None
            } else {
                Some(attach(path, geo, eps_per_rank)?)
            };
            peers.push(PeerShm {
                seg,
                tx: Mutex::new(TxState {
                    overflow: VecDeque::new(),
                    scratch: Vec::new(),
                }),
                dead: AtomicBool::new(false),
                next_probe: Mutex::new(wtime() + PROBE_INTERVAL),
            });
        }
        let releases = (0..ranks)
            .map(|i| {
                Arc::new(RingRelease {
                    seg: own.map.clone(),
                    head_off: geo.head_off(i),
                    pending: Mutex::new(Vec::new()),
                })
            })
            .collect();
        Ok(ShmTransport {
            inner: Arc::new(ShmInner {
                my_rank,
                ranks,
                eps_per_rank,
                geo,
                own: own.map,
                peers,
                releases,
                rx_rings: (0..ranks).map(|_| Mutex::new(RxRing { next: 0 })).collect(),
                rx_net: (0..eps_per_rank).map(|_| RxLane::new()).collect(),
                rx_shm: (0..eps_per_rank).map(|_| RxLane::new()).collect(),
                rx_total: AtomicUsize::new(0),
                dead: AtomicUsize::new(0),
                tx_failed: AtomicUsize::new(0),
                pump: Mutex::new(()),
            }),
        })
    }

    /// This rank in the world.
    pub fn rank(&self) -> usize {
        self.inner.my_rank
    }

    /// This rank's segment file path.
    pub fn seg_path(&self) -> &str {
        &self.inner.own.path
    }

    fn local_ep(&self, ep: usize) -> usize {
        let base = self.inner.my_rank * self.inner.eps_per_rank;
        assert!(
            ep >= base && ep < base + self.inner.eps_per_rank,
            "endpoint {ep} does not belong to rank {} (eps/rank {})",
            self.inner.my_rank,
            self.inner.eps_per_rank
        );
        ep - base
    }

    fn lane(&self, local: usize, path: Path) -> &RxLane<M> {
        match path {
            Path::Net => &self.inner.rx_net[local],
            Path::Shmem => &self.inner.rx_shm[local],
        }
    }

    fn deliver(&self, env: Envelope<M>, path: Path) {
        let local = env.dst - self.inner.my_rank * self.inner.eps_per_rank;
        let lane = self.lane(local, path);
        lane.q.lock().push_back(env);
        lane.n.fetch_add(1, Ordering::Release);
        self.inner.rx_total.fetch_add(1, Ordering::Release);
    }

    fn mark_dead(&self, rank: usize) {
        let p = &self.inner.peers[rank];
        if !p.dead.swap(true, Ordering::AcqRel) {
            p.tx.lock().overflow.clear();
            self.inner.dead.fetch_add(1, Ordering::Relaxed);
            mpfa_obs::global_counters()
                .transport_dead_peers
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Try to place one already-encoded, already-padded frame into the
    /// ring `my_rank` owns inside `rank`'s segment. Caller holds the
    /// peer's TX lock (single producer per ring).
    fn ring_write(&self, rank: usize, frame: &[u8]) -> bool {
        let seg = self.inner.peers[rank].seg.as_ref().expect("no self ring");
        let geo = self.inner.geo;
        let i = self.inner.my_rank;
        let cap = geo.ring_cap;
        let need = frame.len() as u64;
        assert!(
            need + 8 <= cap,
            "{need}-byte frame exceeds shm ring capacity {cap} \
             (raise {ENV_RING_BYTES} or lower protocol thresholds)"
        );
        let head = seg.u64_at(geo.head_off(i)).load(Ordering::Acquire);
        let tail = seg.u64_at(geo.tail_off(i)).load(Ordering::Relaxed);
        let free = cap - (tail - head);
        let idx = (tail % cap) as usize;
        let contig = cap as usize - idx;
        let data = geo.data_off(i);
        if need as usize <= contig {
            if free < need {
                return false;
            }
            unsafe {
                std::ptr::copy_nonoverlapping(frame.as_ptr(), seg.at(data + idx), frame.len());
            }
            seg.u64_at(geo.tail_off(i))
                .store(tail + need, Ordering::Release);
        } else {
            // Wrap: marker at the edge, frame at offset 0.
            if free < contig as u64 + need {
                return false;
            }
            unsafe {
                std::ptr::copy_nonoverlapping(
                    u32::MAX.to_le_bytes().as_ptr(),
                    seg.at(data + idx),
                    4,
                );
                std::ptr::copy_nonoverlapping(frame.as_ptr(), seg.at(data), frame.len());
            }
            seg.u64_at(geo.tail_off(i))
                .store(tail + contig as u64 + need, Ordering::Release);
        }
        // Doorbell: consumers blocked in wait_doorbell wake up.
        let bell = seg.u32_at(geo.doorbell_off());
        bell.fetch_add(1, Ordering::Release);
        sys::futex_wake(bell as *const AtomicU32 as *const u32, i32::MAX);
        true
    }

    /// Reserve `need` padded bytes in `rank`'s ring and hand the caller
    /// a writable slice over them; commits tail on success. Used for
    /// the direct-encode fast path (no staging copy). Caller holds the
    /// TX lock.
    fn ring_reserve<'a>(&self, rank: usize, need: usize) -> Option<&'a mut [u8]> {
        let seg = self.inner.peers[rank].seg.as_ref().expect("no self ring");
        let geo = self.inner.geo;
        let i = self.inner.my_rank;
        let cap = geo.ring_cap;
        let need64 = need as u64;
        assert!(
            need64 + 8 <= cap,
            "{need}-byte frame exceeds shm ring capacity {cap} \
             (raise {ENV_RING_BYTES} or lower protocol thresholds)"
        );
        let head = seg.u64_at(geo.head_off(i)).load(Ordering::Acquire);
        let tail = seg.u64_at(geo.tail_off(i)).load(Ordering::Relaxed);
        let free = cap - (tail - head);
        let idx = (tail % cap) as usize;
        let contig = cap as usize - idx;
        let data = geo.data_off(i);
        let at = if need <= contig {
            if free < need64 {
                return None;
            }
            data + idx
        } else {
            if free < contig as u64 + need64 {
                return None;
            }
            unsafe {
                std::ptr::copy_nonoverlapping(
                    u32::MAX.to_le_bytes().as_ptr(),
                    seg.at(data + idx),
                    4,
                );
            }
            data
        };
        // SAFETY: [at, at+need) is unpublished ring space — the
        // consumer cannot read past the un-advanced tail, and we are
        // the only producer (TX lock held). The commit happens in
        // `ring_commit` after the caller fills the slice.
        Some(unsafe { std::slice::from_raw_parts_mut(seg.at(at), need) })
    }

    /// Publish the reservation made by [`ShmTransport::ring_reserve`].
    fn ring_commit(&self, rank: usize, need: usize) {
        let seg = self.inner.peers[rank].seg.as_ref().expect("no self ring");
        let geo = self.inner.geo;
        let i = self.inner.my_rank;
        let cap = geo.ring_cap;
        let tail = seg.u64_at(geo.tail_off(i)).load(Ordering::Relaxed);
        let idx = (tail % cap) as usize;
        let contig = cap as usize - idx;
        let adv = if need <= contig {
            need as u64
        } else {
            contig as u64 + need as u64
        };
        seg.u64_at(geo.tail_off(i))
            .store(tail + adv, Ordering::Release);
        let bell = seg.u32_at(geo.doorbell_off());
        bell.fetch_add(1, Ordering::Release);
        sys::futex_wake(bell as *const AtomicU32 as *const u32, i32::MAX);
    }

    /// Flush a peer's overflow queue into its ring. Caller holds the
    /// TX lock. Returns true if anything moved.
    fn flush_overflow(&self, rank: usize, tx: &mut TxState) -> bool {
        let mut moved = false;
        while let Some(front) = tx.overflow.front() {
            if self.ring_write(rank, front) {
                tx.overflow.pop_front();
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    /// Drain our own inbound rings into the RX lanes. Caller holds the
    /// pump lock (single consumer). Returns true if anything arrived.
    fn drain_rings(&self) -> bool {
        let mut moved = false;
        let geo = self.inner.geo;
        let cap = geo.ring_cap;
        let counters = mpfa_obs::global_counters();
        for src_rank in 0..self.inner.ranks {
            if src_rank == self.inner.my_rank
                || self.inner.peers[src_rank].dead.load(Ordering::Acquire)
            {
                continue;
            }
            let tail = self
                .inner
                .own
                .u64_at(geo.tail_off(src_rank))
                .load(Ordering::Acquire);
            let mut rx = self.inner.rx_rings[src_rank].lock();
            let rel = &self.inner.releases[src_rank];
            let data = geo.data_off(src_rank);
            while rx.next < tail {
                let idx = (rx.next % cap) as usize;
                let contig = cap as usize - idx;
                let mut hdr = [0u8; FRAME_HEADER];
                debug_assert!(contig >= 8, "frame alignment broke the wrap invariant");
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.inner.own.at(data + idx),
                        hdr.as_mut_ptr(),
                        4,
                    );
                }
                let plen = u32::from_le_bytes(hdr[0..4].try_into().expect("4"));
                let (idx, start) = if plen == u32::MAX {
                    // Wrap marker: the frame restarts at offset 0; the
                    // skipped edge is released immediately.
                    let skip_end = rx.next + contig as u64;
                    rel.release(rx.next, skip_end);
                    rx.next = skip_end;
                    (0, skip_end)
                } else {
                    (idx, rx.next)
                };
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.inner.own.at(data + idx),
                        hdr.as_mut_ptr(),
                        FRAME_HEADER,
                    );
                }
                let plen = u32::from_le_bytes(hdr[0..4].try_into().expect("4")) as usize;
                let src = u32::from_le_bytes(hdr[4..8].try_into().expect("4")) as usize;
                let dst = u32::from_le_bytes(hdr[8..12].try_into().expect("4")) as usize;
                let wire_bytes = u32::from_le_bytes(hdr[12..16].try_into().expect("4")) as usize;
                let total = align8(FRAME_HEADER + plen) as u64;
                let end = start + total;
                let base = self.inner.my_rank * self.inner.eps_per_rank;
                assert!(
                    dst >= base && dst < base + self.inner.eps_per_rank,
                    "frame from rank {src_rank} addressed to foreign endpoint {dst}"
                );
                assert_eq!(
                    src / self.inner.eps_per_rank,
                    src_rank,
                    "frame source endpoint {src} does not match ring owner {src_rank}"
                );
                let payload_ptr = self.inner.own.at(data + idx + FRAME_HEADER);
                let payload = if plen >= VIEW_MIN {
                    // Zero-copy: a view into the mapped ring; space is
                    // released when the last clone drops.
                    unsafe {
                        MpfaBytes::from_raw(
                            payload_ptr,
                            plen,
                            Arc::new(RingViewBacking {
                                rel: rel.clone(),
                                start,
                                end,
                            }),
                        )
                    }
                } else {
                    // Small frame: copying beats release bookkeeping.
                    counters.record_bytes_copied(plen as u64);
                    let owned = unsafe { std::slice::from_raw_parts(payload_ptr, plen).to_vec() };
                    rel.release(start, end);
                    MpfaBytes::from(owned)
                };
                rx.next = end;
                counters.record_wire_rx((FRAME_HEADER + plen) as u64);
                let msg = M::decode_bytes(payload).unwrap_or_else(|| {
                    panic!("undecodable {plen}-byte shm frame payload from rank {src_rank}")
                });
                self.deliver(
                    Envelope {
                        src,
                        dst,
                        wire_bytes,
                        msg,
                    },
                    Path::Net,
                );
                moved = true;
            }
        }
        moved
    }

    /// Probe peers' liveness locks (rate-limited) and flush overflow
    /// queues. Caller holds the pump lock.
    fn drive_peers(&self) -> bool {
        let mut moved = false;
        let now = wtime();
        for r in 0..self.inner.ranks {
            if r == self.inner.my_rank {
                continue;
            }
            let p = &self.inner.peers[r];
            if p.dead.load(Ordering::Acquire) {
                continue;
            }
            {
                let mut tx = p.tx.lock();
                if !tx.overflow.is_empty() {
                    moved |= self.flush_overflow(r, &mut tx);
                }
            }
            let mut probe = p.next_probe.lock();
            if now >= *probe {
                *probe = now + PROBE_INTERVAL;
                drop(probe);
                if p.seg.as_ref().is_some_and(|s| s.owner_gone()) {
                    self.mark_dead(r);
                    moved = true;
                }
            }
        }
        moved
    }

    fn pump(&self) -> bool {
        let Some(_g) = self.inner.pump.try_lock() else {
            return false;
        };
        let mut moved = self.drain_rings();
        moved |= self.drive_peers();
        moved
    }

    /// Block up to `timeout_secs` for a doorbell ring (a producer wrote
    /// into one of our rings), using `FUTEX_WAIT` on Linux and a yield
    /// loop elsewhere. Returns immediately when packets are already
    /// deliverable. A convenience for event-driven callers; the
    /// progress engine itself polls via `external_work`.
    pub fn wait_doorbell(&self, timeout_secs: f64) {
        if self.inner.rx_total.load(Ordering::Acquire) > 0 || self.rings_nonempty() {
            return;
        }
        let bell = self.inner.own.u32_at(self.inner.geo.doorbell_off());
        let seen = bell.load(Ordering::Acquire);
        if self.rings_nonempty() {
            return;
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            sys::futex_wait(
                bell as *const AtomicU32 as *const u32,
                seen,
                (timeout_secs.max(0.0) * 1e9) as u64,
            );
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            let deadline = wtime() + timeout_secs;
            while bell.load(Ordering::Acquire) == seen && wtime() < deadline {
                std::thread::yield_now();
            }
        }
    }

    /// True when any inbound ring holds unparsed bytes.
    fn rings_nonempty(&self) -> bool {
        let geo = self.inner.geo;
        (0..self.inner.ranks).any(|r| {
            r != self.inner.my_rank && {
                let tail = self
                    .inner
                    .own
                    .u64_at(geo.tail_off(r))
                    .load(Ordering::Acquire);
                let next = self.inner.rx_rings[r].lock().next;
                tail > next
            }
        })
    }
}

impl<M: FrameCodec> Transport<M> for ShmTransport<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Shm
    }

    fn endpoints(&self) -> usize {
        self.inner.ranks * self.inner.eps_per_rank
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        assert!(
            dst_ep < self.endpoints(),
            "destination endpoint {dst_ep} out of range"
        );
        self.local_ep(src_ep); // asserts src ownership
        let dst_rank = dst_ep / self.inner.eps_per_rank;
        if dst_rank == self.inner.my_rank {
            mpfa_obs::global_counters().record_packet(mpfa_obs::PathKind::Shmem, wire_bytes as u64);
            self.deliver(
                Envelope {
                    src: src_ep,
                    dst: dst_ep,
                    wire_bytes,
                    msg,
                },
                Path::Shmem,
            );
            return TxHandle::immediate();
        }
        let counters = mpfa_obs::global_counters();
        counters.record_packet(mpfa_obs::PathKind::Net, wire_bytes as u64);
        let p = &self.inner.peers[dst_rank];
        if p.dead.load(Ordering::Acquire) {
            self.inner.tx_failed.fetch_add(1, Ordering::Relaxed);
            return TxHandle::failed();
        }
        let mut tx = p.tx.lock();
        // FIFO: anything stuck in overflow must go out first.
        self.flush_overflow(dst_rank, &mut tx);
        let header = |plen: usize| -> [u8; FRAME_HEADER] {
            let mut h = [0u8; FRAME_HEADER];
            h[0..4].copy_from_slice(&(plen as u32).to_le_bytes());
            h[4..8].copy_from_slice(&(src_ep as u32).to_le_bytes());
            h[8..12].copy_from_slice(&(dst_ep as u32).to_le_bytes());
            h[12..16].copy_from_slice(&(wire_bytes as u32).to_le_bytes());
            h
        };
        if tx.overflow.is_empty() {
            if let Some(plen) = msg.encoded_len() {
                // Fast path: encode straight into the ring — the user
                // payload is memcpy'd exactly once, by the backend's
                // injection itself (not counted as a datapath copy,
                // exactly like a socket write).
                let total = align8(FRAME_HEADER + plen);
                if let Some(slot) = self.ring_reserve(dst_rank, total) {
                    slot[..FRAME_HEADER].copy_from_slice(&header(plen));
                    msg.encode_into(&mut slot[FRAME_HEADER..FRAME_HEADER + plen]);
                    for b in &mut slot[FRAME_HEADER + plen..] {
                        *b = 0;
                    }
                    self.ring_commit(dst_rank, total);
                    counters.record_wire_tx((FRAME_HEADER + plen) as u64);
                    return TxHandle::immediate();
                }
            } else {
                // No exact length up front: stage through the reusable
                // scratch (one counted copy), then inject.
                let mut scratch = std::mem::take(&mut tx.scratch);
                scratch.clear();
                scratch.extend_from_slice(&[0u8; FRAME_HEADER]);
                msg.encode(&mut scratch);
                let plen = scratch.len() - FRAME_HEADER;
                counters.record_bytes_copied(plen as u64);
                scratch[..FRAME_HEADER].copy_from_slice(&header(plen));
                scratch.resize(align8(scratch.len()), 0);
                let ok = self.ring_write(dst_rank, &scratch);
                if ok {
                    counters.record_wire_tx((FRAME_HEADER + plen) as u64);
                    tx.scratch = scratch;
                    return TxHandle::immediate();
                }
                // Ring full: the staged frame becomes the overflow entry.
                counters.shm_ring_full.fetch_add(1, Ordering::Relaxed);
                tx.overflow.push_back(scratch);
                return TxHandle::immediate();
            }
            // Ring full on the fast path: fall through to overflow.
            counters.shm_ring_full.fetch_add(1, Ordering::Relaxed);
        }
        // Overflow: stage an owned frame (a genuine extra copy, counted)
        // to preserve FIFO; the pump drains it when the consumer frees
        // ring space.
        let mut frame = Vec::with_capacity(FRAME_HEADER + 64);
        frame.extend_from_slice(&[0u8; FRAME_HEADER]);
        msg.encode(&mut frame);
        let plen = frame.len() - FRAME_HEADER;
        counters.record_bytes_copied(plen as u64);
        frame[..FRAME_HEADER].copy_from_slice(&header(plen));
        frame.resize(align8(frame.len()), 0);
        tx.overflow.push_back(frame);
        TxHandle::immediate()
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        let local = self.local_ep(ep);
        let lane = self.lane(local, path);
        if lane.n.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut q = lane.q.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        drop(q);
        if n > 0 {
            lane.n.fetch_sub(n, Ordering::Release);
            self.inner.rx_total.fetch_sub(n, Ordering::Release);
        }
        n
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        let local = self.local_ep(ep);
        self.lane(local, path).n.load(Ordering::Acquire)
    }

    fn progress(&self) -> bool {
        self.pump()
    }

    fn external_work(&self) -> bool {
        // Delivered-but-undrained packets, or unparsed bytes actually
        // present in a mapped ring. An idle world reports no work —
        // the producer's futex doorbell (and the tail writes this
        // checks) makes new traffic visible immediately, so nothing
        // needs the old "some peer is alive, keep sweeping" answer.
        self.inner.rx_total.load(Ordering::Acquire) > 0 || self.rings_nonempty()
    }

    fn eager_hint(&self) -> Option<usize> {
        // A quarter ring: large messages travel as one frame delivered
        // as a zero-copy view instead of a copying rendezvous pipeline,
        // while never letting a single frame starve the ring.
        Some((self.inner.geo.ring_cap / 4) as usize)
    }

    fn peer_alive(&self, rank: usize) -> bool {
        rank == self.inner.my_rank || !self.inner.peers[rank].dead.load(Ordering::Acquire)
    }

    fn dead_peers(&self) -> usize {
        self.inner.dead.load(Ordering::Relaxed)
    }

    fn failed_sends(&self) -> usize {
        self.inner.tx_failed.load(Ordering::Relaxed)
    }

    fn kill_peer(&self, rank: usize) -> bool {
        if rank == self.inner.my_rank || rank >= self.inner.ranks {
            return false;
        }
        self.mark_dead(rank);
        true
    }
}

/// Build an in-process shm mesh: one segment per rank in a fresh
/// temp directory, everyone attached to everyone. The harness behind
/// `loopback_mesh(TransportKind::Shm, ..)`.
pub fn shm_mesh<M: FrameCodec>(
    ranks: usize,
    eps_per_rank: usize,
    opts: WireOpts,
    dir_tag: usize,
) -> io::Result<Vec<Arc<dyn Transport<M>>>> {
    let dir = std::env::temp_dir().join(format!("mpfa-shm-{}-{}", std::process::id(), dir_tag));
    std::fs::create_dir_all(&dir)?;
    let paths: Vec<String> = (0..ranks)
        .map(|r| dir.join(format!("r{r}.seg")).to_string_lossy().into_owned())
        .collect();
    let owners: Vec<ShmSegmentOwner> = paths
        .iter()
        .map(|p| ShmSegmentOwner::create(p, ranks, eps_per_rank))
        .collect::<io::Result<_>>()?;
    let mesh = owners
        .into_iter()
        .enumerate()
        .map(|(r, own)| {
            ShmTransport::new(own, r, paths.clone(), opts)
                .map(|t| Arc::new(t) as Arc<dyn Transport<M>>)
        })
        .collect::<io::Result<Vec<_>>>()?;
    // Every rank is attached now, and both the mappings and the
    // flock-based liveness probes live on the already-open fds — the
    // paths need not stay visible. Unlinking here (POSIX-style
    // anonymous segments) means a crashed or leaky harness process
    // never strands multi-MiB segment files in the temp directory.
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_dir(&dir);
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::loopback_mesh;

    type Msg = Vec<u8>;

    fn drain(t: &Arc<dyn Transport<Msg>>, ep: usize, want: usize) -> Vec<Envelope<Msg>> {
        let mut out = Vec::new();
        let deadline = wtime() + 10.0;
        while out.len() < want {
            t.progress();
            t.poll(ep, Path::Net, usize::MAX, &mut out);
            assert!(
                wtime() < deadline,
                "timed out: {}/{want} packets",
                out.len()
            );
        }
        out
    }

    #[test]
    fn shm_pair_roundtrip_fifo() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        assert_eq!(mesh[0].kind(), TransportKind::Shm);
        assert_eq!(mesh[0].endpoints(), 2);
        // Idle world: nothing in any ring, so no speculative work.
        assert!(!mesh[0].external_work());
        assert!(mesh[0].eager_hint().unwrap() >= 64 * 1024 / 4);
        for i in 0..50u8 {
            mesh[0].send(0, 1, vec![i; (i as usize % 7) + 1], i as usize);
        }
        // Undrained ring bytes are visible work on the receiving side.
        assert!(mesh[1].external_work());
        let got = drain(&mesh[1], 1, 50);
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.src, 0);
            assert_eq!(env.dst, 1);
            assert_eq!(env.wire_bytes, i);
            assert_eq!(env.msg, vec![i as u8; (i % 7) + 1], "FIFO broken at {i}");
        }
        mesh[1].send(1, 0, b"pong".to_vec(), 4);
        let got = drain(&mesh[0], 0, 1);
        assert_eq!(got[0].msg, b"pong".to_vec());
    }

    #[test]
    fn large_frames_wrap_the_ring() {
        // Frames big enough to wrap a 16 MiB ring several times over,
        // with a position-dependent pattern to catch any slip.
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        let reps = 40usize;
        let size = 1 << 20;
        let t0 = mesh[0].clone();
        let t1 = mesh[1].clone();
        let producer = std::thread::spawn(move || {
            for k in 0..reps as u64 {
                let big: Vec<u8> = (0..size as u64)
                    .map(|i| ((i * 7 + k) % 251) as u8)
                    .collect();
                t0.send(0, 1, big, size);
                t0.progress();
            }
        });
        let got = drain(&t1, 1, reps);
        producer.join().unwrap();
        for (k, env) in got.iter().enumerate() {
            assert_eq!(env.msg.len(), size);
            for (i, &b) in env.msg.iter().enumerate() {
                assert_eq!(
                    b,
                    ((i as u64 * 7 + k as u64) % 251) as u8,
                    "byte {i} frame {k}"
                );
            }
        }
    }

    #[test]
    fn default_ring_cap_scales_with_rank_count() {
        // Small worlds keep the full 16 MiB ring; larger worlds halve
        // it so one segment stays inside the 64 MiB budget; the 64 KiB
        // floor wins at absurd rank counts.
        assert_eq!(default_ring_cap(1), 16 << 20);
        assert_eq!(default_ring_cap(4), 16 << 20);
        assert_eq!(default_ring_cap(8), 8 << 20);
        assert_eq!(default_ring_cap(16), 4 << 20);
        assert_eq!(default_ring_cap(64), 1 << 20);
        assert_eq!(default_ring_cap(256), 256 << 10);
        assert_eq!(default_ring_cap(1 << 20), 64 << 10);
    }

    #[test]
    fn ring_full_overflows_and_recovers() {
        // A tiny ring forces overflow without a consumer; draining the
        // consumer later must release it all in order.
        std::env::set_var(ENV_RING_BYTES, "65536");
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default());
        std::env::remove_var(ENV_RING_BYTES);
        let mesh = mesh.unwrap();
        let before = mpfa_obs::global_counters()
            .shm_ring_full
            .load(Ordering::Relaxed);
        let n = 40usize;
        for i in 0..n {
            let mut payload = vec![0u8; 8 * 1024];
            payload[0] = i as u8;
            mesh[0].send(0, 1, payload, 8 * 1024);
        }
        assert!(
            mpfa_obs::global_counters()
                .shm_ring_full
                .load(Ordering::Relaxed)
                > before,
            "a 64 KiB ring cannot hold 40x8 KiB without overflow"
        );
        // The producer's pump drains overflow as the consumer frees
        // space.
        let mut out = Vec::new();
        let deadline = wtime() + 10.0;
        while out.len() < n {
            mesh[0].progress();
            mesh[1].progress();
            mesh[1].poll(1, Path::Net, usize::MAX, &mut out);
            assert!(wtime() < deadline, "stuck at {}/{n}", out.len());
        }
        for (i, env) in out.iter().enumerate() {
            assert_eq!(env.msg[0], i as u8, "overflow broke FIFO at {i}");
        }
    }

    #[test]
    fn same_rank_loopback_uses_shmem_path() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 2, WireOpts::default()).unwrap();
        mesh[0].send(0, 1, b"local".to_vec(), 5);
        assert_eq!(mesh[0].queued(1, Path::Shmem), 1);
        assert_eq!(mesh[0].queued(1, Path::Net), 0);
        let mut out = Vec::new();
        assert_eq!(mesh[0].poll(1, Path::Shmem, 16, &mut out), 1);
        assert_eq!(out[0].msg, b"local".to_vec());
    }

    #[test]
    fn kill_peer_severs_immediately() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 3, 1, WireOpts::default()).unwrap();
        assert!(mesh[0].peer_alive(2));
        assert!(mesh[0].kill_peer(2));
        assert!(mesh[1].kill_peer(2));
        assert!(!mesh[0].kill_peer(0), "cannot kill self");
        assert!(!mesh[0].peer_alive(2));
        assert_eq!(mesh[0].dead_peers(), 1);
        mesh[0].send(0, 1, b"alive".to_vec(), 5);
        let got = drain(&mesh[1], 1, 1);
        assert_eq!(got[0].msg, b"alive".to_vec());
        let before = mesh[0].failed_sends();
        let tx = mesh[0].send(0, 2, b"late".to_vec(), 4);
        assert!(tx.is_failed());
        assert_eq!(mesh[0].failed_sends(), before + 1);
    }

    #[test]
    fn dropped_owner_is_detected_via_lock_probe() {
        // Dropping rank 0's transport releases its liveness flock; rank
        // 1's probe must notice without any explicit kill.
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        let t1 = mesh[1].clone();
        drop(mesh);
        let deadline = wtime() + 10.0;
        while t1.dead_peers() == 0 {
            t1.progress();
            assert!(wtime() < deadline, "peer never declared dead");
            std::thread::yield_now();
        }
        assert!(!t1.peer_alive(0));
        assert!(t1.peer_alive(1));
        let tx = t1.send(1, 0, b"more".to_vec(), 4);
        assert!(tx.is_failed());
        assert!(tx.is_done(), "failed handles must not hang waiters");
    }

    #[test]
    fn segment_files_removed_on_drop() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        let paths: Vec<String> = mesh.iter().map(|_| String::new()).collect();
        drop(paths);
        drop(mesh);
        // Nothing to assert by path without poking internals; a fresh
        // mesh with the same tag pattern must come up cleanly.
        let again = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn large_payloads_arrive_as_ring_views_without_copies() {
        let mesh =
            loopback_mesh::<MpfaBytes>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        let counters = mpfa_obs::global_counters();
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 256) as u8).collect();
        let expect = payload.clone();
        let before = counters.bytes_copied.load(Ordering::Relaxed);
        mesh[0].send(0, 1, MpfaBytes::from(payload), 1 << 20);
        let mut out = Vec::new();
        let deadline = wtime() + 10.0;
        while out.is_empty() {
            mesh[1].progress();
            mesh[1].poll(1, Path::Net, 16, &mut out);
            assert!(wtime() < deadline);
        }
        let delta = counters.bytes_copied.load(Ordering::Relaxed) - before;
        assert!(
            delta < 64 * 1024,
            "1 MiB shm transfer copied {delta} payload bytes; want ~0"
        );
        assert_eq!(out[0].msg.len(), 1 << 20);
        assert!(out[0].msg == expect, "ring view content mismatch");
        // Dropping the view releases ring space (head catches tail).
        drop(out);
    }

    #[test]
    fn wait_doorbell_returns_promptly_on_traffic() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Shm, 2, 1, WireOpts::default()).unwrap();
        // With traffic already in the ring, the wait is a no-op.
        mesh[0].send(0, 1, b"ding".to_vec(), 4);
        let t1 = mesh[1].clone();
        let t = wtime();
        // Downcast through the concrete type to reach wait_doorbell.
        // (loopback_mesh returns dyn Transport; re-derive via any.)
        drain(&t1, 1, 1);
        assert!(wtime() - t < 5.0);
    }
}

//! Refcounted byte slices for the zero-copy datapath.
//!
//! [`MpfaBytes`] is a cheap, clonable view into shared immutable bytes —
//! the same idea as timely-dataflow's `bytes` crate, sized down to what
//! the message path needs. A view is `(ptr, len)` plus a refcounted
//! *backing* keeping the underlying storage alive: a `Vec<u8>` moved in
//! with `From<Vec<u8>>`, a pooled buffer returned to its [`BufPool`] on
//! drop, or (for the shared-memory transport) a mapped ring region whose
//! guard releases ring space when the last view drops.
//!
//! Slicing ([`MpfaBytes::slice`]) and cloning never copy payload bytes;
//! they bump a refcount. The only copies on the message path are the
//! ones a backend genuinely requires (socket reassembly) or the typed
//! API boundary demands (`Vec<T>` out of `wait`), and those are counted
//! by the `bytes_copied` obs counter at the site of the memcpy.

use std::collections::VecDeque;
use std::ops::{Deref, Range};
use std::sync::{Arc, Mutex, Weak};

/// Storage that a [`MpfaBytes`] view keeps alive. The trait is a pure
/// lifetime anchor: dropping the last `Arc<dyn BytesBacking>` releases
/// the storage (frees the Vec, returns the pooled buffer, advances the
/// ring head).
pub trait BytesBacking: Send + Sync {}

/// A `Vec<u8>` backing: the common owned case.
struct VecBacking(#[allow(dead_code)] Vec<u8>);
impl BytesBacking for VecBacking {}

/// A static backing for the empty view (no allocation).
struct StaticBacking;
impl BytesBacking for StaticBacking {}

/// A cheaply clonable, immutable view into refcounted bytes.
///
/// `Deref<Target = [u8]>`, so a view reads like a slice. Equality
/// compares contents, not identity.
pub struct MpfaBytes {
    ptr: *const u8,
    len: usize,
    hold: Arc<dyn BytesBacking>,
}

// SAFETY: the view is immutable — it only ever reads `ptr[..len]` — and
// the backing (which owns the storage) is itself Send + Sync. Backings
// over shared memory must guarantee the producer does not mutate the
// viewed region while views exist; the SPSC ring protocol does (the
// consumer head only advances past a region once its views drop).
unsafe impl Send for MpfaBytes {}
unsafe impl Sync for MpfaBytes {}

impl MpfaBytes {
    /// The empty view.
    pub fn empty() -> MpfaBytes {
        MpfaBytes {
            ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
            len: 0,
            hold: Arc::new(StaticBacking),
        }
    }

    /// View `bytes[range]` of storage kept alive by `hold`.
    ///
    /// # Safety
    /// `ptr[..len]` must stay valid and unmutated for as long as `hold`
    /// (or any clone of it) is alive.
    pub unsafe fn from_raw(ptr: *const u8, len: usize, hold: Arc<dyn BytesBacking>) -> MpfaBytes {
        MpfaBytes { ptr, len, hold }
    }

    /// Copy `bytes` into a fresh owned backing. This is a real memcpy —
    /// callers on the message path pair it with the `bytes_copied`
    /// counter.
    pub fn copy_from(bytes: &[u8]) -> MpfaBytes {
        MpfaBytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `range`, sharing the same backing (no copy).
    ///
    /// # Panics
    /// Panics when `range` is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> MpfaBytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of {} bytes",
            self.len
        );
        MpfaBytes {
            // SAFETY: in-bounds offset of a live allocation.
            ptr: unsafe { self.ptr.add(range.start) },
            len: range.end - range.start,
            hold: self.hold.clone(),
        }
    }

    /// The bytes as an owned `Vec<u8>`. Always copies; pair with the
    /// `bytes_copied` counter on the message path.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for MpfaBytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        // SAFETY: `hold` keeps ptr[..len] alive and unmutated.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for MpfaBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Clone for MpfaBytes {
    fn clone(&self) -> MpfaBytes {
        MpfaBytes {
            ptr: self.ptr,
            len: self.len,
            hold: self.hold.clone(),
        }
    }
}

impl From<Vec<u8>> for MpfaBytes {
    /// Move a `Vec<u8>` into a view without copying.
    fn from(v: Vec<u8>) -> MpfaBytes {
        let ptr = v.as_ptr();
        let len = v.len();
        MpfaBytes {
            ptr,
            len,
            hold: Arc::new(VecBacking(v)),
        }
    }
}

impl From<&[u8]> for MpfaBytes {
    /// Copying conversion (borrowed bytes must be owned to be shared).
    fn from(b: &[u8]) -> MpfaBytes {
        MpfaBytes::copy_from(b)
    }
}

impl PartialEq for MpfaBytes {
    fn eq(&self, other: &MpfaBytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for MpfaBytes {}

impl PartialEq<[u8]> for MpfaBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for MpfaBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::fmt::Debug for MpfaBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpfaBytes({} bytes)", self.len)
    }
}

impl Default for MpfaBytes {
    fn default() -> MpfaBytes {
        MpfaBytes::empty()
    }
}

// ---------------------------------------------------------------------
// Buffer pool: reusable scratch buffers for frame encoding.
// ---------------------------------------------------------------------

/// A pool of reusable `Vec<u8>` scratch buffers.
///
/// The wire TX path encodes every outgoing frame into a buffer checked
/// out of a per-peer pool instead of allocating a fresh `Vec<u8>`; when
/// the frame has been flushed to the socket and the last [`MpfaBytes`]
/// view of it drops, the buffer returns to the pool for the next frame.
pub struct BufPool {
    free: Mutex<VecDeque<Vec<u8>>>,
    /// Max buffers retained; excess returns are dropped.
    cap: usize,
}

impl BufPool {
    /// A pool retaining at most `cap` idle buffers.
    pub fn new(cap: usize) -> Arc<BufPool> {
        Arc::new(BufPool {
            free: Mutex::new(VecDeque::new()),
            cap,
        })
    }

    /// Check out an empty scratch buffer (reused when one is idle).
    pub fn take(self: &Arc<BufPool>) -> Vec<u8> {
        let mut buf = self
            .free
            .lock()
            .expect("buffer pool poisoned")
            .pop_front()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    /// Number of idle buffers (for tests).
    pub fn idle(&self) -> usize {
        self.free.lock().expect("buffer pool poisoned").len()
    }

    fn put(&self, buf: Vec<u8>) {
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.cap {
            free.push_back(buf);
        }
    }

    /// Wrap a filled scratch buffer in a view that returns the buffer to
    /// this pool when the last clone drops.
    pub fn freeze(self: &Arc<BufPool>, buf: Vec<u8>) -> MpfaBytes {
        let ptr = buf.as_ptr();
        let len = buf.len();
        MpfaBytes {
            ptr,
            len,
            hold: Arc::new(PoolBuf {
                buf: Some(buf),
                pool: Arc::downgrade(self),
            }),
        }
    }
}

/// Backing of a pooled buffer: returns the Vec to its pool on drop (or
/// just frees it when the pool is gone).
struct PoolBuf {
    buf: Option<Vec<u8>>,
    pool: Weak<BufPool>,
}

impl BytesBacking for PoolBuf {}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        if let (Some(buf), Some(pool)) = (self.buf.take(), self.pool.upgrade()) {
            pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_views_without_copy() {
        let v = vec![1u8, 2, 3, 4, 5];
        let ptr = v.as_ptr();
        let b = MpfaBytes::from(v);
        assert_eq!(b.as_ptr(), ptr, "no copy on From<Vec<u8>>");
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn slice_shares_backing() {
        let b = MpfaBytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        // Sub-slicing composes.
        let ss = s.slice(1..3);
        assert_eq!(&ss[..], &[3, 4]);
        // The original stays valid after dropping the parent views.
        drop(b);
        drop(s);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = MpfaBytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn equality_is_by_content() {
        let a = MpfaBytes::from(vec![9u8, 9]);
        let b = MpfaBytes::copy_from(&[9u8, 9]);
        assert_eq!(a, b);
        assert_eq!(a, vec![9u8, 9]);
        assert!(a == *[9u8, 9].as_slice());
        assert_ne!(a, MpfaBytes::empty());
    }

    #[test]
    fn empty_view_works() {
        let e = MpfaBytes::empty();
        assert!(e.is_empty());
        assert_eq!(e.to_vec(), Vec::<u8>::new());
        assert_eq!(MpfaBytes::default(), e);
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = BufPool::new(4);
        let mut buf = pool.take();
        buf.extend_from_slice(b"hello");
        let cap = buf.capacity();
        let view = pool.freeze(buf);
        assert_eq!(&view[..], b"hello");
        let v2 = view.clone();
        drop(view);
        assert_eq!(pool.idle(), 0, "clone still holds the buffer");
        drop(v2);
        assert_eq!(pool.idle(), 1, "buffer returned when last view dropped");
        let again = pool.take();
        assert!(again.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(again.capacity(), cap, "capacity retained across reuse");
    }

    #[test]
    fn pool_cap_bounds_retention() {
        let pool = BufPool::new(1);
        let a = pool.freeze(vec![1u8]);
        let b = pool.freeze(vec![2u8]);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 1, "excess returns are dropped");
    }

    #[test]
    fn views_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MpfaBytes>();
    }
}

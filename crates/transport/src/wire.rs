//! The shared wire engine behind the TCP and UDS backends.
//!
//! Both kernel-socket backends are the same state machine over a
//! different address family, so the engine is generic over a small
//! [`SockFamily`] trait and the backends are one-page instantiations.
//!
//! ## Framing
//!
//! Every packet crosses the socket as one length-prefixed frame:
//!
//! ```text
//! [payload_len: u32 LE][src_ep: u32 LE][dst_ep: u32 LE][wire_bytes: u32 LE][payload]
//! ```
//!
//! a 16-byte header followed by `payload_len` bytes produced by the
//! message type's [`FrameCodec`] impl. Sockets are nonblocking, so both
//! sides must tolerate partial reads and writes: the receiver
//! accumulates into a per-peer reassembly buffer and only parses
//! complete frames; the sender keeps a per-peer TX queue with a byte
//! offset into the front frame.
//!
//! ## Connection topology
//!
//! One socket per unordered rank pair. The **higher** rank dials the
//! lower rank's listener and introduces itself with a 4-byte hello
//! (its rank, u32 LE); the lower rank accepts. TCP's per-connection
//! byte-stream ordering plus FIFO TX queues gives the non-overtaking
//! guarantee per directed channel that the MPI layer relies on.
//!
//! ## Failure and reconnect
//!
//! A failed dial or a lost connection schedules a retry with bounded
//! exponential backoff (`retry_base * 2^attempts`, capped at
//! `retry_max`, at most `max_attempts` tries). When the budget runs
//! out the peer is marked **dead**: queued frames for it are dropped,
//! [`crate::Transport::dead_peers`] goes nonzero, and the obs doctor's
//! "transport partition" pathology fires. Frames that were fully
//! written before a connection died may be lost — the engine restores
//! framing integrity across a reconnect (partial frames are discarded
//! on both sides) but does not retransmit; see `docs/TRANSPORT.md`.
//!
//! ## Readiness reactor
//!
//! On Linux the engine runs event-driven (see [`crate::reactor`]): an
//! epoll thread publishes per-peer readiness bits and a pump pass
//! touches only (a) peers the reactor marked readable, (b) peers with
//! queued TX bytes (`tx_dirty`), and (c) peers needing connection
//! attention — dials, retry timers, acceptor grace deadlines
//! (`conn_dirty`). Everything else is skipped, and each skip is counted
//! in `wire_syscalls_saved`. `external_work` collapses to a few atomic
//! loads, so an idle fully-connected world costs zero socket syscalls
//! per sweep. `MPFA_REACTOR=0` (or a non-Linux host) falls back to the
//! legacy full-scan pump with identical semantics.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mpfa_core::sync::Mutex;
use mpfa_core::wtime;
use mpfa_fabric::{Envelope, Path, TxHandle};

use crate::bytes::MpfaBytes;
use crate::codec::FrameCodec;
use crate::reactor::{reactor_enabled, Reactor, ReadySet};
use crate::{Transport, TransportKind};

/// Count socket-touching syscalls into the always-on obs counters.
fn count_syscalls(n: u64) {
    mpfa_obs::global_counters()
        .wire_syscalls
        .fetch_add(n, Ordering::Relaxed);
}

/// Frame header size in bytes.
pub const FRAME_HEADER: usize = 16;

/// Tuning knobs for the wire engine.
#[derive(Debug, Clone, Copy)]
pub struct WireOpts {
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// First retry delay after a failed dial / lost connection.
    pub retry_base: f64,
    /// Retry delay ceiling (exponential backoff is capped here).
    pub retry_max: f64,
    /// Connection attempts per outage before the peer is declared dead.
    pub max_attempts: u32,
    /// Soft cap on a peer's queued-but-unsent TX bytes; `send` spends
    /// bounded effort flushing above this before letting the queue grow.
    pub tx_backlog_soft: usize,
    /// Test hook: artificially fail the first dial to every peer once,
    /// exercising the retry path (`MPFA_INJECT_CONNECT_FAIL=1`).
    pub inject_connect_fail: bool,
}

impl Default for WireOpts {
    fn default() -> Self {
        WireOpts {
            connect_timeout: Duration::from_secs(1),
            retry_base: 0.01,
            retry_max: 0.5,
            max_attempts: 20,
            tx_backlog_soft: 4 << 20,
            inject_connect_fail: false,
        }
    }
}

impl WireOpts {
    /// Defaults, with the failure-injection hook read from the
    /// `MPFA_INJECT_CONNECT_FAIL` environment variable.
    pub fn from_env() -> WireOpts {
        WireOpts {
            inject_connect_fail: std::env::var(crate::bootstrap::ENV_INJECT_CONNECT_FAIL)
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false),
            ..WireOpts::default()
        }
    }
}

/// An address family the wire engine can run over.
pub trait SockFamily: Send + Sync + 'static {
    /// The listening socket type.
    type Listener: Send + Sync;
    /// The connected stream type.
    type Stream: Read + Write + Send;
    /// Which [`TransportKind`] this family implements.
    const KIND: TransportKind;

    /// Bind a nonblocking listener at `hint` (e.g. `127.0.0.1:0`) and
    /// return it with the concrete bound address peers should dial.
    fn bind(hint: &str) -> io::Result<(Self::Listener, String)>;
    /// Accept one pending connection, or `Ok(None)` if none is waiting.
    fn accept(listener: &Self::Listener) -> io::Result<Option<Self::Stream>>;
    /// Dial `addr`, blocking at most `timeout`.
    fn connect(addr: &str, timeout: Duration) -> io::Result<Self::Stream>;
    /// Switch a stream between blocking and nonblocking mode.
    fn set_nonblocking(stream: &Self::Stream, on: bool) -> io::Result<()>;
    /// Set the blocking-read timeout (used by the bootstrap handshake,
    /// which runs over blocking sockets).
    fn set_read_timeout(stream: &Self::Stream, timeout: Option<Duration>) -> io::Result<()>;
    /// Remove any filesystem residue of a bound address (UDS socket
    /// files; a no-op for TCP).
    fn cleanup(addr: &str);
    /// Raw OS handle of the listener, for readiness registration.
    /// `None` (the default) keeps the engine on the full-scan pump.
    fn listener_fd(_listener: &Self::Listener) -> Option<i32> {
        None
    }
    /// Raw OS handle of a connected stream, for readiness registration.
    fn stream_fd(_stream: &Self::Stream) -> Option<i32> {
        None
    }
}

/// A listener bound ahead of time, so a rank can learn (and publish)
/// its concrete data address before the transport exists — the
/// bootstrap needs the address to build the peer table that the
/// transport is then constructed from.
pub struct Bound<F: SockFamily> {
    listener: F::Listener,
    /// The concrete address peers should dial.
    pub addr: String,
}

impl<F: SockFamily> Bound<F> {
    /// Bind a listener at `hint`.
    pub fn bind(hint: &str) -> io::Result<Bound<F>> {
        let (listener, addr) = F::bind(hint)?;
        Ok(Bound { listener, addr })
    }
}

enum PeerState<S> {
    /// No connection; a dialer will (re)try, an acceptor waits.
    Idle,
    /// Live socket.
    Connected(S),
    /// Reconnect budget exhausted; frames to this peer are dropped.
    Dead,
}

struct Peer<S> {
    addr: String,
    /// True when we dial this peer (we are the higher rank).
    dialer: bool,
    state: PeerState<S>,
    /// Outbound frames, oldest first.
    txq: VecDeque<Vec<u8>>,
    /// Bytes of `txq.front()` already written to the socket.
    tx_off: usize,
    /// Unsent bytes across the whole queue.
    txq_bytes: usize,
    /// Partial-frame reassembly buffer.
    rx_buf: Vec<u8>,
    /// Dialer: earliest time of the next dial. Acceptor (after a lost
    /// connection): deadline for the peer to come back before being
    /// declared dead.
    next_retry: f64,
    /// Dial attempts in the current outage.
    attempts: u32,
    /// Whether the injected first-dial failure already happened.
    injected: bool,
    /// Whether a connection to this peer ever succeeded.
    ever_connected: bool,
    /// Recycled frame buffers: flushed frames come back here and the
    /// next `send` encodes into one instead of allocating a fresh
    /// `Vec<u8>` per frame.
    free: Vec<Vec<u8>>,
}

/// Max recycled frame buffers retained per peer.
const FRAME_FREELIST: usize = 32;

struct RxLane<M> {
    q: Mutex<VecDeque<Envelope<M>>>,
    n: AtomicUsize,
}

impl<M> RxLane<M> {
    fn new() -> Self {
        RxLane {
            q: Mutex::new(VecDeque::new()),
            n: AtomicUsize::new(0),
        }
    }
}

struct WireInner<M, F: SockFamily> {
    my_rank: usize,
    ranks: usize,
    eps_per_rank: usize,
    opts: WireOpts,
    listener: F::Listener,
    addr: String,
    /// Accepted sockets whose 4-byte hello has not fully arrived yet.
    pending: Mutex<Vec<(F::Stream, Vec<u8>)>>,
    peers: Vec<Mutex<Peer<F::Stream>>>,
    /// Arrived packets per local endpoint, net and shmem path.
    rx_net: Vec<RxLane<M>>,
    rx_shm: Vec<RxLane<M>>,
    rx_total: AtomicUsize,
    dead: AtomicUsize,
    /// Peers currently in `Connected` state (the baseline the
    /// `wire_syscalls_saved` accounting subtracts touched peers from).
    connected: AtomicUsize,
    /// Sends discarded because the destination peer was already dead.
    tx_failed: AtomicUsize,
    /// Serializes socket pumping; contending pollers skip instead of
    /// queueing up behind the syscalls.
    pump: Mutex<()>,
    /// The epoll readiness reactor; `None` keeps the legacy full-scan
    /// pump (non-Linux, `MPFA_REACTOR=0`, or registration failure).
    reactor: Option<Reactor>,
    /// Peers with queued-but-unsent TX bytes awaiting a flush.
    tx_dirty: ReadySet,
    /// Peers needing connection attention: an initial or retried dial,
    /// or an acceptor-side grace deadline after a lost connection.
    conn_dirty: ReadySet,
}

impl<M, F: SockFamily> Drop for WireInner<M, F> {
    fn drop(&mut self) {
        F::cleanup(&self.addr);
    }
}

/// The generic socket transport. Cheap to clone (shared inner state);
/// see the module docs for framing, topology, and failure semantics.
pub struct WireTransport<M: FrameCodec, F: SockFamily> {
    inner: Arc<WireInner<M, F>>,
}

impl<M: FrameCodec, F: SockFamily> Clone for WireTransport<M, F> {
    fn clone(&self) -> Self {
        WireTransport {
            inner: self.inner.clone(),
        }
    }
}

impl<M: FrameCodec, F: SockFamily> WireTransport<M, F> {
    /// Build a transport for `my_rank` out of a pre-bound listener and
    /// the full peer address table (`peer_addrs[r]` is rank `r`'s data
    /// address; the entry for `my_rank` is ignored). `eps_per_rank` is
    /// the number of wire endpoints each rank owns (the MPI layer's
    /// `max_vcis`).
    pub fn new(
        bound: Bound<F>,
        my_rank: usize,
        peer_addrs: Vec<String>,
        eps_per_rank: usize,
        opts: WireOpts,
    ) -> WireTransport<M, F> {
        let ranks = peer_addrs.len();
        assert!(
            my_rank < ranks,
            "rank {my_rank} out of range for {ranks} ranks"
        );
        assert!(eps_per_rank > 0, "need at least one endpoint per rank");
        let peers = peer_addrs
            .into_iter()
            .enumerate()
            .map(|(r, addr)| {
                Mutex::new(Peer {
                    addr,
                    dialer: r < my_rank,
                    state: PeerState::Idle,
                    txq: VecDeque::new(),
                    tx_off: 0,
                    txq_bytes: 0,
                    rx_buf: Vec::new(),
                    next_retry: 0.0,
                    attempts: 0,
                    injected: false,
                    ever_connected: false,
                    free: Vec::new(),
                })
            })
            .collect();
        // Every peer this rank dials needs an initial connection pass;
        // acceptor-side peers get attention only on listener events.
        let conn_dirty = ReadySet::new(ranks);
        for r in 0..my_rank {
            conn_dirty.mark(r);
        }
        let reactor = if reactor_enabled() {
            F::listener_fd(&bound.listener).and_then(|fd| Reactor::new(ranks, fd))
        } else {
            None
        };
        WireTransport {
            inner: Arc::new(WireInner {
                my_rank,
                ranks,
                eps_per_rank,
                opts,
                listener: bound.listener,
                addr: bound.addr,
                pending: Mutex::new(Vec::new()),
                peers,
                rx_net: (0..eps_per_rank).map(|_| RxLane::new()).collect(),
                rx_shm: (0..eps_per_rank).map(|_| RxLane::new()).collect(),
                rx_total: AtomicUsize::new(0),
                dead: AtomicUsize::new(0),
                connected: AtomicUsize::new(0),
                tx_failed: AtomicUsize::new(0),
                pump: Mutex::new(()),
                reactor,
                tx_dirty: ReadySet::new(ranks),
                conn_dirty,
            }),
        }
    }

    /// This rank's concrete data address (what peers dial).
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// This transport's rank in the world.
    pub fn rank(&self) -> usize {
        self.inner.my_rank
    }

    /// Total queued-but-unsent TX bytes across all peers (framed bytes,
    /// headers included) — the quantity the soft backpressure cap in
    /// [`WireOpts::tx_backlog_soft`] is enforced against.
    pub fn queued_tx_bytes(&self) -> usize {
        (0..self.inner.ranks)
            .filter(|&r| r != self.inner.my_rank)
            .map(|r| self.inner.peers[r].lock().txq_bytes)
            .sum()
    }

    /// True when every peer connection is live.
    pub fn mesh_ready(&self) -> bool {
        (0..self.inner.ranks)
            .filter(|&r| r != self.inner.my_rank)
            .all(|r| matches!(self.inner.peers[r].lock().state, PeerState::Connected(_)))
    }

    /// Pump until the full mesh is connected, a peer dies, or
    /// `timeout_secs` passes.
    pub fn establish(&self, timeout_secs: f64) -> io::Result<()> {
        let deadline = wtime() + timeout_secs;
        loop {
            self.pump();
            if self.mesh_ready() {
                return Ok(());
            }
            if self.inner.dead.load(Ordering::Relaxed) > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "peer declared dead during mesh establishment",
                ));
            }
            if wtime() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "mesh not established within {timeout_secs}s (rank {})",
                        self.inner.my_rank
                    ),
                ));
            }
            std::thread::yield_now();
        }
    }

    fn local_ep(&self, ep: usize) -> usize {
        let base = self.inner.my_rank * self.inner.eps_per_rank;
        assert!(
            ep >= base && ep < base + self.inner.eps_per_rank,
            "endpoint {ep} does not belong to rank {} (eps/rank {})",
            self.inner.my_rank,
            self.inner.eps_per_rank
        );
        ep - base
    }

    fn lane(&self, local: usize, path: Path) -> &RxLane<M> {
        match path {
            Path::Net => &self.inner.rx_net[local],
            Path::Shmem => &self.inner.rx_shm[local],
        }
    }

    fn deliver(&self, env: Envelope<M>, path: Path) {
        let local = env.dst - self.inner.my_rank * self.inner.eps_per_rank;
        let lane = self.lane(local, path);
        lane.q.lock().push_back(env);
        lane.n.fetch_add(1, Ordering::Release);
        self.inner.rx_total.fetch_add(1, Ordering::Release);
    }

    /// One pump pass. Returns true if anything moved. Contending
    /// pumpers skip (return false).
    fn pump(&self) -> bool {
        let Some(_g) = self.inner.pump.try_lock() else {
            return false;
        };
        match &self.inner.reactor {
            Some(re) => self.pump_reactor(re),
            None => self.pump_scan(),
        }
    }

    /// Legacy full scan over listener + every peer: O(peers) socket
    /// syscalls per pass.
    fn pump_scan(&self) -> bool {
        let mut moved = self.accept_new().0;
        moved |= self.drive_pending();
        for r in 0..self.inner.ranks {
            if r != self.inner.my_rank {
                moved |= self.drive_peer(r);
            }
        }
        moved
    }

    /// Reactor-driven pass: only peers with published readiness,
    /// queued TX bytes, or connection attention are touched. Every
    /// connected peer *not* touched is a speculative poll saved.
    fn pump_reactor(&self, re: &Reactor) -> bool {
        let counters = mpfa_obs::global_counters();
        let sh = re.shared();
        let mut moved = false;
        let mut touched = 0usize;

        if sh.listener_ready.swap(false, Ordering::AcqRel) {
            let (m, saturated) = self.accept_new();
            moved |= m;
            if saturated {
                // The bounded accept loop stopped early. The ET edge is
                // spent, so re-raise the flag by hand or the remaining
                // backlog is stranded until the *next* dial.
                sh.listener_ready.store(true, Ordering::Release);
            }
        }
        if sh.pending_ready.swap(false, Ordering::AcqRel) {
            moved |= self.drive_pending();
        }

        let mut scratch = Vec::new();
        let taken = sh.ready.take_all(&mut scratch);
        if taken > 0 {
            counters
                .reactor_ready_pending
                .fetch_sub(taken as u64, Ordering::Relaxed);
        }
        for &r in &scratch {
            let mut p = self.inner.peers[r].lock();
            if !matches!(p.state, PeerState::Connected(_)) {
                continue;
            }
            touched += 1;
            moved |= self.flush(r, &mut p);
            let (m, drained) = self.read_socket(r, &mut p);
            moved |= m;
            if !drained && matches!(p.state, PeerState::Connected(_)) {
                // The bounded read stopped before WouldBlock: the ET
                // edge is consumed, so the readiness bit must come back
                // by hand — clearing it here would lose the wakeup.
                if sh.ready.mark(r) {
                    counters
                        .reactor_ready_pending
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        scratch.clear();
        self.inner.tx_dirty.take_all(&mut scratch);
        for &r in &scratch {
            let mut p = self.inner.peers[r].lock();
            if matches!(p.state, PeerState::Connected(_)) {
                touched += 1;
                moved |= self.flush(r, &mut p);
            }
            if p.txq_bytes > 0 && matches!(p.state, PeerState::Connected(_)) {
                // Socket buffer full: stay on the flush list. (A peer
                // that lost its connection gets the bit back when the
                // connection does — dial and promotion re-mark it.)
                self.inner.tx_dirty.mark(r);
            }
        }

        scratch.clear();
        self.inner.conn_dirty.take_all(&mut scratch);
        for &r in &scratch {
            moved |= self.drive_peer(r);
            if matches!(self.inner.peers[r].lock().state, PeerState::Idle) {
                // Still waiting on a retry timer or grace deadline:
                // keep the attention bit so time keeps being checked.
                self.inner.conn_dirty.mark(r);
            }
        }

        let connected = self.inner.connected.load(Ordering::Relaxed);
        let saved = connected.saturating_sub(touched);
        if saved > 0 {
            counters
                .wire_syscalls_saved
                .fetch_add(saved as u64, Ordering::Relaxed);
        }
        moved
    }

    /// Accept waiting connections (bounded per pass). Returns
    /// `(moved, saturated)`: `saturated` means the bound was hit with
    /// the backlog possibly non-empty.
    fn accept_new(&self) -> (bool, bool) {
        let mut moved = false;
        for _ in 0..32 {
            count_syscalls(1);
            match F::accept(&self.inner.listener) {
                Ok(Some(sock)) => {
                    if F::set_nonblocking(&sock, true).is_ok() {
                        if let (Some(re), Some(fd)) = (&self.inner.reactor, F::stream_fd(&sock)) {
                            re.add_pending(fd);
                        }
                        self.inner.pending.lock().push((sock, Vec::new()));
                        moved = true;
                    }
                }
                Ok(None) | Err(_) => return (moved, false),
            }
        }
        (moved, true)
    }

    /// Read hellos off accepted-but-unidentified sockets and promote
    /// them to peer connections.
    fn drive_pending(&self) -> bool {
        let mut moved = false;
        let mut pending = self.inner.pending.lock();
        let mut i = 0;
        while i < pending.len() {
            let (sock, hello) = &mut pending[i];
            let mut buf = [0u8; 4];
            let need = 4 - hello.len();
            count_syscalls(1);
            match sock.read(&mut buf[..need]) {
                Ok(0) => {
                    pending.swap_remove(i);
                    continue;
                }
                Ok(n) => {
                    hello.extend_from_slice(&buf[..n]);
                    moved = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    i += 1;
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    pending.swap_remove(i);
                    continue;
                }
            }
            if hello.len() < 4 {
                i += 1;
                continue;
            }
            let rank = u32::from_le_bytes(hello[..4].try_into().expect("4 bytes")) as usize;
            let (sock, _) = pending.swap_remove(i);
            // Only higher ranks dial us; anything else is a stray.
            if rank <= self.inner.my_rank || rank >= self.inner.ranks {
                continue;
            }
            let mut p = self.inner.peers[rank].lock();
            if matches!(p.state, PeerState::Dead) {
                continue;
            }
            // A reconnect replaces whatever was there; both sides'
            // partial frames from the old connection are void.
            p.rx_buf.clear();
            p.txq_bytes += p.tx_off;
            p.tx_off = 0;
            let was_connected = matches!(p.state, PeerState::Connected(_));
            let fd = F::stream_fd(&sock);
            p.state = PeerState::Connected(sock);
            p.attempts = 0;
            p.ever_connected = true;
            if !was_connected {
                self.inner.connected.fetch_add(1, Ordering::Relaxed);
            }
            self.inner.conn_dirty.take(rank);
            if p.txq_bytes > 0 {
                self.inner.tx_dirty.mark(rank);
            }
            if let (Some(re), Some(fd)) = (&self.inner.reactor, fd) {
                re.promote_pending(fd, rank);
                // Payload bytes may already sit behind the 4-byte hello
                // in the kernel buffer; the MOD above only reports
                // *future* edges, so raise the readiness bit by hand.
                if re.shared().ready.mark(rank) {
                    mpfa_obs::global_counters()
                        .reactor_ready_pending
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        moved
    }

    fn backoff(&self, attempts: u32) -> f64 {
        let exp = attempts.min(16);
        (self.inner.opts.retry_base * f64::from(1u32 << exp)).min(self.inner.opts.retry_max)
    }

    /// Record a failed dial; schedules a retry or declares the peer
    /// dead once the budget is spent.
    fn note_dial_failure(&self, r: usize, p: &mut Peer<F::Stream>) {
        p.attempts += 1;
        mpfa_obs::global_counters()
            .transport_reconnects
            .fetch_add(1, Ordering::Relaxed);
        if p.attempts > self.inner.opts.max_attempts {
            self.mark_dead(r, p);
        } else {
            p.next_retry = wtime() + self.backoff(p.attempts - 1);
        }
    }

    fn mark_dead(&self, r: usize, p: &mut Peer<F::Stream>) {
        if !matches!(p.state, PeerState::Dead) {
            if matches!(p.state, PeerState::Connected(_)) {
                self.inner.connected.fetch_sub(1, Ordering::Relaxed);
            }
            p.state = PeerState::Dead;
            p.txq.clear();
            p.tx_off = 0;
            p.txq_bytes = 0;
            p.rx_buf.clear();
            // A dead peer needs no further attention of any kind.
            // (Dropping the socket closed its fd, which also removed it
            // from the reactor's epoll set.)
            self.inner.conn_dirty.take(r);
            self.inner.tx_dirty.take(r);
            self.inner.dead.fetch_add(1, Ordering::Relaxed);
            mpfa_obs::global_counters()
                .transport_dead_peers
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A live connection broke: back to Idle. Dialers retry after
    /// backoff; acceptors give the peer a grace window to come back.
    fn disconnect(&self, r: usize, p: &mut Peer<F::Stream>) {
        if matches!(p.state, PeerState::Connected(_)) {
            self.inner.connected.fetch_sub(1, Ordering::Relaxed);
        }
        p.state = PeerState::Idle;
        p.rx_buf.clear();
        p.txq_bytes += p.tx_off;
        p.tx_off = 0;
        p.attempts = 0;
        // Both the dialer's retry timer and the acceptor's grace
        // deadline are checked on the connection-attention path.
        self.inner.conn_dirty.mark(r);
        let now = wtime();
        if p.dialer {
            mpfa_obs::global_counters()
                .transport_reconnects
                .fetch_add(1, Ordering::Relaxed);
            p.next_retry = now + self.inner.opts.retry_base;
        } else {
            // Patience roughly matching the dialer's full retry budget.
            let grace = self.inner.opts.retry_max * f64::from(self.inner.opts.max_attempts);
            p.next_retry = now + grace.max(self.inner.opts.retry_base);
        }
    }

    fn dial(&self, r: usize, p: &mut Peer<F::Stream>) -> bool {
        if self.inner.opts.inject_connect_fail && !p.injected {
            p.injected = true;
            self.note_dial_failure(r, p);
            return true;
        }
        count_syscalls(1);
        match F::connect(&p.addr, self.inner.opts.connect_timeout) {
            Ok(mut sock) => {
                let hello = (self.inner.my_rank as u32).to_le_bytes();
                count_syscalls(1);
                if sock.write_all(&hello).is_err() {
                    self.note_dial_failure(r, p);
                    return true;
                }
                if F::set_nonblocking(&sock, true).is_err() {
                    self.note_dial_failure(r, p);
                    return true;
                }
                p.rx_buf.clear();
                p.txq_bytes += p.tx_off;
                p.tx_off = 0;
                let fd = F::stream_fd(&sock);
                p.state = PeerState::Connected(sock);
                p.attempts = 0;
                p.ever_connected = true;
                self.inner.connected.fetch_add(1, Ordering::Relaxed);
                self.inner.conn_dirty.take(r);
                if p.txq_bytes > 0 {
                    self.inner.tx_dirty.mark(r);
                }
                if let (Some(re), Some(fd)) = (&self.inner.reactor, fd) {
                    re.add_peer(fd, r);
                    // ET registration reports an initial edge if the fd
                    // is already readable, so no bytes can slip into
                    // the connect-to-register window unnoticed.
                }
                true
            }
            Err(_) => {
                self.note_dial_failure(r, p);
                true
            }
        }
    }

    fn drive_peer(&self, r: usize) -> bool {
        let mut p = self.inner.peers[r].lock();
        match p.state {
            PeerState::Dead => false,
            PeerState::Idle => {
                let now = wtime();
                if p.dialer {
                    if now < p.next_retry {
                        false
                    } else {
                        self.dial(r, &mut p)
                    }
                } else {
                    // Acceptor: after a lost connection, wait out the
                    // grace window, then declare the peer dead.
                    if p.ever_connected && now >= p.next_retry {
                        self.mark_dead(r, &mut p);
                        true
                    } else {
                        false
                    }
                }
            }
            PeerState::Connected(_) => {
                let mut moved = self.flush(r, &mut p);
                moved |= self.read_socket(r, &mut p).0;
                moved
            }
        }
    }

    /// Write queued frames until the socket would block.
    fn flush(&self, r: usize, p: &mut Peer<F::Stream>) -> bool {
        let mut moved = false;
        while let Some(front) = p.txq.front() {
            let off = p.tx_off;
            let PeerState::Connected(sock) = &mut p.state else {
                break;
            };
            count_syscalls(1);
            let res = sock.write(&front[off..]);
            match res {
                Ok(0) => {
                    self.disconnect(r, p);
                    break;
                }
                Ok(n) => {
                    moved = true;
                    p.tx_off += n;
                    p.txq_bytes -= n;
                    mpfa_obs::global_counters().record_wire_tx(n as u64);
                    if p.tx_off == p.txq.front().map_or(0, |f| f.len()) {
                        if let Some(done) = p.txq.pop_front() {
                            if p.free.len() < FRAME_FREELIST {
                                p.free.push(done);
                            }
                        }
                        p.tx_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect(r, p);
                    break;
                }
            }
        }
        moved
    }

    /// Read until the socket would block (bounded per pass), parsing
    /// complete frames into the local RX lanes. Returns `(moved,
    /// drained)`: `drained` is false only when the per-pass bound was
    /// hit with the socket still possibly readable — under
    /// edge-triggered wakeups the caller must re-mark the peer's
    /// readiness bit or the remaining bytes are stranded.
    fn read_socket(&self, src_rank: usize, p: &mut Peer<F::Stream>) -> (bool, bool) {
        let mut moved = false;
        let mut buf = [0u8; 64 * 1024];
        for _ in 0..64 {
            let res = match &mut p.state {
                PeerState::Connected(sock) => {
                    count_syscalls(1);
                    sock.read(&mut buf)
                }
                _ => return (moved, true),
            };
            match res {
                Ok(0) => {
                    self.disconnect(src_rank, p);
                    return (moved, true);
                }
                Ok(n) => {
                    moved = true;
                    let counters = mpfa_obs::global_counters();
                    counters.record_wire_rx(n as u64);
                    // Reassembly copy: socket bytes land in the
                    // per-peer buffer before frames can be parsed out.
                    counters.record_bytes_copied(n as u64);
                    p.rx_buf.extend_from_slice(&buf[..n]);
                    self.parse_frames(src_rank, p);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (moved, true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.disconnect(src_rank, p);
                    return (moved, true);
                }
            }
        }
        (moved, false)
    }

    fn parse_frames(&self, src_rank: usize, p: &mut Peer<F::Stream>) {
        let mut pos = 0;
        while p.rx_buf.len() - pos >= FRAME_HEADER {
            let h = &p.rx_buf[pos..pos + FRAME_HEADER];
            let plen = u32::from_le_bytes(h[0..4].try_into().expect("4")) as usize;
            let src = u32::from_le_bytes(h[4..8].try_into().expect("4")) as usize;
            let dst = u32::from_le_bytes(h[8..12].try_into().expect("4")) as usize;
            let wire_bytes = u32::from_le_bytes(h[12..16].try_into().expect("4")) as usize;
            if p.rx_buf.len() - pos < FRAME_HEADER + plen {
                break;
            }
            let payload = &p.rx_buf[pos + FRAME_HEADER..pos + FRAME_HEADER + plen];
            pos += FRAME_HEADER + plen;
            let base = self.inner.my_rank * self.inner.eps_per_rank;
            assert!(
                dst >= base && dst < base + self.inner.eps_per_rank,
                "frame from rank {src_rank} addressed to foreign endpoint {dst}"
            );
            assert_eq!(
                src / self.inner.eps_per_rank,
                src_rank,
                "frame source endpoint {src} does not match connection rank {src_rank}"
            );
            // Materialize the payload out of the reassembly buffer (a
            // counted copy — the buffer is about to be drained) and
            // decode through the slice path so messages with byte
            // fields slice the view instead of copying again.
            mpfa_obs::global_counters().record_bytes_copied(plen as u64);
            let msg = M::decode_bytes(MpfaBytes::copy_from(payload)).unwrap_or_else(|| {
                panic!("undecodable {plen}-byte frame payload from rank {src_rank}")
            });
            self.deliver(
                Envelope {
                    src,
                    dst,
                    wire_bytes,
                    msg,
                },
                Path::Net,
            );
        }
        p.rx_buf.drain(..pos);
    }
}

impl<M: FrameCodec, F: SockFamily> Transport<M> for WireTransport<M, F> {
    fn kind(&self) -> TransportKind {
        F::KIND
    }

    fn endpoints(&self) -> usize {
        self.inner.ranks * self.inner.eps_per_rank
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        assert!(
            dst_ep < self.endpoints(),
            "destination endpoint {dst_ep} out of range"
        );
        self.local_ep(src_ep); // asserts src ownership
        let dst_rank = dst_ep / self.inner.eps_per_rank;
        if dst_rank == self.inner.my_rank {
            // Same-process loopback: the intra-rank "shared memory"
            // path, mirroring the sim fabric's same-node behaviour.
            mpfa_obs::global_counters().record_packet(mpfa_obs::PathKind::Shmem, wire_bytes as u64);
            self.deliver(
                Envelope {
                    src: src_ep,
                    dst: dst_ep,
                    wire_bytes,
                    msg,
                },
                Path::Shmem,
            );
            return TxHandle::immediate();
        }

        let counters = mpfa_obs::global_counters();
        counters.record_packet(mpfa_obs::PathKind::Net, wire_bytes as u64);
        let mut p = self.inner.peers[dst_rank].lock();
        if matches!(p.state, PeerState::Dead) {
            // Unreachable peer: the frame is discarded *and the failure
            // is reported* — a failed TxHandle plus the failed-sends
            // counter, so callers fail the operation immediately instead
            // of queueing into a FIFO that will never drain.
            drop(p);
            self.inner.tx_failed.fetch_add(1, Ordering::Relaxed);
            return TxHandle::failed();
        }
        // Encode into a recycled frame buffer; flushed frames return to
        // the peer's free list, so the steady-state TX path allocates
        // nothing. The staging encode is a counted payload copy.
        let mut frame = p.free.pop().unwrap_or_default();
        frame.clear();
        frame.resize(FRAME_HEADER, 0);
        msg.encode(&mut frame);
        let plen = frame.len() - FRAME_HEADER;
        assert!(plen <= u32::MAX as usize, "frame payload too large");
        counters.record_bytes_copied(plen as u64);
        frame[0..4].copy_from_slice(&(plen as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&(src_ep as u32).to_le_bytes());
        frame[8..12].copy_from_slice(&(dst_ep as u32).to_le_bytes());
        frame[12..16].copy_from_slice(&(wire_bytes as u32).to_le_bytes());
        p.txq_bytes += frame.len();
        p.txq.push_back(frame);
        if matches!(p.state, PeerState::Connected(_)) {
            // Opportunistic flush, with bounded extra effort when the
            // backlog is over the soft cap (backpressure without ever
            // blocking indefinitely).
            self.flush(dst_rank, &mut p);
            let mut spins = 0;
            while p.txq_bytes > self.inner.opts.tx_backlog_soft
                && matches!(p.state, PeerState::Connected(_))
                && spins < 1000
            {
                spins += 1;
                std::thread::yield_now();
                self.flush(dst_rank, &mut p);
            }
        }
        if p.txq_bytes > 0 {
            // Leftover bytes the pump must flush: put the peer on the
            // reactor's TX attention list so a pass without inbound
            // readiness still writes them out.
            self.inner.tx_dirty.mark(dst_rank);
        }
        TxHandle::immediate()
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        let local = self.local_ep(ep);
        let lane = self.lane(local, path);
        if lane.n.load(Ordering::Acquire) == 0 {
            return 0;
        }
        let mut q = lane.q.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        drop(q);
        if n > 0 {
            lane.n.fetch_sub(n, Ordering::Release);
            self.inner.rx_total.fetch_sub(n, Ordering::Release);
        }
        n
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        let local = self.local_ep(ep);
        self.lane(local, path).n.load(Ordering::Acquire)
    }

    fn progress(&self) -> bool {
        self.pump()
    }

    fn external_work(&self) -> bool {
        if self.inner.rx_total.load(Ordering::Acquire) > 0 {
            return true;
        }
        match &self.inner.reactor {
            // Reactor path: work exists only when something actually
            // signalled — a published readiness bit, a listener or
            // hello event, queued TX bytes, or a pending (re)connect.
            // An idle world reports no work instead of "some peer is
            // alive, better keep polling".
            Some(re) => {
                let sh = re.shared();
                sh.ready.any()
                    || sh.listener_ready.load(Ordering::Acquire)
                    || sh.pending_ready.load(Ordering::Acquire)
                    || self.inner.tx_dirty.any()
                    || self.inner.conn_dirty.any()
            }
            // Legacy scan: bytes may be sitting in kernel buffers as
            // long as any peer is (or may come back) alive.
            None => {
                self.inner.ranks > 1
                    && self.inner.dead.load(Ordering::Relaxed) + 1 < self.inner.ranks
            }
        }
    }

    fn peer_alive(&self, rank: usize) -> bool {
        rank == self.inner.my_rank
            || !matches!(self.inner.peers[rank].lock().state, PeerState::Dead)
    }

    fn dead_peers(&self) -> usize {
        self.inner.dead.load(Ordering::Relaxed)
    }

    fn failed_sends(&self) -> usize {
        self.inner.tx_failed.load(Ordering::Relaxed)
    }

    fn kill_peer(&self, rank: usize) -> bool {
        if rank == self.inner.my_rank || rank >= self.inner.ranks {
            return false;
        }
        let mut p = self.inner.peers[rank].lock();
        self.mark_dead(rank, &mut p);
        true
    }
}

static MESH_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Hint address for rank `r`'s data listener under `kind`.
fn mesh_hint(kind: TransportKind, dir_tag: usize, r: usize) -> String {
    match kind {
        TransportKind::Tcp => "127.0.0.1:0".to_string(),
        TransportKind::Uds => {
            let dir =
                std::env::temp_dir().join(format!("mpfa-mesh-{}-{}", std::process::id(), dir_tag));
            let _ = std::fs::create_dir_all(&dir);
            dir.join(format!("ep{r}.sock"))
                .to_string_lossy()
                .into_owned()
        }
        TransportKind::Sim => unreachable!("sim needs no socket address"),
        TransportKind::Shm => unreachable!("shm builds its own segment paths"),
    }
}

fn mesh_family<M: FrameCodec, F: SockFamily>(
    ranks: usize,
    eps_per_rank: usize,
    opts: WireOpts,
    dir_tag: usize,
) -> io::Result<Vec<Arc<dyn Transport<M>>>> {
    let bounds: Vec<Bound<F>> = (0..ranks)
        .map(|r| Bound::bind(&mesh_hint(F::KIND, dir_tag, r)))
        .collect::<io::Result<_>>()?;
    let table: Vec<String> = bounds.iter().map(|b| b.addr.clone()).collect();
    let transports: Vec<WireTransport<M, F>> = bounds
        .into_iter()
        .enumerate()
        .map(|(r, b)| WireTransport::new(b, r, table.clone(), eps_per_rank, opts))
        .collect();
    // Round-robin pumping from one thread until the full mesh is up
    // (every pump is nonblocking, so no deadlock).
    let deadline = wtime() + 30.0;
    loop {
        let mut ready = true;
        for t in &transports {
            t.pump();
            ready &= t.mesh_ready();
        }
        if ready {
            break;
        }
        if transports.iter().any(|t| t.dead_peers() > 0) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "peer declared dead during loopback mesh establishment",
            ));
        }
        if wtime() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "loopback mesh not established within 30s",
            ));
        }
        std::thread::yield_now();
    }
    Ok(transports
        .into_iter()
        .map(|t| Arc::new(t) as Arc<dyn Transport<M>>)
        .collect())
}

/// Build a fully-connected in-process mesh of `ranks` transports of
/// `kind`, one per rank, all inside the current process — the harness
/// for differential tests and benchmarks that want real sockets without
/// spawning OS processes. For [`TransportKind::Sim`] every rank shares
/// one instant fabric (laid out like the MPI world: `eps_per_rank`
/// endpoints per rank, same-rank endpoints on one node).
pub fn loopback_mesh<M: FrameCodec>(
    kind: TransportKind,
    ranks: usize,
    eps_per_rank: usize,
    opts: WireOpts,
) -> io::Result<Vec<Arc<dyn Transport<M>>>> {
    assert!(ranks > 0 && eps_per_rank > 0);
    let dir_tag = MESH_SEQ.fetch_add(1, Ordering::Relaxed);
    match kind {
        TransportKind::Sim => {
            let fabric: mpfa_fabric::Fabric<M> = mpfa_fabric::Fabric::new(
                mpfa_fabric::FabricConfig::instant_nodes(ranks * eps_per_rank, eps_per_rank),
            );
            // Per-rank views over the shared fabric, so the chaos kill
            // switch has a rank to attribute deaths to (a bare fabric
            // has no failure notion).
            Ok(crate::sim::sim_rank_views(fabric, ranks, eps_per_rank))
        }
        TransportKind::Tcp => {
            mesh_family::<M, crate::tcp::TcpFamily>(ranks, eps_per_rank, opts, dir_tag)
        }
        #[cfg(unix)]
        TransportKind::Uds => {
            mesh_family::<M, crate::uds::UdsFamily>(ranks, eps_per_rank, opts, dir_tag)
        }
        #[cfg(not(unix))]
        TransportKind::Uds => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix domain sockets are not available on this platform",
        )),
        #[cfg(unix)]
        TransportKind::Shm => crate::shm::shm_mesh(ranks, eps_per_rank, opts, dir_tag),
        #[cfg(not(unix))]
        TransportKind::Shm => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments are not available on this platform",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Msg = Vec<u8>;

    fn fast_opts() -> WireOpts {
        WireOpts {
            retry_base: 1e-4,
            retry_max: 2e-3,
            max_attempts: 5,
            ..WireOpts::default()
        }
    }

    fn drain(t: &Arc<dyn Transport<Msg>>, ep: usize, want: usize) -> Vec<Envelope<Msg>> {
        let mut out = Vec::new();
        let deadline = wtime() + 10.0;
        while out.len() < want {
            t.progress();
            t.poll(ep, Path::Net, usize::MAX, &mut out);
            assert!(
                wtime() < deadline,
                "timed out: {}/{want} packets",
                out.len()
            );
        }
        out
    }

    #[test]
    fn tcp_pair_roundtrip_fifo() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 1, WireOpts::default()).unwrap();
        assert_eq!(mesh[0].kind(), TransportKind::Tcp);
        assert_eq!(mesh[0].endpoints(), 2);
        for i in 0..50u8 {
            mesh[0].send(0, 1, vec![i; (i as usize % 7) + 1], i as usize);
        }
        let got = drain(&mesh[1], 1, 50);
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.src, 0);
            assert_eq!(env.dst, 1);
            assert_eq!(env.wire_bytes, i);
            assert_eq!(env.msg, vec![i as u8; (i % 7) + 1], "FIFO broken at {i}");
        }
        // Reverse direction too.
        mesh[1].send(1, 0, b"pong".to_vec(), 4);
        let got = drain(&mesh[0], 0, 1);
        assert_eq!(got[0].msg, b"pong".to_vec());
    }

    #[test]
    fn external_work_tracks_wire_activity() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 1, WireOpts::default()).unwrap();
        mesh[0].send(0, 1, vec![7u8; 16], 16);
        // The receiver must come to report work without being polled
        // for packets first — that is exactly the signal the progress
        // engine's has_work hook relies on.
        let deadline = wtime() + 10.0;
        while !mesh[1].external_work() {
            mesh[1].progress();
            assert!(wtime() < deadline, "receiver never reported work");
        }
        let got = drain(&mesh[1], 1, 1);
        assert_eq!(got[0].msg, vec![7u8; 16]);
        // Once drained and idle, a reactor-backed transport settles to
        // "no work" instead of demanding speculative polls forever;
        // the legacy scan path keeps reporting work while peers live.
        if reactor_enabled() {
            let deadline = wtime() + 10.0;
            while mesh[1].external_work() {
                mesh[1].progress();
                let mut sink = Vec::new();
                mesh[1].poll(1, Path::Net, usize::MAX, &mut sink);
                assert!(sink.is_empty(), "unexpected extra packet");
                assert!(wtime() < deadline, "idle transport still reports work");
            }
        } else {
            assert!(mesh[1].external_work());
        }
    }

    #[test]
    fn large_frames_cross_partial_reads() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 1, WireOpts::default()).unwrap();
        // Several frames far larger than one read() buffer, filled with
        // a position-dependent pattern to catch any reassembly slip.
        for k in 0..4u64 {
            let big: Vec<u8> = (0..300_000u64).map(|i| ((i * 7 + k) % 251) as u8).collect();
            mesh[0].send(0, 1, big, 300_000);
        }
        let got = drain(&mesh[1], 1, 4);
        for (k, env) in got.iter().enumerate() {
            assert_eq!(env.msg.len(), 300_000);
            for (i, &b) in env.msg.iter().enumerate() {
                assert_eq!(
                    b,
                    ((i as u64 * 7 + k as u64) % 251) as u8,
                    "byte {i} of frame {k}"
                );
            }
        }
    }

    #[test]
    fn same_rank_loopback_uses_shmem_path() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 2, WireOpts::default()).unwrap();
        // Rank 0 owns endpoints 0 and 1; a send between them stays local.
        mesh[0].send(0, 1, b"local".to_vec(), 5);
        assert_eq!(mesh[0].queued(1, Path::Shmem), 1);
        assert_eq!(mesh[0].queued(1, Path::Net), 0);
        let mut out = Vec::new();
        assert_eq!(mesh[0].poll(1, Path::Shmem, 16, &mut out), 1);
        assert_eq!(out[0].msg, b"local".to_vec());
    }

    #[test]
    fn injected_connect_failure_retries_and_recovers() {
        let before = mpfa_obs::global_counters()
            .transport_reconnects
            .load(Ordering::Relaxed);
        let opts = WireOpts {
            inject_connect_fail: true,
            ..fast_opts()
        };
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 3, 1, opts).unwrap();
        let after = mpfa_obs::global_counters()
            .transport_reconnects
            .load(Ordering::Relaxed);
        // Ranks 1 and 2 dial rank 0, rank 2 dials rank 1: three injected
        // failures, three retries.
        assert!(
            after >= before + 3,
            "expected >=3 reconnects, got {}",
            after - before
        );
        mesh[2].send(2, 0, b"ok".to_vec(), 2);
        let got = drain(&mesh[0], 0, 1);
        assert_eq!(got[0].msg, b"ok".to_vec());
        assert_eq!(mesh[0].dead_peers(), 0);
    }

    #[test]
    fn unreachable_peer_goes_dead_after_budget() {
        // Rank 1 dials rank 0. Kill rank 0 entirely (listener closes),
        // then watch rank 1 burn its reconnect budget.
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 1, fast_opts()).unwrap();
        let t1 = mesh[1].clone();
        drop(mesh); // rank 0's transport (and listener) are gone
        t1.send(1, 0, b"into the void".to_vec(), 13);
        let deadline = wtime() + 10.0;
        while t1.dead_peers() == 0 {
            t1.progress();
            assert!(wtime() < deadline, "peer never declared dead");
            std::thread::yield_now();
        }
        assert!(!t1.peer_alive(0));
        assert!(t1.peer_alive(1));
        // Sends to a dead peer are dropped, not hoarded — and the drop
        // is reported, not silent: a failed handle plus the counter.
        let before = t1.failed_sends();
        let tx = t1.send(1, 0, b"more".to_vec(), 4);
        assert!(tx.is_failed());
        assert!(tx.is_done(), "failed handles must not hang waiters");
        assert_eq!(t1.failed_sends(), before + 1);
        assert_eq!(t1.dead_peers(), 1);
    }

    #[test]
    fn kill_peer_severs_immediately() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 3, 1, fast_opts()).unwrap();
        assert!(mesh[0].peer_alive(2));
        // No budget to burn: the kill switch declares rank 2 dead now.
        assert!(mesh[0].kill_peer(2));
        assert!(mesh[1].kill_peer(2));
        assert!(!mesh[0].kill_peer(0), "cannot kill self");
        assert!(!mesh[0].peer_alive(2));
        assert!(!mesh[1].peer_alive(2));
        assert_eq!(mesh[0].dead_peers(), 1);
        // Survivors still talk to each other.
        mesh[0].send(0, 1, b"alive".to_vec(), 5);
        let got = drain(&mesh[1], 1, 1);
        assert_eq!(got[0].msg, b"alive".to_vec());
        // Sends to the victim fail fast.
        assert!(mesh[0].send(0, 2, b"late".to_vec(), 4).is_failed());
    }

    #[test]
    fn sim_mesh_kill_matches_wire_semantics() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Sim, 3, 1, WireOpts::default()).unwrap();
        assert_eq!(mesh[0].kind(), TransportKind::Sim);
        assert!(mesh[0].peer_alive(2));
        assert_eq!(mesh[0].dead_peers(), 0);
        crate::mesh_kill(&mesh, 2);
        assert!(!mesh[0].peer_alive(2));
        assert!(!mesh[1].peer_alive(2));
        assert_eq!(mesh[0].dead_peers(), 1);
        assert_eq!(mesh[1].dead_peers(), 1);
        // The victim's own view does not count itself dead.
        assert_eq!(mesh[2].dead_peers(), 0);
        // Survivor traffic flows; victim traffic is refused both ways.
        mesh[0].send(0, 1, b"ok".to_vec(), 2);
        let mut out = Vec::new();
        assert_eq!(mesh[1].poll(1, Path::Net, 16, &mut out), 1);
        assert!(mesh[0].send(0, 2, b"x".to_vec(), 1).is_failed());
        assert!(mesh[2].send(2, 0, b"y".to_vec(), 1).is_failed());
        assert_eq!(mesh[0].failed_sends(), 1);
    }

    #[test]
    fn queued_bytes_backpressure_accounting_stays_correct() {
        // Phase 1: a dialer whose peer is never reachable and whose
        // transport is never pumped keeps every frame queued, so the
        // accounting must equal the exact framed byte total.
        let bound = Bound::<crate::tcp::TcpFamily>::bind("127.0.0.1:0").unwrap();
        let own = bound.addr.clone();
        let t: WireTransport<Msg, crate::tcp::TcpFamily> = WireTransport::new(
            bound,
            1,
            vec!["127.0.0.1:9".to_string(), own],
            1,
            fast_opts(),
        );
        let mut expect = 0usize;
        for i in 0..10usize {
            t.send(1, 0, vec![0xCD; 100 + i], 100 + i);
            expect += FRAME_HEADER + 100 + i;
        }
        assert_eq!(t.queued_tx_bytes(), expect, "queued accounting drifted");

        // Phase 2: on a live pair the accounting returns to exactly
        // zero once everything drains (recycled buffers, partial
        // writes, and reconnect bookkeeping must not leak bytes).
        let b0 = Bound::<crate::tcp::TcpFamily>::bind("127.0.0.1:0").unwrap();
        let b1 = Bound::<crate::tcp::TcpFamily>::bind("127.0.0.1:0").unwrap();
        let table = vec![b0.addr.clone(), b1.addr.clone()];
        let t0: WireTransport<Msg, crate::tcp::TcpFamily> =
            WireTransport::new(b0, 0, table.clone(), 1, WireOpts::default());
        let t1: WireTransport<Msg, crate::tcp::TcpFamily> =
            WireTransport::new(b1, 1, table, 1, WireOpts::default());
        let deadline = wtime() + 10.0;
        while !(t0.mesh_ready() && t1.mesh_ready()) {
            t0.pump();
            t1.pump();
            assert!(wtime() < deadline, "pair never connected");
        }
        for _ in 0..20 {
            t1.send(1, 0, vec![7u8; 5000], 5000);
        }
        let mut out = Vec::new();
        while out.len() < 20 {
            t0.pump();
            t1.pump();
            t0.poll(0, Path::Net, usize::MAX, &mut out);
            assert!(wtime() < deadline, "frames never arrived");
        }
        while t1.queued_tx_bytes() > 0 {
            t1.pump();
            assert!(wtime() < deadline, "queue never drained to zero");
        }
        assert_eq!(t1.queued_tx_bytes(), 0);
        // Satellite check: flushed frames were recycled, so the next
        // send encodes into a reused buffer instead of allocating.
        assert!(
            !t1.inner.peers[0].lock().free.is_empty(),
            "flushed frames should land on the free list"
        );
    }

    #[test]
    fn foreign_endpoint_poll_panics() {
        let mesh = loopback_mesh::<Msg>(TransportKind::Tcp, 2, 1, WireOpts::default()).unwrap();
        let t0 = mesh[0].clone();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Vec::new();
            t0.poll(1, Path::Net, 1, &mut out); // ep 1 belongs to rank 1
        }));
        assert!(err.is_err());
    }
}

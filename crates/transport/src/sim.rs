//! The simulated backend: `mpfa-fabric` viewed through the
//! [`Transport`] trait.
//!
//! Nothing is added or reinterpreted — endpoints map 1:1 onto fabric
//! ranks, both delivery paths pass through, and the timed-delivery /
//! per-channel-FIFO semantics are exactly the fabric's own. The blanket
//! impl below is the "extract the endpoint interface into a trait" step
//! of the refactor: a bare [`Fabric`] *is* a transport.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::wtime;
use mpfa_fabric::{Envelope, Fabric, Path, TxHandle};

use crate::{Transport, TransportKind};

impl<M: Send + 'static> Transport<M> for Fabric<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn endpoints(&self) -> usize {
        self.config().ranks
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        Fabric::send(self, src_ep, dst_ep, msg, wire_bytes)
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.poll_batch(ep, path, max, out)
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        Fabric::queued(self, ep, path)
    }
}

/// A named wrapper around a [`Fabric`] for call sites that want to talk
/// about "the sim transport" rather than the raw fabric. It adds
/// nothing; it forwards.
pub struct SimTransport<M> {
    fabric: Fabric<M>,
}

impl<M: Send + 'static> SimTransport<M> {
    /// Wrap an existing fabric.
    pub fn new(fabric: Fabric<M>) -> SimTransport<M> {
        SimTransport { fabric }
    }

    /// The wrapped fabric.
    pub fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }
}

impl<M: Send + 'static> Transport<M> for SimTransport<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn endpoints(&self) -> usize {
        self.fabric.config().ranks
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        Fabric::send(&self.fabric, src_ep, dst_ep, msg, wire_bytes)
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.fabric.poll_batch(ep, path, max, out)
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        Fabric::queued(&self.fabric, ep, path)
    }
}

/// Mesh-wide failure state shared by every rank's [`SimRankTransport`]
/// view of one fabric: which ranks have been "killed" by the chaos
/// harness. A process death is a global fact, so one board serves the
/// whole mesh — each rank's view just excludes itself when counting.
struct KillBoard {
    dead: Mutex<HashSet<usize>>,
    /// Kills scheduled for a future process-clock instant, as
    /// `(f64::to_bits(due), victim)`. Reaped lazily on every liveness
    /// observation; under virtual time this makes a death land at an
    /// exact simulated instant, replayable from the schedule seed.
    scheduled: Mutex<Vec<(u64, usize)>>,
}

impl KillBoard {
    /// Move every scheduled kill whose due time has passed into the dead
    /// set. Returns how many ranks newly died.
    fn reap(&self, now: f64) -> usize {
        // Fast path: nothing scheduled (the common case outside chaos
        // scenarios pays one uncontended lock, no allocation).
        let due: Vec<usize> = {
            let mut sched = self.scheduled.lock();
            if sched.is_empty() {
                return 0;
            }
            let mut due = Vec::new();
            sched.retain(|&(at_bits, victim)| {
                if f64::from_bits(at_bits) <= now {
                    due.push(victim);
                    false
                } else {
                    true
                }
            });
            due
        };
        let mut newly = 0;
        if !due.is_empty() {
            let mut dead = self.dead.lock();
            for victim in due {
                if dead.insert(victim) {
                    newly += 1;
                    mpfa_obs::global_counters()
                        .transport_dead_peers
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        newly
    }
}

/// One rank's view of a shared simulated fabric, with a kill switch.
///
/// The bare fabric has no notion of failure — its peers are always
/// alive. Chaos tests need the *same* kill schedule to produce the same
/// `peer_alive`/`dead_peers` outcomes over sim as over the wire
/// backends, so the in-process mesh hands each rank this wrapper:
/// sends to (or from) a killed rank are discarded with a failed
/// [`TxHandle`], exactly like a wire send to a dead peer.
pub struct SimRankTransport<M> {
    fabric: Fabric<M>,
    my_rank: usize,
    eps_per_rank: usize,
    board: Arc<KillBoard>,
    tx_failed: AtomicUsize,
}

impl<M: Send + 'static> SimRankTransport<M> {
    fn ranks(&self) -> usize {
        self.fabric.config().ranks / self.eps_per_rank
    }
}

/// Build per-rank killable views of one shared instant fabric — the sim
/// arm of [`crate::loopback_mesh`].
pub fn sim_rank_views<M: Send + 'static>(
    fabric: Fabric<M>,
    ranks: usize,
    eps_per_rank: usize,
) -> Vec<Arc<dyn Transport<M>>> {
    let board = Arc::new(KillBoard {
        dead: Mutex::new(HashSet::new()),
        scheduled: Mutex::new(Vec::new()),
    });
    (0..ranks)
        .map(|r| {
            Arc::new(SimRankTransport {
                fabric: fabric.clone(),
                my_rank: r,
                eps_per_rank,
                board: board.clone(),
                tx_failed: AtomicUsize::new(0),
            }) as Arc<dyn Transport<M>>
        })
        .collect()
}

impl<M: Send + 'static> Transport<M> for SimRankTransport<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn endpoints(&self) -> usize {
        self.fabric.config().ranks
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        self.board.reap(wtime());
        let dst_rank = dst_ep / self.eps_per_rank;
        {
            let dead = self.board.dead.lock();
            if dead.contains(&dst_rank) || dead.contains(&self.my_rank) {
                self.tx_failed.fetch_add(1, Ordering::Relaxed);
                return TxHandle::failed();
            }
        }
        Fabric::send(&self.fabric, src_ep, dst_ep, msg, wire_bytes)
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.fabric.poll_batch(ep, path, max, out)
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        Fabric::queued(&self.fabric, ep, path)
    }

    fn peer_alive(&self, rank: usize) -> bool {
        self.board.reap(wtime());
        rank == self.my_rank || !self.board.dead.lock().contains(&rank)
    }

    fn dead_peers(&self) -> usize {
        self.board.reap(wtime());
        self.board
            .dead
            .lock()
            .iter()
            .filter(|&&r| r != self.my_rank)
            .count()
    }

    fn failed_sends(&self) -> usize {
        self.tx_failed.load(Ordering::Relaxed)
    }

    fn kill_peer(&self, rank: usize) -> bool {
        if rank == self.my_rank || rank >= self.ranks() {
            return false;
        }
        if self.board.dead.lock().insert(rank) {
            mpfa_obs::global_counters()
                .transport_dead_peers
                .fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    fn schedule_kill(&self, rank: usize, at: f64) -> bool {
        if rank == self.my_rank || rank >= self.ranks() {
            return false;
        }
        // The board is mesh-wide, so one schedule entry serves every
        // rank's view; don't double-book the same (time, victim).
        let mut sched = self.board.scheduled.lock();
        let key = (at.to_bits(), rank);
        if !sched.contains(&key) {
            sched.push(key);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_fabric::FabricConfig;
    use std::sync::Arc;

    #[test]
    fn fabric_is_a_transport() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        let t: Arc<dyn Transport<u32>> = Arc::new(f.clone());
        assert_eq!(t.kind(), TransportKind::Sim);
        assert_eq!(t.endpoints(), 2);
        assert!(!t.external_work());
        assert!(t.peer_alive(1));
        assert_eq!(t.dead_peers(), 0);

        let tx = t.send(0, 1, 7, 8);
        assert!(tx.is_done());
        let mut out = Vec::new();
        assert_eq!(t.poll(1, Path::Net, 16, &mut out), 1);
        assert_eq!(out[0].msg, 7);
        assert_eq!(out[0].src, 0);
        // Visible through the fabric handle too: same queues.
        assert_eq!(Transport::<u32>::queued(&f, 1, Path::Net), 0);
    }

    #[test]
    fn scheduled_kill_fires_when_clock_reaches_it() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant(3));
        let mesh = sim_rank_views(f, 3, 1);
        let far_future = wtime() + 3600.0;
        assert!(crate::mesh_schedule_kill(&mesh, 2, far_future));
        // Not due yet: everyone still alive, sends still succeed.
        assert!(mesh[0].peer_alive(2));
        assert_eq!(mesh[0].dead_peers(), 0);
        assert!(!mesh[0].send(0, 2, 1, 0).is_failed());
        // A schedule already in the past is reaped at the next
        // observation.
        assert!(crate::mesh_schedule_kill(&mesh, 1, wtime() - 1.0));
        assert!(!mesh[0].peer_alive(1));
        assert_eq!(mesh[0].dead_peers(), 1);
        assert!(mesh[0].send(0, 1, 1, 0).is_failed());
        // The victim's own view never schedules against itself.
        assert!(mesh[1].peer_alive(1));
    }

    #[test]
    fn schedule_kill_rejects_self_and_out_of_range() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant(2));
        let mesh = sim_rank_views(f, 2, 1);
        assert!(!mesh[0].schedule_kill(0, 0.0));
        assert!(!mesh[0].schedule_kill(7, 0.0));
    }

    #[test]
    fn sim_wrapper_forwards() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant_nodes(4, 2));
        let t = SimTransport::new(f);
        t.send(0, 1, 9, 0);
        let mut out = Vec::new();
        // Same node: the fabric's shmem path still applies.
        assert_eq!(t.poll(1, Path::Shmem, 16, &mut out), 1);
        assert_eq!(t.poll(1, Path::Net, 16, &mut out), 0);
        assert_eq!(t.fabric().packets_shmem(), 1);
    }
}

//! The simulated backend: `mpfa-fabric` viewed through the
//! [`Transport`] trait.
//!
//! Nothing is added or reinterpreted — endpoints map 1:1 onto fabric
//! ranks, both delivery paths pass through, and the timed-delivery /
//! per-channel-FIFO semantics are exactly the fabric's own. The blanket
//! impl below is the "extract the endpoint interface into a trait" step
//! of the refactor: a bare [`Fabric`] *is* a transport.

use mpfa_fabric::{Envelope, Fabric, Path, TxHandle};

use crate::{Transport, TransportKind};

impl<M: Send + 'static> Transport<M> for Fabric<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn endpoints(&self) -> usize {
        self.config().ranks
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        Fabric::send(self, src_ep, dst_ep, msg, wire_bytes)
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.poll_batch(ep, path, max, out)
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        Fabric::queued(self, ep, path)
    }
}

/// A named wrapper around a [`Fabric`] for call sites that want to talk
/// about "the sim transport" rather than the raw fabric. It adds
/// nothing; it forwards.
pub struct SimTransport<M> {
    fabric: Fabric<M>,
}

impl<M: Send + 'static> SimTransport<M> {
    /// Wrap an existing fabric.
    pub fn new(fabric: Fabric<M>) -> SimTransport<M> {
        SimTransport { fabric }
    }

    /// The wrapped fabric.
    pub fn fabric(&self) -> &Fabric<M> {
        &self.fabric
    }
}

impl<M: Send + 'static> Transport<M> for SimTransport<M> {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn endpoints(&self) -> usize {
        self.fabric.config().ranks
    }

    fn send(&self, src_ep: usize, dst_ep: usize, msg: M, wire_bytes: usize) -> TxHandle {
        Fabric::send(&self.fabric, src_ep, dst_ep, msg, wire_bytes)
    }

    fn poll(&self, ep: usize, path: Path, max: usize, out: &mut Vec<Envelope<M>>) -> usize {
        self.fabric.poll_batch(ep, path, max, out)
    }

    fn queued(&self, ep: usize, path: Path) -> usize {
        Fabric::queued(&self.fabric, ep, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_fabric::FabricConfig;
    use std::sync::Arc;

    #[test]
    fn fabric_is_a_transport() {
        let f: Fabric<u32> = Fabric::new(FabricConfig::instant(2));
        let t: Arc<dyn Transport<u32>> = Arc::new(f.clone());
        assert_eq!(t.kind(), TransportKind::Sim);
        assert_eq!(t.endpoints(), 2);
        assert!(!t.external_work());
        assert!(t.peer_alive(1));
        assert_eq!(t.dead_peers(), 0);

        let tx = t.send(0, 1, 7, 8);
        assert!(tx.is_done());
        let mut out = Vec::new();
        assert_eq!(t.poll(1, Path::Net, 16, &mut out), 1);
        assert_eq!(out[0].msg, 7);
        assert_eq!(out[0].src, 0);
        // Visible through the fabric handle too: same queues.
        assert_eq!(Transport::<u32>::queued(&f, 1, Path::Net), 0);
    }

    #[test]
    fn sim_wrapper_forwards() {
        let f: Fabric<u8> = Fabric::new(FabricConfig::instant_nodes(4, 2));
        let t = SimTransport::new(f);
        t.send(0, 1, 9, 0);
        let mut out = Vec::new();
        // Same node: the fabric's shmem path still applies.
        assert_eq!(t.poll(1, Path::Shmem, 16, &mut out), 1);
        assert_eq!(t.poll(1, Path::Net, 16, &mut out), 0);
        assert_eq!(t.fabric().packets_shmem(), 1);
    }
}

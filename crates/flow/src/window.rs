//! Multi-rank windowed aggregation on flows — the canonical pipeline.
//!
//! Every rank plays three roles at once over three flows:
//!
//! 1. **producer** — generates timestamped events (deterministically,
//!    from the config seed) and shuffles them **by key** to aggregators
//!    on the *events* flow;
//! 2. **aggregator** — reduces the events it receives into per-window
//!    partial sums, and forwards each window's partial to the window's
//!    *owner* on the *partials* flow **when the events frontier passes
//!    the window close** (a frontier callback, not a poll);
//! 3. **owner** — combines the partials for its windows (`owner(w) = w
//!    mod n`) and emits the final `(window, sum, count)` when the
//!    partials frontier passes the window — at which point, by frontier
//!    exactness, every contribution is provably present.
//!
//! Emitted window ids are additionally broadcast on a third *emitlog*
//! flow; its frontier reaching [`TS_CLOSED`] is the pipeline's
//! distributed termination signal.
//!
//! ## Timestamps
//!
//! Event slot `s` (a global sequence number) carries timestamp `s`;
//! window `w` covers slots `[w*E, (w+1)*E)` for `E =
//! events_per_window`. Partials and emitlog records for window `w`
//! carry timestamp `w`.
//!
//! ## Recovery (replay from the generator)
//!
//! Events are a pure function of `(seed, slot)`, so the generator *is*
//! the redo log. After a rank failure the survivors revoke → agree →
//! shrink (the ULFM cycle), [`crate::FlowContext::abandon_all`] the old
//! flows, take a bitwise-OR allreduce of their emitted-window masks
//! ([`union_emitted_mask`]), and rebuild the pipeline over the shrunk
//! communicator with the union as a *skip mask*: already-emitted
//! windows are not regenerated, and the remaining slots are
//! re-partitioned over the survivors. Output for windows the dead rank
//! had emitted died with it, so those windows are replayed — the union
//! of survivor outputs ends up covering every window **exactly once**
//! (see `docs/FLOW.md` for the output-commit caveat this encodes).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::wtime;
use mpfa_mpi::{Comm, Op};

use crate::engine::{FlowContext, FlowReceiver, FlowSender};
use crate::progress::TS_CLOSED;

/// Windowed-pipeline shape. Events are a pure function of this config,
/// so two runs with equal configs produce identical windows — the basis
/// of replay recovery.
#[derive(Debug, Clone, Copy)]
pub struct WindowCfg {
    /// Number of windows.
    pub windows: u64,
    /// Event slots per window (each slot is one event).
    pub events_per_window: u64,
    /// Key-space size (keys route events to aggregators).
    pub keys: u64,
    /// Generator seed.
    pub seed: u64,
    /// Events a producer sends per [`WindowWorker::step`] call.
    pub batch: usize,
}

impl Default for WindowCfg {
    fn default() -> WindowCfg {
        WindowCfg {
            windows: 16,
            events_per_window: 64,
            keys: 97,
            seed: 0x5eed,
            batch: 256,
        }
    }
}

impl WindowCfg {
    /// Total event slots.
    pub fn total_slots(&self) -> u64 {
        self.windows * self.events_per_window
    }

    /// The window that slot `s` belongs to.
    pub fn window_of(&self, s: u64) -> u64 {
        s / self.events_per_window
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The event at slot `s`: `(key, value)`. Pure — this function is the
/// redo log.
pub fn event_for(cfg: &WindowCfg, s: u64) -> (u64, u64) {
    let h = splitmix64(cfg.seed ^ s.wrapping_mul(0xa076_1d64_78bd_642f));
    (h % cfg.keys, (h >> 33) % 1024)
}

/// The ground-truth output: every window's `(sum, count)`, computed
/// serially. Independent of rank count or shuffling.
pub fn expected_output(cfg: &WindowCfg) -> BTreeMap<u64, (u64, u64)> {
    let mut out = BTreeMap::new();
    for s in 0..cfg.total_slots() {
        let (_, v) = event_for(cfg, s);
        let e = out.entry(cfg.window_of(s)).or_insert((0u64, 0u64));
        e.0 += v;
        e.1 += 1;
    }
    out
}

/// Which rank owns (emits) window `w` in an `n`-rank pipeline.
pub fn owner_of(w: u64, n: usize) -> usize {
    (w % n as u64) as usize
}

/// Bitwise-OR allreduce of each survivor's emitted-window set over the
/// shrunk communicator: the union skip mask for replay. (Windows only a
/// dead rank emitted are absent — their output is lost, so they must be
/// replayed.)
pub fn union_emitted_mask(
    shrunk: &Comm,
    emitted: &BTreeMap<u64, (u64, u64)>,
    windows: u64,
) -> Vec<bool> {
    let words = windows.div_ceil(64) as usize;
    let mut mine = vec![0i64; words];
    for &w in emitted.keys() {
        mine[(w / 64) as usize] |= 1i64 << (w % 64);
    }
    let all = shrunk
        .allreduce(&mine, Op::Bor)
        .expect("emitted-mask allreduce");
    (0..windows)
        .map(|w| all[(w / 64) as usize] & (1i64 << (w % 64)) != 0)
        .collect()
}

/// One rank's share of the windowed pipeline. Drive it by alternating
/// [`WindowWorker::step`] with progress on the rank's stream until
/// [`WindowWorker::done`].
pub struct WindowWorker {
    cfg: WindowCfg,
    n: usize,
    me: usize,

    ev_tx: FlowSender<(u64, u64)>,
    ev_rx: FlowReceiver<(u64, u64)>,
    pa_tx: FlowSender<(u64, u64, u64)>,
    pa_rx: FlowReceiver<(u64, u64, u64)>,
    em_tx: FlowSender<u64>,
    em_rx: FlowReceiver<u64>,

    /// Slots this rank produces, ascending; `next_slot` indexes it.
    my_slots: Vec<u64>,
    next_slot: usize,
    ev_closed: bool,

    /// Aggregation: per-window partial sums from events received here.
    sums: BTreeMap<u64, (u64, u64)>,
    /// Windows whose events-frontier callback has fired (ready to send
    /// the partial). Pushed from frontier callbacks, drained by `step`.
    agg_ready: Arc<Mutex<VecDeque<u64>>>,
    /// Replay windows still awaiting their partial send.
    agg_remaining: usize,
    pa_closed: bool,

    /// Ownership: per-window partial contributions `(sum, count,
    /// contributors)`.
    contribs: BTreeMap<u64, (u64, u64, usize)>,
    /// When window `w`'s last contribution arrived (for the
    /// frontier-advance latency measurement).
    full_at: BTreeMap<u64, f64>,
    /// Owned windows whose partials-frontier callback has fired.
    emit_ready: Arc<Mutex<VecDeque<u64>>>,
    /// Owned replay windows still awaiting emission.
    emit_remaining: usize,
    em_closed: bool,

    /// Final outputs emitted by this rank (survives recovery).
    emitted: BTreeMap<u64, (u64, u64)>,
    /// Window ids observed on the emitlog flow (any emitter).
    seen_emits: BTreeSet<u64>,
    /// Seconds between a window's last contribution arriving and its
    /// frontier callback firing, per emitted window.
    emit_latencies: Vec<f64>,
    /// False if any window was ever emitted with fewer than `n`
    /// contributions — the frontier lied. Checked by conformance.
    frontier_honest: bool,
}

impl WindowWorker {
    /// Build this rank's share of the pipeline over `comm`. Collective
    /// (creates three flows, same order everywhere). `skip[w]` marks
    /// windows already emitted before a recovery — their slots are not
    /// regenerated and no partials are exchanged for them. Pass
    /// `prior_emitted` to carry this rank's pre-recovery outputs into
    /// the rebuilt worker.
    pub fn new(
        fx: &FlowContext,
        comm: &Comm,
        cfg: WindowCfg,
        skip: &[bool],
        prior_emitted: BTreeMap<u64, (u64, u64)>,
    ) -> WindowWorker {
        assert_eq!(skip.len(), cfg.windows as usize, "skip mask shape");
        let n = comm.size();
        let me = comm.rank() as usize;
        let (ev_tx, ev_rx) = fx.create::<(u64, u64)>(comm);
        let (pa_tx, pa_rx) = fx.create::<(u64, u64, u64)>(comm);
        let (em_tx, em_rx) = fx.create::<u64>(comm);

        let replay: Vec<u64> = (0..cfg.windows).filter(|&w| !skip[w as usize]).collect();
        let my_slots: Vec<u64> = replay
            .iter()
            .flat_map(|&w| {
                (w * cfg.events_per_window..(w + 1) * cfg.events_per_window)
                    .filter(|s| (s % n as u64) as usize == me)
            })
            .collect();

        let agg_ready = Arc::new(Mutex::new(VecDeque::new()));
        let emit_ready = Arc::new(Mutex::new(VecDeque::new()));
        // Frontier callbacks, registered in window order so the ready
        // queues fill in ascending-window order (the frontier is
        // monotone and probes fire threshold-ordered).
        for &w in &replay {
            let q = agg_ready.clone();
            ev_rx.on_frontier_advance((w + 1) * cfg.events_per_window, move |ok| {
                if ok {
                    q.lock().push_back(w);
                }
            });
        }
        let my_windows: Vec<u64> = replay
            .iter()
            .copied()
            .filter(|&w| owner_of(w, n) == me)
            .collect();
        for &w in &my_windows {
            let q = emit_ready.clone();
            pa_rx.on_frontier_advance(w + 1, move |ok| {
                if ok {
                    q.lock().push_back(w);
                }
            });
        }

        WindowWorker {
            cfg,
            n,
            me,
            ev_tx,
            ev_rx,
            pa_tx,
            pa_rx,
            em_tx,
            em_rx,
            my_slots,
            next_slot: 0,
            ev_closed: false,
            sums: BTreeMap::new(),
            agg_ready,
            agg_remaining: replay.len(),
            pa_closed: false,
            contribs: BTreeMap::new(),
            full_at: BTreeMap::new(),
            emit_ready,
            emit_remaining: my_windows.len(),
            em_closed: false,
            emitted: prior_emitted,
            seen_emits: BTreeSet::new(),
            emit_latencies: Vec::new(),
            frontier_honest: true,
        }
    }

    /// One slice of work in every role. Interleave with progress on
    /// this rank's stream; returns `true` while anything remains.
    pub fn step(&mut self) -> bool {
        self.drain_receivers();
        self.produce_batch();
        self.send_ready_partials();
        self.emit_ready_windows();
        let _ = self.ev_tx.flush();
        let _ = self.pa_tx.flush();
        !self.done()
    }

    /// The distributed pipeline is complete: every flow's frontier hit
    /// [`TS_CLOSED`] (all capabilities dropped everywhere, all records
    /// consumed here).
    pub fn done(&self) -> bool {
        self.ev_rx.frontier() == TS_CLOSED
            && self.pa_rx.frontier() == TS_CLOSED
            && self.em_rx.frontier() == TS_CLOSED
    }

    fn drain_receivers(&mut self) {
        while let Some((s, (_key, v))) = self.ev_rx.try_recv() {
            let e = self.sums.entry(self.cfg.window_of(s)).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        while let Some((_, (w, sum, count))) = self.pa_rx.try_recv() {
            let e = self.contribs.entry(w).or_insert((0, 0, 0));
            e.0 += sum;
            e.1 += count;
            e.2 += 1;
            if e.2 == self.n {
                self.full_at.insert(w, wtime());
            }
        }
        while let Some((_, w)) = self.em_rx.try_recv() {
            self.seen_emits.insert(w);
        }
    }

    fn produce_batch(&mut self) {
        if self.ev_closed {
            return;
        }
        let end = (self.next_slot + self.cfg.batch).min(self.my_slots.len());
        for i in self.next_slot..end {
            let s = self.my_slots[i];
            let (key, value) = event_for(&self.cfg, s);
            let dst = (key % self.n as u64) as usize;
            self.ev_tx
                .send(dst, s, &(key, value))
                .expect("event send under held capability");
        }
        self.next_slot = end;
        if self.next_slot == self.my_slots.len() {
            self.ev_tx.close().expect("close events");
            self.ev_closed = true;
        } else {
            // Promise: nothing earlier than the next unproduced slot.
            let next_ts = self.my_slots[self.next_slot];
            self.ev_tx.advance_to(next_ts).expect("advance events");
        }
    }

    fn send_ready_partials(&mut self) {
        loop {
            let w = match self.agg_ready.lock().pop_front() {
                Some(w) => w,
                None => break,
            };
            let (sum, count) = self.sums.remove(&w).unwrap_or((0, 0));
            self.pa_tx
                .send(owner_of(w, self.n), w, &(w, sum, count))
                .expect("partial send under held capability");
            self.pa_tx.advance_to(w + 1).expect("advance partials");
            self.agg_remaining -= 1;
        }
        if !self.pa_closed && self.agg_remaining == 0 {
            self.pa_tx.close().expect("close partials");
            self.pa_closed = true;
        }
    }

    fn emit_ready_windows(&mut self) {
        loop {
            let w = match self.emit_ready.lock().pop_front() {
                Some(w) => w,
                None => break,
            };
            let (sum, count, contributors) = self.contribs.remove(&w).unwrap_or((0, 0, 0));
            // Frontier exactness says every rank's partial is in.
            if contributors != self.n {
                self.frontier_honest = false;
            }
            if let Some(t) = self.full_at.remove(&w) {
                self.emit_latencies.push(wtime() - t);
            }
            self.emitted.insert(w, (sum, count));
            for dst in 0..self.n {
                self.em_tx
                    .send(dst, w, &w)
                    .expect("emitlog send under held capability");
            }
            self.em_tx.advance_to(w + 1).expect("advance emitlog");
            self.emit_remaining -= 1;
        }
        if !self.em_closed && self.emit_remaining == 0 {
            self.em_tx.close().expect("close emitlog");
            self.em_closed = true;
        }
    }

    /// Final `(window → (sum, count))` outputs this rank emitted.
    pub fn emitted(&self) -> &BTreeMap<u64, (u64, u64)> {
        &self.emitted
    }

    /// Window ids observed on the emitlog flow.
    pub fn seen_emits(&self) -> &BTreeSet<u64> {
        &self.seen_emits
    }

    /// Per-emitted-window seconds between the last contribution landing
    /// and the frontier callback releasing the emission.
    pub fn emit_latencies(&self) -> &[f64] {
        &self.emit_latencies
    }

    /// True iff every emission had all `n` contributions present — the
    /// no-emit-before-frontier property.
    pub fn frontier_honest(&self) -> bool {
        self.frontier_honest
    }

    /// Events this rank produces (for throughput accounting).
    pub fn produced_events(&self) -> u64 {
        self.my_slots.len() as u64
    }

    /// This rank's index in the pipeline.
    pub fn rank(&self) -> usize {
        self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_mpi::{Proc, World, WorldConfig};

    /// Drive `workers[i]` against `procs[i]` round-robin to completion.
    fn drive(procs: &[Proc], workers: &mut [WindowWorker]) {
        for _ in 0..2_000_000 {
            let mut busy = false;
            for (p, w) in procs.iter().zip(workers.iter_mut()) {
                busy |= w.step();
                p.default_stream().progress();
            }
            if !busy {
                return;
            }
        }
        panic!("pipeline never completed");
    }

    fn union(workers: &[WindowWorker]) -> BTreeMap<u64, (u64, u64)> {
        let mut out = BTreeMap::new();
        for w in workers {
            for (&k, &v) in w.emitted() {
                assert!(out.insert(k, v).is_none(), "window {k} emitted twice");
            }
        }
        out
    }

    fn run(n: usize, cfg: WindowCfg, skip: &[bool]) -> Vec<WindowWorker> {
        let procs = World::init(WorldConfig::instant(n));
        let fxs: Vec<FlowContext> = procs.iter().map(FlowContext::install).collect();
        let mut workers: Vec<WindowWorker> = procs
            .iter()
            .zip(&fxs)
            .map(|(p, fx)| WindowWorker::new(fx, &p.world_comm(), cfg, skip, BTreeMap::new()))
            .collect();
        drive(&procs, &mut workers);
        for fx in &fxs {
            fx.shutdown();
        }
        workers
    }

    #[test]
    fn single_rank_pipeline_matches_expected() {
        let cfg = WindowCfg {
            windows: 8,
            events_per_window: 32,
            ..WindowCfg::default()
        };
        let workers = run(1, cfg, &[false; 8]);
        assert_eq!(union(&workers), expected_output(&cfg));
        assert!(workers[0].frontier_honest());
    }

    #[test]
    fn multi_rank_pipeline_is_exactly_once() {
        let cfg = WindowCfg::default();
        let workers = run(3, cfg, &vec![false; cfg.windows as usize]);
        assert_eq!(union(&workers), expected_output(&cfg));
        for w in &workers {
            assert!(w.frontier_honest(), "emitted before the frontier covered");
            assert_eq!(
                w.seen_emits().len(),
                cfg.windows as usize,
                "emitlog broadcast reaches every rank"
            );
        }
        // Every rank emitted only the windows it owns.
        for (r, w) in workers.iter().enumerate() {
            assert!(w.emitted().keys().all(|&k| owner_of(k, 3) == r));
        }
        assert!(
            workers.iter().any(|w| !w.emit_latencies().is_empty()),
            "latency board collected samples"
        );
    }

    #[test]
    fn skip_mask_replays_only_unemitted_windows() {
        let cfg = WindowCfg {
            windows: 6,
            events_per_window: 16,
            ..WindowCfg::default()
        };
        let mut skip = vec![false; 6];
        skip[0] = true;
        skip[3] = true;
        let workers = run(2, cfg, &skip);
        let out = union(&workers);
        let mut want = expected_output(&cfg);
        want.remove(&0);
        want.remove(&3);
        assert_eq!(out, want, "skipped windows are not re-emitted");
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = WindowCfg::default();
        for s in [0u64, 1, 99, cfg.total_slots() - 1] {
            assert_eq!(event_for(&cfg, s), event_for(&cfg, s));
        }
        let a = expected_output(&cfg);
        assert_eq!(a.len(), cfg.windows as usize);
        assert!(a.values().all(|&(_, c)| c == cfg.events_per_window));
    }
}

//! The flow engine: per-rank flow state, the progress-exchange poll
//! task, and the `FlowSender`/`FlowReceiver` handles.
//!
//! ## Protocol
//!
//! A flow is created *collectively* (same-order rule, like communicator
//! creation): every member derives the same flow id from a per-context
//! monotone counter, and every member starts holding **one capability
//! at timestamp 0** — mirrored into every peer's view, so no wire
//! exchange is needed at creation.
//!
//! All traffic for a flow rides the reserved
//! [`ReservedCtx::FlowCtrl`] context with `tag = flow id`, addressed by
//! world rank. Two message kinds share each `(source → dest)` channel:
//! record batches and capability-delta gossip (see [`crate::channel`]).
//! The send side flushes a destination's pending record batch *before*
//! emitting any capability downgrade, and the receive side drains each
//! source channel strictly in arrival order — so by MPI non-overtaking,
//! a record always enters the local pending queue before the retirement
//! of the capability that covered it is applied. Queued records hold
//! the frontier down until the application consumes them.
//!
//! `frontier()` at a rank is the minimum over its own capabilities, its
//! queued record timestamps, and its view of every peer's capabilities.
//! It is **exact** (converges to the true global minimum once gossip
//! and records drain) and **monotone** (the in-band ordering above
//! means no contribution can move backwards).
//!
//! ## Push, not poll
//!
//! [`FlowReceiver::frontier_probe`] returns a plain [`Request`] that
//! completes when the frontier reaches a threshold; probes complete
//! inside the engine's poll (under the progress sweep) and their
//! continuations drain through the `mpfa-async` machinery — so
//! emit-on-frontier work is delivered as a callback, never by spinning
//! on `frontier()`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{wtime, AsyncPoll, Completer, Request, RequestError, Status, Stream};
use mpfa_mpi::matching::RecvSlot;
use mpfa_mpi::{Comm, CtrlPort, Proc, ReservedCtx};

use crate::channel::{
    decode_message, progress_message, FlowData, FlowMsg, OutBatch, LISTENER_CAPACITY,
};
use crate::progress::{CapSet, Timestamp, TS_CLOSED};

/// Flow-engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Seconds a frontier may sit still (while the flow is open) before
    /// the engine reports a stall through the observability counters
    /// (`flow_stalled_holder` / `flow_stalled_at`). Virtual seconds
    /// under deterministic simulation.
    pub stall_after: f64,
    /// Auto-flush a destination's record batch after this many records
    /// (batches also flush by bytes; see [`crate::channel`]).
    pub flush_records: usize,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            stall_after: 0.5,
            flush_records: 1024,
        }
    }
}

/// Why a flow operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// The flow was abandoned ([`FlowContext::abandon_all`], typically
    /// during failure recovery); rebuild it on a shrunk communicator.
    Abandoned,
    /// The sender no longer holds a capability at or below the record's
    /// timestamp (or tried to send on a closed stream).
    CapabilityViolation {
        /// The offending record timestamp.
        ts: Timestamp,
        /// The sender's oldest capability, or `TS_CLOSED` if none.
        min_cap: Timestamp,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Abandoned => write!(f, "flow abandoned (rebuild after recovery)"),
            FlowError::CapabilityViolation { ts, min_cap } => write!(
                f,
                "capability violation: record at t={ts} but oldest held capability is {min_cap}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

/// Per-flow engine state. Everything lives under the context's flow
/// lock; handles are thin `(context, id)` pairs.
struct FlowState {
    /// Member world ranks, communicator order.
    group: Vec<usize>,
    /// This rank's index in `group`.
    me: usize,
    /// Capabilities this rank holds.
    caps: CapSet,
    /// Views of each peer's capabilities (`views[me]` unused).
    views: Vec<CapSet>,
    /// Timestamps of received-but-unconsumed records (these hold the
    /// frontier until the application takes them).
    pending: CapSet,
    /// Received records awaiting [`FlowReceiver::try_recv`].
    queue: std::collections::VecDeque<(Timestamp, Vec<u8>)>,
    /// Posted per-source receives (`listeners[me]` stays `None`).
    listeners: Vec<Option<(Request, RecvSlot)>>,
    /// Sources whose channel failed (peer death); no longer reposted.
    dead: Vec<bool>,
    /// Per-destination outgoing record batches.
    out: Vec<OutBatch>,
    /// Cached frontier (monotone).
    frontier: Timestamp,
    /// Lock-free mirror of `frontier` for the handles.
    frontier_cell: Arc<AtomicU64>,
    /// Waiting frontier probes: `(threshold, completer)`.
    probes: Vec<(Timestamp, Completer)>,
    /// When the frontier last moved (wtime; virtual under DST).
    last_advance: f64,
    /// Whether the stall counters currently name this flow.
    stalled: bool,
}

struct Shared {
    port: CtrlPort,
    stream: Stream,
    cfg: FlowConfig,
    flows: Mutex<BTreeMap<u32, FlowState>>,
    /// Monotone per-(rank, context) flow-id counter. Never reused, even
    /// across `abandon_all` — stale wire messages for old ids are
    /// dropped on the floor.
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

/// Per-rank flow engine handle. Create once per rank with
/// [`FlowContext::install`]; clones share the engine.
#[derive(Clone)]
pub struct FlowContext {
    shared: Arc<Shared>,
}

/// The sending half of a flow: records plus capability management.
pub struct FlowSender<T> {
    shared: Arc<Shared>,
    id: u32,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// The receiving half of a flow: records, `frontier()`, and frontier
/// probes/callbacks.
pub struct FlowReceiver<T> {
    shared: Arc<Shared>,
    id: u32,
    frontier_cell: Arc<AtomicU64>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for FlowSender<T> {
    fn clone(&self) -> Self {
        FlowSender {
            shared: self.shared.clone(),
            id: self.id,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T> Clone for FlowReceiver<T> {
    fn clone(&self) -> Self {
        FlowReceiver {
            shared: self.shared.clone(),
            id: self.id,
            frontier_cell: self.frontier_cell.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl FlowContext {
    /// Install the flow engine on `proc`'s default stream with default
    /// tunables.
    pub fn install(proc: &Proc) -> FlowContext {
        FlowContext::install_with(proc, FlowConfig::default())
    }

    /// Install the flow engine on `proc`'s default stream: claims the
    /// [`ReservedCtx::FlowCtrl`] control port and registers the
    /// progress-exchange poll as an `MPIX_Async` task. Call once per
    /// rank; call [`FlowContext::shutdown`] before finalize.
    pub fn install_with(proc: &Proc, cfg: FlowConfig) -> FlowContext {
        let shared = Arc::new(Shared {
            port: CtrlPort::claim(proc, ReservedCtx::FlowCtrl),
            stream: proc.default_stream().clone(),
            cfg,
            flows: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let task = shared.clone();
        proc.default_stream().async_start(move |_t| {
            if task.shutdown.load(Ordering::Acquire) {
                return AsyncPoll::Done;
            }
            if task.poll() {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
        FlowContext { shared }
    }

    /// Create a flow over `comm`'s group. **Collective**: every member
    /// must create its flows in the same order (the id is derived from
    /// a local monotone counter, like communicator contexts). Every
    /// member starts holding one capability at timestamp 0; a member
    /// that will never send should [`FlowSender::close`] immediately.
    pub fn create<T: FlowData>(&self, comm: &Comm) -> (FlowSender<T>, FlowReceiver<T>) {
        let group: Vec<usize> = comm.group().to_vec();
        let me = comm.rank() as usize;
        debug_assert_eq!(group[me], self.shared.port.my_world());
        let n = group.len();
        let id = self.shared.next_id.fetch_add(1, Ordering::AcqRel) as u32;
        let frontier_cell = Arc::new(AtomicU64::new(0));
        let st = FlowState {
            group,
            me,
            caps: CapSet::singleton(0),
            views: (0..n).map(|_| CapSet::singleton(0)).collect(),
            pending: CapSet::new(),
            queue: std::collections::VecDeque::new(),
            listeners: (0..n).map(|_| None).collect(),
            dead: vec![false; n],
            out: (0..n).map(|_| OutBatch::default()).collect(),
            frontier: 0,
            frontier_cell: frontier_cell.clone(),
            probes: Vec::new(),
            last_advance: wtime(),
            stalled: false,
        };
        self.shared.flows.lock().insert(id, st);
        (
            FlowSender {
                shared: self.shared.clone(),
                id,
                _marker: std::marker::PhantomData,
            },
            FlowReceiver {
                shared: self.shared.clone(),
                id,
                frontier_cell,
                _marker: std::marker::PhantomData,
            },
        )
    }

    /// Abandon every flow (failure recovery): posted receives are
    /// failed, waiting probes fail with [`RequestError::Revoked`], and
    /// every handle's operations return [`FlowError::Abandoned`] from
    /// now on. Flow ids are not reused; recreate flows on the shrunk
    /// communicator afterwards.
    pub fn abandon_all(&self) {
        let mut flows = self.shared.flows.lock();
        let ids: Vec<u32> = flows.keys().copied().collect();
        if !ids.is_empty() {
            let _ = self.shared.port.fail_matching(
                &|_, tag| ids.iter().any(|&id| id as i32 == tag),
                RequestError::Revoked,
            );
        }
        for (_, st) in std::mem::take(&mut *flows) {
            for (_, completer) in st.probes {
                completer.fail(RequestError::Revoked);
            }
        }
        // Abandoning the flows resolves any stall they were reporting.
        let counters = mpfa_obs::global_counters();
        counters.flow_stalled_holder.store(0, Ordering::Relaxed);
        counters.flow_stalled_at.store(0, Ordering::Relaxed);
    }

    /// Stop the poll task so the default stream can drain (and thus
    /// `Proc::finalize` can complete). Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for FlowContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowContext")
            .field("rank", &self.shared.port.my_world())
            .field("flows", &self.shared.flows.lock().len())
            .finish()
    }
}

impl Shared {
    /// One progress-exchange pass over every flow; true if anything
    /// moved.
    fn poll(&self) -> bool {
        let mut progressed = false;
        let now = wtime();
        let mut flows = self.flows.lock();
        for (&id, st) in flows.iter_mut() {
            // Drain each source channel strictly in arrival order,
            // reposting after every message. Iteration order is fixed
            // (source index) so deterministic simulation replays
            // byte-identically.
            for src in 0..st.group.len() {
                if src == st.me || st.dead[src] {
                    continue;
                }
                loop {
                    if st.listeners[src].is_none() {
                        st.listeners[src] = Some(self.port.recv(
                            st.group[src] as i32,
                            id as i32,
                            LISTENER_CAPACITY,
                        ));
                    }
                    let complete = {
                        let (req, _) = st.listeners[src].as_ref().expect("posted above");
                        req.is_complete()
                    };
                    if !complete {
                        break;
                    }
                    let (req, slot) = st.listeners[src].take().expect("present");
                    match req.result() {
                        Some(Ok(_)) => {
                            let data = slot.take();
                            Self::apply_message(st, src, &data);
                            progressed = true;
                        }
                        _ => {
                            // Failed by the resilience sweep (peer
                            // death) or revoked: stop listening to this
                            // source. Its capability view keeps pinning
                            // the frontier — that is the stall the
                            // doctor reports and shrink+replay resolves.
                            st.dead[src] = true;
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            progressed |= Self::refresh_frontier(st, &self.cfg, now);
        }
        progressed
    }

    /// Apply one decoded wire message from source index `src`.
    fn apply_message(st: &mut FlowState, src: usize, data: &[u8]) {
        match decode_message(data) {
            Some(FlowMsg::Records(records)) => {
                let counters = mpfa_obs::global_counters();
                counters
                    .flow_records_recv
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                for (ts, payload) in records {
                    debug_assert!(
                        ts >= st.frontier,
                        "record at t={ts} arrived behind the frontier {}",
                        st.frontier
                    );
                    st.pending.update(ts, 1);
                    st.queue.push_back((ts, payload));
                }
            }
            Some(FlowMsg::Progress(deltas)) => {
                for (ts, d) in deltas {
                    st.views[src].update(ts, d);
                }
            }
            None => debug_assert!(false, "malformed flow message ({} B)", data.len()),
        }
    }

    /// Recompute the frontier; fire probes, maintain the stall report.
    /// True if the frontier advanced.
    fn refresh_frontier(st: &mut FlowState, cfg: &FlowConfig, now: f64) -> bool {
        let mut f = st.caps.min().unwrap_or(TS_CLOSED);
        if let Some(p) = st.pending.min() {
            f = f.min(p);
        }
        for (i, view) in st.views.iter().enumerate() {
            if i == st.me {
                continue;
            }
            if let Some(v) = view.min() {
                f = f.min(v);
            }
        }
        debug_assert!(
            f >= st.frontier,
            "frontier regressed {} -> {f}",
            st.frontier
        );
        let counters = mpfa_obs::global_counters();
        if f > st.frontier {
            st.frontier = f;
            st.frontier_cell.store(f, Ordering::Release);
            counters
                .flow_frontier_updates
                .fetch_add(1, Ordering::Relaxed);
            st.last_advance = now;
            if st.stalled {
                st.stalled = false;
                counters.flow_stalled_holder.store(0, Ordering::Relaxed);
                counters.flow_stalled_at.store(0, Ordering::Relaxed);
            }
            let mut waiting = Vec::new();
            for (ts, completer) in st.probes.drain(..) {
                if ts <= f {
                    completer.complete(Status::empty());
                } else {
                    waiting.push((ts, completer));
                }
            }
            st.probes = waiting;
            true
        } else {
            if f != TS_CLOSED && now - st.last_advance > cfg.stall_after {
                // Stalled: name the rank whose contribution pins the
                // frontier. Re-asserted every poll while it persists so
                // the report survives concurrent counter writers.
                let holder = Self::holder_of(st, f);
                counters
                    .flow_stalled_holder
                    .store(holder as u64 + 1, Ordering::Relaxed);
                counters.flow_stalled_at.store(f, Ordering::Relaxed);
                st.stalled = true;
            }
            false
        }
    }

    /// The world rank whose capability (or unconsumed record) pins the
    /// frontier at `f`. When both this rank and a remote pin it, the
    /// remote is named — a third-party holder (possibly dead, possibly
    /// itself wedged behind one) is the actionable diagnosis; our own
    /// capabilities are in our hands.
    fn holder_of(st: &FlowState, f: Timestamp) -> usize {
        for (i, view) in st.views.iter().enumerate() {
            if i != st.me && view.min() == Some(f) {
                return st.group[i];
            }
        }
        st.group[st.me]
    }

    /// Flush `dst`'s record batch, if any (must precede any capability
    /// downgrade gossip to `dst` — the in-band ordering invariant).
    fn flush_dst(&self, st: &mut FlowState, id: u32, dst: usize) {
        if let Some(msg) = st.out[dst].take_message() {
            self.port.send(st.group[dst], id as i32, msg);
        }
    }

    /// Broadcast capability deltas to every peer, flushing record
    /// batches first so no peer applies a retirement before the records
    /// it covered.
    fn broadcast_progress(&self, st: &mut FlowState, id: u32, deltas: &[(Timestamp, i64)]) {
        if deltas.is_empty() {
            return;
        }
        let msg = progress_message(deltas);
        let counters = mpfa_obs::global_counters();
        for peer in 0..st.group.len() {
            if peer == st.me {
                continue;
            }
            self.flush_dst(st, id, peer);
            self.port.send(st.group[peer], id as i32, msg.clone());
            counters
                .flow_capability_gossip_bytes
                .fetch_add(msg.len() as u64, Ordering::Relaxed);
        }
    }
}

impl<T: FlowData> FlowSender<T> {
    /// Send one record at timestamp `ts` to group member `dst`
    /// (communicator rank). Requires a held capability at or below
    /// `ts`. Records batch per destination; batches flush at the size
    /// thresholds, on [`FlowSender::flush`], and always before any
    /// capability downgrade.
    pub fn send(&self, dst: usize, ts: Timestamp, value: &T) -> Result<(), FlowError> {
        let mut flows = self.shared.flows.lock();
        let st = flows.get_mut(&self.id).ok_or(FlowError::Abandoned)?;
        let min_cap = st.caps.min().unwrap_or(TS_CLOSED);
        if ts < min_cap || min_cap == TS_CLOSED {
            return Err(FlowError::CapabilityViolation { ts, min_cap });
        }
        let counters = mpfa_obs::global_counters();
        counters.flow_records_sent.fetch_add(1, Ordering::Relaxed);
        if dst == st.me {
            // Loopback: straight into the local queue, under the same
            // lock that guards the frontier — trivially ordered.
            let mut buf = Vec::new();
            value.encode(&mut buf);
            counters.flow_records_recv.fetch_add(1, Ordering::Relaxed);
            st.pending.update(ts, 1);
            st.queue.push_back((ts, buf));
            return Ok(());
        }
        st.out[dst].push(ts, value);
        if st.out[dst].should_flush(self.shared.cfg.flush_records) {
            self.shared.flush_dst(st, self.id, dst);
        }
        Ok(())
    }

    /// Flush every destination's pending record batch.
    pub fn flush(&self) -> Result<(), FlowError> {
        let mut flows = self.shared.flows.lock();
        let st = flows.get_mut(&self.id).ok_or(FlowError::Abandoned)?;
        for dst in 0..st.group.len() {
            if dst != st.me {
                self.shared.flush_dst(st, self.id, dst);
            }
        }
        Ok(())
    }

    /// Downgrade every held capability below `to` up to `to`: a promise
    /// to never again send a record with timestamp `< to`. Monotone;
    /// advancing to or below the current minimum is a no-op.
    pub fn advance_to(&self, to: Timestamp) -> Result<(), FlowError> {
        let mut flows = self.shared.flows.lock();
        let st = flows.get_mut(&self.id).ok_or(FlowError::Abandoned)?;
        let deltas = st.caps.advance_to(to);
        self.shared.broadcast_progress(st, self.id, &deltas);
        Shared::refresh_frontier(st, &self.shared.cfg, wtime());
        Ok(())
    }

    /// Drop every held capability: this rank will never send on the
    /// flow again. The flow closes globally (frontier
    /// [`TS_CLOSED`]) once every member has closed and every record is
    /// consumed.
    pub fn close(&self) -> Result<(), FlowError> {
        let mut flows = self.shared.flows.lock();
        let st = flows.get_mut(&self.id).ok_or(FlowError::Abandoned)?;
        let deltas = st.caps.drop_all();
        self.shared.broadcast_progress(st, self.id, &deltas);
        Shared::refresh_frontier(st, &self.shared.cfg, wtime());
        Ok(())
    }

    /// This flow's current local frontier (see
    /// [`FlowReceiver::frontier`]).
    pub fn frontier(&self) -> Timestamp {
        self.shared
            .flows
            .lock()
            .get(&self.id)
            .map(|st| st.frontier)
            .unwrap_or(0)
    }
}

impl<T: FlowData> FlowReceiver<T> {
    /// Take the next queued record, in arrival order. `None` when the
    /// queue is empty (or the flow was abandoned). A returned record's
    /// timestamp is always `>=` the frontier observed *before* the
    /// call — a rank never observes a record at or below a timestamp
    /// its frontier has passed.
    pub fn try_recv(&self) -> Option<(Timestamp, T)> {
        let mut flows = self.shared.flows.lock();
        let st = flows.get_mut(&self.id)?;
        let (ts, payload) = st.queue.pop_front()?;
        st.pending.update(ts, -1);
        let value = T::decode(&payload)?;
        Some((ts, value))
    }

    /// The local frontier: no record with timestamp `< frontier()` will
    /// ever be returned by [`FlowReceiver::try_recv`] again.
    /// Monotone; [`TS_CLOSED`] once the flow is globally closed and
    /// drained. Lock-free.
    pub fn frontier(&self) -> Timestamp {
        self.frontier_cell.load(Ordering::Acquire)
    }

    /// A request that completes when the frontier reaches `ts`
    /// (completes immediately if it already has; fails with
    /// [`RequestError::Revoked`] if the flow is abandoned first).
    /// Attach continuations with [`Request::on_complete`] or await it
    /// on the `mpfa-async` executor.
    pub fn frontier_probe(&self, ts: Timestamp) -> Request {
        let mut flows = self.shared.flows.lock();
        match flows.get_mut(&self.id) {
            None => Request::failed(&self.shared.stream, RequestError::Revoked),
            Some(st) if st.frontier >= ts => {
                Request::completed(&self.shared.stream, Status::empty())
            }
            Some(st) => {
                let (req, completer) = Request::pair(&self.shared.stream);
                st.probes.push((ts, completer));
                req
            }
        }
    }

    /// Run `cb(true)` (via the continuation machinery — push, not poll)
    /// once the frontier reaches `ts`, or `cb(false)` if the flow is
    /// abandoned first.
    pub fn on_frontier_advance<F>(&self, ts: Timestamp, cb: F)
    where
        F: FnOnce(bool) + Send + 'static,
    {
        self.frontier_probe(ts).on_complete(move |res| {
            cb(res.is_ok());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_mpi::{World, WorldConfig};

    fn drive_all(procs: &[Proc], mut cond: impl FnMut() -> bool) {
        for _ in 0..200_000 {
            if cond() {
                return;
            }
            for p in procs {
                p.default_stream().progress();
            }
        }
        panic!("condition not reached");
    }

    #[test]
    fn records_flow_and_frontier_advances_to_closed() {
        let procs = World::init(WorldConfig::instant(2));
        let fx: Vec<FlowContext> = procs.iter().map(FlowContext::install).collect();
        let (tx0, rx0) = fx[0].create::<u64>(&procs[0].world_comm());
        let (tx1, rx1) = fx[1].create::<u64>(&procs[1].world_comm());

        tx0.send(1, 5, &111).unwrap();
        tx0.send(0, 6, &222).unwrap(); // loopback
        tx0.flush().unwrap();
        tx0.close().unwrap();
        tx1.close().unwrap();

        drive_all(&procs, || {
            rx1.try_recv().is_some() || rx1.frontier() == TS_CLOSED
        });
        // Rank 0 still holds its loopback record; its frontier is
        // pinned at 6 until the record is consumed.
        drive_all(&procs, || rx0.frontier() == 6);
        assert_eq!(rx0.try_recv(), Some((6, 222)));
        drive_all(&procs, || rx0.frontier() == TS_CLOSED);
        drive_all(&procs, || rx1.frontier() == TS_CLOSED);
    }

    #[test]
    fn frontier_tracks_the_slowest_capability() {
        let procs = World::init(WorldConfig::instant(3));
        let fx: Vec<FlowContext> = procs.iter().map(FlowContext::install).collect();
        let handles: Vec<_> = procs
            .iter()
            .zip(&fx)
            .map(|(p, f)| f.create::<u64>(&p.world_comm()))
            .collect();

        handles[0].0.close().unwrap();
        handles[1].0.advance_to(5).unwrap();
        handles[2].0.advance_to(9).unwrap();
        drive_all(&procs, || handles[0].1.frontier() == 5);
        assert_eq!(handles[0].1.frontier(), 5, "pinned by rank 1's cap at 5");
        handles[1].0.advance_to(20).unwrap();
        drive_all(&procs, || handles[0].1.frontier() == 9);
        handles[1].0.close().unwrap();
        handles[2].0.close().unwrap();
        drive_all(&procs, || handles[0].1.frontier() == TS_CLOSED);
    }

    #[test]
    fn capability_violation_is_an_error() {
        let procs = World::init(WorldConfig::instant(1));
        let fx = FlowContext::install(&procs[0]);
        let (tx, _rx) = fx.create::<u64>(&procs[0].world_comm());
        tx.advance_to(10).unwrap();
        assert_eq!(
            tx.send(0, 9, &1),
            Err(FlowError::CapabilityViolation { ts: 9, min_cap: 10 })
        );
        tx.close().unwrap();
        assert!(matches!(
            tx.send(0, 11, &1),
            Err(FlowError::CapabilityViolation { .. })
        ));
    }

    #[test]
    fn probes_and_callbacks_fire_on_advance() {
        let procs = World::init(WorldConfig::instant(2));
        let fx: Vec<FlowContext> = procs.iter().map(FlowContext::install).collect();
        let (tx0, rx0) = fx[0].create::<u64>(&procs[0].world_comm());
        let (tx1, _rx1) = fx[1].create::<u64>(&procs[1].world_comm());

        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        rx0.on_frontier_advance(7, move |ok| {
            assert!(ok);
            f.store(1, Ordering::Release);
        });
        let probe = rx0.frontier_probe(7);
        assert!(!probe.is_complete());

        tx0.advance_to(7).unwrap();
        assert_eq!(fired.load(Ordering::Acquire), 0, "frontier still at 0");
        tx1.advance_to(9).unwrap();
        drive_all(&procs, || probe.is_complete());
        drive_all(&procs, || fired.load(Ordering::Acquire) == 1);
        assert_eq!(rx0.frontier(), 7);
        // A probe at an already-passed threshold completes immediately.
        assert!(rx0.frontier_probe(3).is_complete());
        tx0.close().unwrap();
        tx1.close().unwrap();
    }

    #[test]
    fn abandon_fails_probes_and_errors_handles() {
        let procs = World::init(WorldConfig::instant(1));
        let fx = FlowContext::install(&procs[0]);
        let (tx, rx) = fx.create::<u64>(&procs[0].world_comm());
        let probe = rx.frontier_probe(5);
        let aborted = Arc::new(AtomicU64::new(0));
        let a = aborted.clone();
        rx.on_frontier_advance(6, move |ok| {
            if !ok {
                a.store(1, Ordering::Release);
            }
        });
        fx.abandon_all();
        assert!(probe.error().is_some());
        drive_all(&procs, || aborted.load(Ordering::Acquire) == 1);
        assert_eq!(tx.send(0, 5, &1), Err(FlowError::Abandoned));
        assert_eq!(tx.advance_to(9), Err(FlowError::Abandoned));
        assert!(rx.try_recv().is_none());
        // New flows can be created afterwards, with fresh ids.
        let (tx2, _rx2) = fx.create::<u64>(&procs[0].world_comm());
        tx2.close().unwrap();
    }

    #[test]
    fn stall_sets_counters_and_advance_clears_them() {
        let procs = World::init(WorldConfig::instant(2));
        let cfg = FlowConfig {
            stall_after: 0.02,
            ..FlowConfig::default()
        };
        let fx: Vec<FlowContext> = procs
            .iter()
            .map(|p| FlowContext::install_with(p, cfg))
            .collect();
        let (tx0, rx0) = fx[0].create::<u64>(&procs[0].world_comm());
        let (tx1, _rx1) = fx[1].create::<u64>(&procs[1].world_comm());
        tx0.close().unwrap();
        // Rank 1 holds its capability at 0 and never advances: rank 0's
        // frontier stalls at 0 with rank 1 as the holder.
        let counters = mpfa_obs::global_counters();
        let t0 = wtime();
        loop {
            procs[0].default_stream().progress();
            procs[1].default_stream().progress();
            if counters.flow_stalled_holder.load(Ordering::Relaxed) == 2 {
                break;
            }
            assert!(wtime() - t0 < 10.0, "stall never reported");
        }
        assert_eq!(counters.flow_stalled_at.load(Ordering::Relaxed), 0);
        assert_eq!(rx0.frontier(), 0);
        // The holder advances; the stall report clears.
        tx1.close().unwrap();
        let t0 = wtime();
        loop {
            procs[0].default_stream().progress();
            procs[1].default_stream().progress();
            if counters.flow_stalled_holder.load(Ordering::Relaxed) == 0
                && rx0.frontier() == TS_CLOSED
            {
                break;
            }
            assert!(wtime() - t0 < 10.0, "stall report never cleared");
        }
    }

    #[test]
    fn shutdown_allows_finalize() {
        let procs = World::init(WorldConfig::instant(1));
        let fx = FlowContext::install(&procs[0]);
        let (tx, _rx) = fx.create::<u64>(&procs[0].world_comm());
        tx.close().unwrap();
        fx.shutdown();
        assert!(procs[0].finalize(2.0), "flow task must not block finalize");
    }
}

//! Capability multisets: the bookkeeping behind `frontier()`.
//!
//! A *capability* at timestamp `t` is the right to send a record at any
//! timestamp `>= t`. Each rank holds a multiset of capabilities per
//! flow; downgrading or dropping them is what lets the global frontier
//! advance. The same multiset shape also accumulates *views* of remote
//! ranks' capabilities (built from gossiped `(timestamp, delta)` pairs)
//! and the timestamps of locally queued, not-yet-consumed records.

use std::collections::BTreeMap;

/// A flow timestamp. Plain logical time — the flow layer never
/// interprets it beyond ordering.
pub type Timestamp = u64;

/// The frontier value of a closed flow: every capability everywhere has
/// been dropped and every record consumed, so no timestamp can ever
/// arrive again.
pub const TS_CLOSED: Timestamp = u64::MAX;

/// A multiset of timestamps with signed accumulation: `update(t, +1)`
/// mints, `update(t, -1)` retires. Deltas may transiently drive a count
/// negative when gossip about a mint and its retirement race on
/// *different* channels — the minimum only considers positive counts,
/// so such an entry simply doesn't pin the frontier.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CapSet {
    counts: BTreeMap<Timestamp, i64>,
}

impl CapSet {
    /// An empty multiset.
    pub fn new() -> CapSet {
        CapSet::default()
    }

    /// A multiset holding one capability at `t` — every participant's
    /// starting state.
    pub fn singleton(t: Timestamp) -> CapSet {
        let mut s = CapSet::new();
        s.update(t, 1);
        s
    }

    /// Accumulate `delta` occurrences of `t` (zeroed entries are
    /// dropped).
    pub fn update(&mut self, t: Timestamp, delta: i64) {
        let e = self.counts.entry(t).or_insert(0);
        *e += delta;
        if *e == 0 {
            self.counts.remove(&t);
        }
    }

    /// Smallest timestamp with a positive count, or `None` when the set
    /// holds nothing (the contributor no longer constrains the
    /// frontier).
    pub fn min(&self) -> Option<Timestamp> {
        self.counts.iter().find(|(_, &c)| c > 0).map(|(&t, _)| t)
    }

    /// True when no timestamp has a positive count.
    pub fn is_empty(&self) -> bool {
        self.min().is_none()
    }

    /// Iterate `(timestamp, count)` entries in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, i64)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Downgrade every capability below `to` up to `to`, returning the
    /// `(timestamp, delta)` changes (the gossip payload). No-op deltas
    /// are not emitted.
    pub fn advance_to(&mut self, to: Timestamp) -> Vec<(Timestamp, i64)> {
        let mut deltas = Vec::new();
        let mut moved = 0i64;
        let below: Vec<(Timestamp, i64)> = self.counts.range(..to).map(|(&t, &c)| (t, c)).collect();
        for (t, c) in below {
            if c > 0 {
                deltas.push((t, -c));
                moved += c;
                self.counts.remove(&t);
            }
        }
        if moved > 0 {
            self.update(to, moved);
            deltas.push((to, moved));
        }
        deltas
    }

    /// Drop every capability, returning the `(timestamp, delta)`
    /// changes.
    pub fn drop_all(&mut self) -> Vec<(Timestamp, i64)> {
        let deltas: Vec<(Timestamp, i64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&t, &c)| (t, -c))
            .collect();
        self.counts.clear();
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_ignores_non_positive_entries() {
        let mut s = CapSet::new();
        assert_eq!(s.min(), None);
        s.update(5, 1);
        s.update(3, -1); // retirement gossip arrived before the mint
        assert_eq!(s.min(), Some(5));
        s.update(3, 1); // mint catches up; nets to zero and vanishes
        assert_eq!(s.min(), Some(5));
        s.update(2, 2);
        assert_eq!(s.min(), Some(2));
    }

    #[test]
    fn advance_to_moves_everything_below() {
        let mut s = CapSet::singleton(0);
        s.update(3, 2);
        let deltas = s.advance_to(10);
        assert_eq!(deltas, vec![(0, -1), (3, -2), (10, 3)]);
        assert_eq!(s.min(), Some(10));
        // Applying the same deltas to a remote view converges it.
        let mut view = CapSet::singleton(0);
        view.update(3, 2);
        for (t, d) in deltas {
            view.update(t, d);
        }
        assert_eq!(view, s);
    }

    #[test]
    fn advance_to_is_idempotent_at_or_below_the_min() {
        let mut s = CapSet::singleton(7);
        assert!(s.advance_to(7).is_empty());
        assert!(s.advance_to(3).is_empty());
        assert_eq!(s.min(), Some(7));
    }

    #[test]
    fn drop_all_empties_the_set() {
        let mut s = CapSet::singleton(4);
        s.update(9, 1);
        let deltas = s.drop_all();
        assert_eq!(deltas, vec![(4, -1), (9, -1)]);
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }
}

//! # mpfa-flow — frontier-tracked dataflow over the progress engine
//!
//! Timestamped streams on top of mpfa: a [`FlowSender`] sends
//! `(Timestamp, T)` records to any group member; every member holds
//! *capabilities* (the right to still send at-or-after a timestamp) and
//! the engine gossips `(timestamp, delta)` capability changes over a
//! reserved control context ([`mpfa_mpi::ReservedCtx::FlowCtrl`]) so
//! each rank answers [`FlowReceiver::frontier`] **locally**: the global
//! lower bound on any timestamp that can still arrive.
//!
//! Two properties make the frontier trustworthy:
//!
//! - **exact** — it converges to the true minimum over every rank's
//!   capabilities and in-flight records, because records and capability
//!   gossip ride the *same* FIFO channel (in-band): a capability
//!   retirement can never be applied before the records it covered are
//!   queued.
//! - **monotone** — it never moves backwards, so acting on
//!   `frontier() >= t` (e.g. emitting a closed window) is safe forever.
//!
//! Emission is push-style: [`FlowReceiver::frontier_probe`] /
//! [`FlowReceiver::on_frontier_advance`] complete through the
//! continuation machinery when the frontier passes a threshold — no
//! spinning.
//!
//! The [`window`] module builds a multi-rank windowed-aggregation
//! pipeline on these primitives (event fan-in → shuffle by key →
//! per-window reduce → emit when the frontier passes the window close),
//! including deterministic replay-based recovery after a rank failure.
//!
//! See `docs/FLOW.md` for the protocol walkthrough and the recovery
//! story.

#![warn(missing_docs)]

pub mod channel;
pub mod engine;
pub mod progress;
pub mod window;

pub use channel::{FlowData, FlowMsg, MAX_RECORD_BYTES};
pub use engine::{FlowConfig, FlowContext, FlowError, FlowReceiver, FlowSender};
pub use progress::{CapSet, Timestamp, TS_CLOSED};
pub use window::{WindowCfg, WindowWorker};

//! Flow wire format: record batches and capability-delta gossip.
//!
//! Everything a flow sends — data records *and* progress gossip —
//! travels on the same per-`(source, flow-id)` channel of the reserved
//! flow control context, so MPI's non-overtaking guarantee orders a
//! capability drop *after* every record that was sent under that
//! capability. That in-band design is what makes `frontier()` exact:
//! a receiver can never apply the capability retirement before it has
//! queued the records the capability covered.
//!
//! ## Message layout (tag = flow id, little-endian)
//!
//! ```text
//! records:  [0u8] [count u32] count × ( [ts u64] [len u32] [payload] )
//! progress: [1u8] [n u32]     n     × ( [ts u64] [delta i64] )
//! ```

use crate::progress::Timestamp;

/// Message kind byte: a batch of timestamped records.
pub const MSG_RECORDS: u8 = 0;
/// Message kind byte: capability-delta gossip.
pub const MSG_PROGRESS: u8 = 1;

/// Largest encoded size of a single record's payload. Batches flush
/// before exceeding [`FLUSH_BYTES`], so with this bound no message can
/// outgrow [`LISTENER_CAPACITY`] (truncation is fatal at the matching
/// layer).
pub const MAX_RECORD_BYTES: usize = 32 * 1024;
/// Flush a destination's record batch once its buffer reaches this.
pub const FLUSH_BYTES: usize = 48 * 1024;
/// Capacity of the posted per-source flow receives.
pub const LISTENER_CAPACITY: usize = FLUSH_BYTES + MAX_RECORD_BYTES + 64;

/// A value that can ride a flow: self-describing encode/decode to
/// bytes. Each record is length-prefixed on the wire, so `decode` gets
/// exactly the bytes `encode` produced.
pub trait FlowData: Send + 'static + Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode a value from exactly the bytes a peer's `encode` wrote.
    fn decode(buf: &[u8]) -> Option<Self>;
}

impl FlowData for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(buf.get(..8)?.try_into().ok()?))
    }
}

impl FlowData for (u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Option<(u64, u64)> {
        Some((
            u64::from_le_bytes(buf.get(..8)?.try_into().ok()?),
            u64::from_le_bytes(buf.get(8..16)?.try_into().ok()?),
        ))
    }
}

impl FlowData for (u64, u64, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
        out.extend_from_slice(&self.2.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Option<(u64, u64, u64)> {
        Some((
            u64::from_le_bytes(buf.get(..8)?.try_into().ok()?),
            u64::from_le_bytes(buf.get(8..16)?.try_into().ok()?),
            u64::from_le_bytes(buf.get(16..24)?.try_into().ok()?),
        ))
    }
}

impl FlowData for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(buf: &[u8]) -> Option<Vec<u8>> {
        Some(buf.to_vec())
    }
}

/// An accumulating per-destination record batch (the `count ×
/// (ts, len, payload)` body of a records message).
#[derive(Debug, Default)]
pub struct OutBatch {
    /// Records in `buf`.
    pub count: u32,
    /// Encoded record bodies.
    pub buf: Vec<u8>,
}

impl OutBatch {
    /// Append one record. Panics if a single record exceeds
    /// [`MAX_RECORD_BYTES`] (the protocol's framing bound).
    pub fn push<T: FlowData>(&mut self, ts: Timestamp, value: &T) {
        self.buf.extend_from_slice(&ts.to_le_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        value.encode(&mut self.buf);
        let len = self.buf.len() - len_at - 4;
        assert!(
            len <= MAX_RECORD_BYTES,
            "flow record of {len} B exceeds the {MAX_RECORD_BYTES} B framing bound"
        );
        self.buf[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
        self.count += 1;
    }

    /// True once the batch should be flushed to keep messages under the
    /// listener capacity.
    pub fn should_flush(&self, flush_records: usize) -> bool {
        self.buf.len() >= FLUSH_BYTES || self.count as usize >= flush_records
    }

    /// Drain into a complete records message, or `None` if empty.
    pub fn take_message(&mut self) -> Option<Vec<u8>> {
        if self.count == 0 {
            return None;
        }
        let mut msg = Vec::with_capacity(5 + self.buf.len());
        msg.push(MSG_RECORDS);
        msg.extend_from_slice(&self.count.to_le_bytes());
        msg.append(&mut self.buf);
        self.count = 0;
        Some(msg)
    }
}

/// Build a progress (capability-delta gossip) message.
pub fn progress_message(deltas: &[(Timestamp, i64)]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(5 + 16 * deltas.len());
    msg.push(MSG_PROGRESS);
    msg.extend_from_slice(&(deltas.len() as u32).to_le_bytes());
    for &(t, d) in deltas {
        msg.extend_from_slice(&t.to_le_bytes());
        msg.extend_from_slice(&d.to_le_bytes());
    }
    msg
}

/// A decoded flow message.
#[derive(Debug, PartialEq, Eq)]
pub enum FlowMsg {
    /// Timestamped records, in send order.
    Records(Vec<(Timestamp, Vec<u8>)>),
    /// Capability deltas, in emission order.
    Progress(Vec<(Timestamp, i64)>),
}

/// Decode one flow message. `None` on malformed input (a protocol bug,
/// surfaced by the caller).
pub fn decode_message(data: &[u8]) -> Option<FlowMsg> {
    let kind = *data.first()?;
    let n = u32::from_le_bytes(data.get(1..5)?.try_into().ok()?) as usize;
    let mut pos = 5;
    match kind {
        MSG_RECORDS => {
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let ts = u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                let len =
                    u32::from_le_bytes(data.get(pos + 8..pos + 12)?.try_into().ok()?) as usize;
                let payload = data.get(pos + 12..pos + 12 + len)?.to_vec();
                records.push((ts, payload));
                pos += 12 + len;
            }
            (pos == data.len()).then_some(FlowMsg::Records(records))
        }
        MSG_PROGRESS => {
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                let ts = u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                let d = i64::from_le_bytes(data.get(pos + 8..pos + 16)?.try_into().ok()?);
                deltas.push((ts, d));
                pos += 16;
            }
            (pos == data.len()).then_some(FlowMsg::Progress(deltas))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        let mut b = OutBatch::default();
        b.push(3, &(7u64, 9u64));
        b.push(5, &(1u64, 2u64));
        let msg = b.take_message().unwrap();
        assert_eq!(msg[0], MSG_RECORDS);
        let FlowMsg::Records(recs) = decode_message(&msg).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 3);
        assert_eq!(<(u64, u64)>::decode(&recs[0].1), Some((7, 9)));
        assert_eq!(recs[1].0, 5);
        assert_eq!(<(u64, u64)>::decode(&recs[1].1), Some((1, 2)));
        // Batch is drained.
        assert!(b.take_message().is_none());
    }

    #[test]
    fn progress_roundtrip() {
        let msg = progress_message(&[(0, -1), (10, 1)]);
        assert_eq!(
            decode_message(&msg),
            Some(FlowMsg::Progress(vec![(0, -1), (10, 1)]))
        );
    }

    #[test]
    fn truncated_messages_decode_to_none() {
        let msg = progress_message(&[(0, -1)]);
        assert!(decode_message(&msg[..msg.len() - 1]).is_none());
        let mut b = OutBatch::default();
        b.push(1, &42u64);
        let msg = b.take_message().unwrap();
        assert!(decode_message(&msg[..msg.len() - 1]).is_none());
        assert!(decode_message(&[9, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn flush_thresholds() {
        let mut b = OutBatch::default();
        b.push(0, &vec![0u8; 1024]);
        assert!(!b.should_flush(1024));
        assert!(b.should_flush(1));
        for _ in 0..47 {
            b.push(0, &vec![0u8; 1024]);
        }
        assert!(b.should_flush(1024), "48 KiB of payload trips the flush");
        let msg = b.take_message().unwrap();
        assert!(msg.len() <= LISTENER_CAPACITY);
    }
}

//! # mpfa-resil — fault tolerance as user-space progress machinery
//!
//! The paper's thesis is that explicit, interoperable progress lets
//! MPI-adjacent machinery move *into user space*. A failure detector is
//! exactly such machinery: it is "just" another piece of asynchronous
//! work that must be driven alongside communication — so this crate
//! implements it as an `MPIX_Async` task ([`FailureDetector::install`]
//! starts it with [`mpfa_core::Stream::async_start`]) collated into the
//! same progress engine that moves the messages whose peers it watches.
//!
//! The model is ULFM's (User-Level Failure Mitigation):
//!
//! * **fail-stop** — a failed rank stops executing and never comes
//!   back; there are no byzantine or transient failures. Once a rank
//!   enters the failure set it stays there.
//! * **local detection** — each rank's detector watches *its own*
//!   transport ([`Transport::peer_alive`] / [`Transport::dead_peers`])
//!   plus optional per-peer heartbeat quiet-period timeouts for
//!   substrates whose connections cannot break (the simulated fabric).
//!   Detection is therefore not symmetric or simultaneous across
//!   ranks — agreement about failures is a *communicator* operation
//!   (`Comm::agree` in `mpfa-mpi`), not the detector's job.
//! * **epoch-stamped publication** — every change of the failure set
//!   bumps an epoch counter, so consumers can cheaply ask "anything new
//!   since I last looked?" without diffing sets.
//!
//! The detector is deliberately below the MPI layer: it knows ranks and
//! transports, not communicators or requests. `mpfa-mpi` subscribes to
//! it to fail outstanding operations and drive revoke/shrink/agree.

#![warn(missing_docs)]

pub mod detector;

pub use detector::{DetectorConfig, FailureDetector, FailureSet};

//! The failure detector: an epoch-stamped failure set maintained by an
//! async progress task.
//!
//! One [`FailureDetector`] lives per rank. [`FailureDetector::install`]
//! starts its poll loop on a stream (the paper's `MPIX_Async_start`
//! pattern), where every sweep it merges three evidence sources:
//!
//! 1. the transport's own liveness accounting — a wire backend marks a
//!    peer dead once its reconnect budget is exhausted or a chaos kill
//!    switch severed it ([`Transport::peer_alive`]);
//! 2. per-peer heartbeat quiet periods — armed lazily by
//!    [`FailureDetector::heartbeat`] calls, for substrates where
//!    connections cannot break (the simulated fabric) or where silence
//!    is the only symptom;
//! 3. manual reports ([`FailureDetector::report_failure`]) — failure
//!    injection, or gossip from another rank that already knows.
//!
//! Failures are fail-stop: the set only grows, and each growth bumps
//! the epoch (and the `ranks_failed` / `detector_epochs` counters).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mpfa_core::sync::Mutex;
use mpfa_core::{wtime, AsyncPoll, Stream};
use mpfa_transport::{SharedTransport, Transport};

/// Tuning knobs for the detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Seconds a heartbeat-armed peer may stay silent before being
    /// declared failed. Only peers for which
    /// [`FailureDetector::heartbeat`] was called at least once are
    /// subject to this timeout (a peer that never produced a heartbeat
    /// cannot "go quiet").
    pub quiet_period: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { quiet_period: 0.25 }
    }
}

/// An epoch-stamped snapshot of the failure set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSet {
    /// Epoch at which this snapshot was taken. Bumped once per change
    /// of the set; epoch 0 means "no failure ever detected".
    pub epoch: u64,
    /// World ranks known (by this rank) to have failed, ascending.
    pub failed: BTreeSet<usize>,
}

impl FailureSet {
    /// True when nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }
}

struct DetectorInner {
    my_rank: usize,
    ranks: usize,
    cfg: DetectorConfig,
    /// The published failure set; `epoch` mirrors `set.epoch` so
    /// readers can poll for news without taking the lock.
    set: Mutex<FailureSet>,
    epoch: AtomicU64,
    /// Per-peer last-heartbeat time as `f64::to_bits`; 0 = never armed.
    last_heard: Vec<AtomicU64>,
    /// Manually reported failures, merged on the next poll.
    reported: Mutex<BTreeSet<usize>>,
    stopped: AtomicBool,
}

/// A per-rank failure detector. Cheap to clone (shared state); see the
/// module docs for semantics.
#[derive(Clone)]
pub struct FailureDetector {
    inner: Arc<DetectorInner>,
}

impl FailureDetector {
    /// A detector for `my_rank` in a world of `ranks`.
    pub fn new(my_rank: usize, ranks: usize, cfg: DetectorConfig) -> FailureDetector {
        assert!(my_rank < ranks, "rank {my_rank} out of range ({ranks})");
        FailureDetector {
            inner: Arc::new(DetectorInner {
                my_rank,
                ranks,
                cfg,
                set: Mutex::new(FailureSet {
                    epoch: 0,
                    failed: BTreeSet::new(),
                }),
                epoch: AtomicU64::new(0),
                last_heard: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
                reported: Mutex::new(BTreeSet::new()),
                stopped: AtomicBool::new(false),
            }),
        }
    }

    /// Start the detector's poll loop on `stream`, watching `transport`
    /// — the `MPIX_Async_start` moment. The task runs until
    /// [`FailureDetector::stop`]; stop it before draining the stream.
    pub fn install<M: Send + 'static>(&self, stream: &Stream, transport: SharedTransport<M>) {
        let det = self.clone();
        stream.async_start(move |_t| {
            if det.inner.stopped.load(Ordering::Acquire) {
                return AsyncPoll::Done;
            }
            if det.sweep(Some(transport.as_ref())) {
                AsyncPoll::Progress
            } else {
                AsyncPoll::Pending
            }
        });
    }

    /// One detection pass without a transport (heartbeats and manual
    /// reports only) — what [`FailureDetector::install`]'s task runs
    /// each poll, exposed for transport-less embedding and tests.
    pub fn poll_once(&self) -> bool {
        self.sweep(None::<&dyn Transport<u8>>)
    }

    /// One full detection pass against `transport` — exactly what the
    /// installed poll task runs each sweep, exposed so a deterministic
    /// simulation can *inject* detector ticks at schedule-chosen points
    /// instead of waiting for the stream's own poll cadence. Returns
    /// true if the failure set grew.
    pub fn tick<M: Send>(&self, transport: Option<&dyn Transport<M>>) -> bool {
        self.sweep(transport)
    }

    /// Merge all evidence; true if the failure set grew.
    fn sweep<M: Send>(&self, transport: Option<&dyn Transport<M>>) -> bool {
        let inner = &self.inner;
        let now = wtime();
        let mut newly: BTreeSet<usize> = BTreeSet::new();

        if let Some(t) = transport {
            // Cheap short-circuit: scan per-peer liveness only when the
            // transport says anything died at all.
            if t.dead_peers() > 0 {
                for r in (0..inner.ranks).filter(|&r| r != inner.my_rank) {
                    if !t.peer_alive(r) {
                        newly.insert(r);
                    }
                }
            }
        }

        for r in (0..inner.ranks).filter(|&r| r != inner.my_rank) {
            let bits = inner.last_heard[r].load(Ordering::Acquire);
            if bits != 0 && now - f64::from_bits(bits) > inner.cfg.quiet_period {
                newly.insert(r);
            }
        }

        {
            let reported = inner.reported.lock();
            newly.extend(reported.iter().copied());
        }

        let mut set = inner.set.lock();
        let before = set.failed.len();
        set.failed.extend(newly);
        let grew = set.failed.len() - before;
        if grew > 0 {
            set.epoch += 1;
            inner.epoch.store(set.epoch, Ordering::Release);
            let counters = mpfa_obs::global_counters();
            counters
                .ranks_failed
                .fetch_add(grew as u64, Ordering::Relaxed);
            counters.detector_epochs.fetch_add(1, Ordering::Relaxed);
        }
        grew > 0
    }

    /// Record evidence of life from `rank` (any received message or
    /// other activity), arming its quiet-period timeout.
    pub fn heartbeat(&self, rank: usize) {
        if rank < self.inner.ranks {
            self.inner.last_heard[rank].store(wtime().to_bits(), Ordering::Release);
        }
    }

    /// Report `rank` as failed out-of-band (failure injection, or a
    /// notification from a rank that detected it first). Takes effect
    /// on the next poll.
    pub fn report_failure(&self, rank: usize) {
        if rank < self.inner.ranks && rank != self.inner.my_rank {
            self.inner.reported.lock().insert(rank);
        }
    }

    /// The current epoch — one atomic load; 0 until the first failure.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Snapshot the failure set.
    pub fn failure_set(&self) -> FailureSet {
        self.inner.set.lock().clone()
    }

    /// Is `rank` in the failure set?
    pub fn is_failed(&self, rank: usize) -> bool {
        self.inner.set.lock().failed.contains(&rank)
    }

    /// World ranks *not* in the failure set, ascending (includes self).
    pub fn alive_ranks(&self) -> Vec<usize> {
        let set = self.inner.set.lock();
        (0..self.inner.ranks)
            .filter(|r| !set.failed.contains(r))
            .collect()
    }

    /// This detector's own rank.
    pub fn rank(&self) -> usize {
        self.inner.my_rank
    }

    /// World size the detector watches.
    pub fn ranks(&self) -> usize {
        self.inner.ranks
    }

    /// Make the installed poll task finish on its next poll (call
    /// before draining/finalizing the stream, or the drain would wait
    /// on a task that never ends).
    pub fn stop(&self) {
        self.inner.stopped.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = self.failure_set();
        f.debug_struct("FailureDetector")
            .field("rank", &self.inner.my_rank)
            .field("ranks", &self.inner.ranks)
            .field("epoch", &set.epoch)
            .field("failed", &set.failed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpfa_transport::{loopback_mesh, mesh_kill, TransportKind, WireOpts};

    #[test]
    fn fresh_detector_sees_no_failures() {
        let d = FailureDetector::new(0, 4, DetectorConfig::default());
        assert_eq!(d.epoch(), 0);
        assert!(d.failure_set().is_empty());
        assert_eq!(d.alive_ranks(), vec![0, 1, 2, 3]);
        assert!(!d.poll_once());
    }

    #[test]
    fn transport_kill_is_detected_via_progress() {
        let mesh = loopback_mesh::<Vec<u8>>(TransportKind::Sim, 3, 1, WireOpts::default()).unwrap();
        let stream = Stream::create();
        let d = FailureDetector::new(0, 3, DetectorConfig::default());
        d.install(&stream, mesh[0].clone());
        stream.progress();
        assert_eq!(d.epoch(), 0);

        mesh_kill(&mesh, 2);
        stream.progress();
        let set = d.failure_set();
        assert_eq!(set.epoch, 1);
        assert_eq!(set.failed.into_iter().collect::<Vec<_>>(), vec![2]);
        assert!(d.is_failed(2));
        assert_eq!(d.alive_ranks(), vec![0, 1]);

        // Fail-stop: the set never shrinks, the epoch only moves on news.
        stream.progress();
        assert_eq!(d.epoch(), 1);

        d.stop();
        assert!(stream.drain(1.0), "stopped detector must let drain finish");
    }

    #[test]
    fn quiet_period_fails_armed_peers_only() {
        let d = FailureDetector::new(0, 3, DetectorConfig { quiet_period: 0.0 });
        // Peer 2 never heartbeated: exempt from the quiet-period rule.
        d.heartbeat(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(d.poll_once());
        assert!(d.is_failed(1));
        assert!(!d.is_failed(2));
        assert_eq!(d.epoch(), 1);
    }

    #[test]
    fn heartbeats_keep_a_peer_alive() {
        let d = FailureDetector::new(0, 2, DetectorConfig { quiet_period: 60.0 });
        d.heartbeat(1);
        assert!(!d.poll_once());
        assert!(!d.is_failed(1));
    }

    #[test]
    fn manual_report_and_epoch_batching() {
        let d = FailureDetector::new(1, 4, DetectorConfig::default());
        d.report_failure(0);
        d.report_failure(3);
        d.report_failure(1); // self-reports are ignored
        assert!(d.poll_once());
        let set = d.failure_set();
        // Two failures merged in one sweep: one epoch bump.
        assert_eq!(set.epoch, 1);
        assert_eq!(set.failed.iter().copied().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(d.alive_ranks(), vec![1, 2]);
    }
}

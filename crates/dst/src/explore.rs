//! Schedule fuzzing: run one scenario under many seeds, report the
//! first seed that breaks it, replay it on demand.
//!
//! [`check`] is the test-facing entry point. By default it derives a
//! deterministic seed list from the scenario name and explores them all;
//! two environment variables change that:
//!
//! * `MPFA_DST_SEED=<u64>` — replay exactly one seed (what you set after
//!   a failure to debug it);
//! * `MPFA_DST_SEEDS=<n>` — override how many seeds to explore (CI
//!   nightlies crank this up).
//!
//! On failure the seed, panic message, and full schedule trace are
//! written to `target/dst-failures/<name>-<seed>.log` (CI uploads these
//! as artifacts) and the panic re-raised with replay instructions.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

use crate::rng::SimRng;
use crate::sim::{Sim, SimConfig};

/// One broken schedule: everything needed to reproduce and debug it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The seed that produced the failing schedule.
    pub seed: u64,
    /// The scenario's panic message.
    pub message: String,
    /// The full schedule trace up to the failure.
    pub trace: String,
}

/// A deterministic list of `n` seeds derived from `base`.
pub fn seeds(base: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(base);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// FNV-1a of a scenario name — the per-scenario seed-list base, so
/// different scenarios explore different schedule regions by default.
pub fn name_base(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `scenario` once per seed, stopping at the first failure. Returns
/// the number of schedules explored on success. Each explored schedule
/// (passing or failing) bumps the `dst_schedules_explored` counter.
pub fn explore(
    cfg: &SimConfig,
    seed_list: impl IntoIterator<Item = u64>,
    scenario: impl Fn(&mut Sim),
) -> Result<u64, Failure> {
    let mut explored = 0u64;
    for seed in seed_list {
        let mut sim = Sim::new(cfg.with_seed(seed));
        let outcome = catch_unwind(AssertUnwindSafe(|| scenario(&mut sim)));
        explored += 1;
        mpfa_obs::global_counters()
            .dst_schedules_explored
            .fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                sim.shutdown();
            }
            Err(payload) => {
                return Err(Failure {
                    seed,
                    message: panic_message(payload),
                    trace: sim.trace_string(),
                });
            }
        }
    }
    Ok(explored)
}

/// The replay seed from `MPFA_DST_SEED`, if set.
pub fn replay_seed() -> Option<u64> {
    std::env::var("MPFA_DST_SEED").ok()?.trim().parse().ok()
}

fn seed_count(default_seeds: usize) -> usize {
    std::env::var("MPFA_DST_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default_seeds)
}

/// Test entry point: explore `default_seeds` schedules of `scenario`
/// (honoring `MPFA_DST_SEED` / `MPFA_DST_SEEDS`), panicking with replay
/// instructions — and writing a `target/dst-failures` artifact — on the
/// first failing schedule. Returns the number of schedules explored.
pub fn check(
    name: &str,
    cfg: &SimConfig,
    default_seeds: usize,
    scenario: impl Fn(&mut Sim),
) -> u64 {
    let seed_list = match replay_seed() {
        Some(seed) => vec![seed],
        None => seeds(name_base(name), seed_count(default_seeds)),
    };
    match explore(cfg, seed_list, scenario) {
        Ok(explored) => explored,
        Err(failure) => {
            let artifact = write_artifact(name, &failure);
            panic!(
                "dst scenario '{name}' failed under seed {seed}\n\
                 panic: {message}\n\
                 replay: MPFA_DST_SEED={seed} cargo test {name}\n\
                 trace artifact: {artifact}\n\n{trace}",
                seed = failure.seed,
                message = failure.message,
                trace = failure.trace,
            );
        }
    }
}

/// Best-effort failure artifact for CI upload; returns its path (or a
/// note that writing failed).
fn write_artifact(name: &str, failure: &Failure) -> String {
    let dir = std::env::var("MPFA_DST_ARTIFACT_DIR")
        .unwrap_or_else(|_| "target/dst-failures".to_string());
    let path = format!("{dir}/{name}-{seed}.log", seed = failure.seed);
    let body = format!(
        "scenario: {name}\nseed: {seed}\npanic: {message}\n\n{trace}",
        seed = failure.seed,
        message = failure.message,
        trace = failure.trace,
    );
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
        Ok(()) => path,
        Err(e) => format!("(unwritable: {e})"),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_lists_are_deterministic_and_name_scoped() {
        assert_eq!(seeds(1, 8), seeds(1, 8));
        assert_ne!(seeds(1, 8), seeds(2, 8));
        assert_ne!(name_base("a"), name_base("b"));
        assert_eq!(seeds(name_base("x"), 4), seeds(name_base("x"), 4));
    }

    #[test]
    fn explore_counts_passing_schedules() {
        let before = mpfa_obs::global_counters()
            .dst_schedules_explored
            .load(Ordering::Relaxed);
        let cfg = SimConfig::ranks(1);
        let explored = explore(&cfg, seeds(42, 3), |sim| {
            sim.run_steps(8);
        })
        .expect("trivial scenario must pass");
        assert_eq!(explored, 3);
        let after = mpfa_obs::global_counters()
            .dst_schedules_explored
            .load(Ordering::Relaxed);
        assert!(after >= before + 3);
    }

    #[test]
    fn explore_reports_the_failing_seed_with_trace() {
        let cfg = SimConfig::ranks(1);
        let list = seeds(7, 5);
        let bad = list[2];
        let failure = explore(&cfg, list.clone(), |sim| {
            sim.run_steps(4);
            assert_ne!(sim.seed(), bad, "planted failure");
        })
        .expect_err("seed {bad} must fail");
        assert_eq!(failure.seed, bad);
        assert!(failure.message.contains("planted failure"));
        assert!(failure.trace.starts_with(&format!("dst trace seed={bad}")));
    }
}

//! Canned scenarios: harness self-tests and planted bugs.
//!
//! Two kinds live here:
//!
//! * **invariant fixtures** ([`pingpong`], [`tagged_pair_fifo`]) — pass
//!   under *every* legal schedule; run them under many seeds to check
//!   the runtime, and to check the harness produces legal schedules;
//! * **planted bugs** ([`planted_wildcard_order_bug`]) — deliberately
//!   wrong assertions that only a schedule-dependent message ordering
//!   exposes. The explorer must find a breaking seed quickly; that is
//!   the acceptance test for the whole DST subsystem.

use crate::sim::Sim;

/// Nonblocking two-rank ping-pong; must hold under every schedule.
pub fn pingpong(sim: &mut Sim) {
    let comms = sim.world_comms();
    let recv0 = comms[0].irecv::<u32>(1, 1, 2).unwrap();
    let recv1 = comms[1].irecv::<u32>(1, 0, 1).unwrap();
    let ping = comms[0].isend(&[7u32], 1, 1).unwrap();
    let r1 = recv1.request();
    assert!(
        sim.run_until(|| ping.is_complete() && r1.is_complete()),
        "ping never landed"
    );
    let (data, st) = recv1.take();
    assert_eq!((data, st.source, st.tag), (vec![7], 0, 1));

    let pong = comms[1].isend(&[8u32], 0, 2).unwrap();
    let r0 = recv0.request();
    assert!(
        sim.run_until(|| pong.is_complete() && r0.is_complete()),
        "pong never landed"
    );
    let (data, st) = recv0.take();
    assert_eq!((data, st.source, st.tag), (vec![8], 1, 2));
}

/// MPI non-overtaking: two same-`(src, dst, tag)` sends must match two
/// posted receives in order, under every schedule the controller can
/// produce — the delivery hook may delay packets but can never break
/// per-channel FIFO.
pub fn tagged_pair_fifo(sim: &mut Sim) {
    let comms = sim.world_comms();
    let first = comms[1].irecv::<u64>(1, 0, 9).unwrap();
    let second = comms[1].irecv::<u64>(1, 0, 9).unwrap();
    let s1 = comms[0].isend(&[111u64], 1, 9).unwrap();
    let s2 = comms[0].isend(&[222u64], 1, 9).unwrap();
    let (r1, r2) = (first.request(), second.request());
    assert!(
        sim.run_until(|| s1.is_complete()
            && s2.is_complete()
            && r1.is_complete()
            && r2.is_complete()),
        "fifo pair never completed"
    );
    assert_eq!(first.take().0, vec![111], "same-channel sends overtook");
    assert_eq!(second.take().0, vec![222]);
}

/// **Deliberately buggy.** Rank 0 posts one `ANY_SOURCE` receive while
/// ranks 1 and 2 both send — then asserts the message came from rank 1.
/// MPI promises no such thing: whichever packet the schedule delivers
/// first matches. A correct explorer finds a breaking seed within a
/// few dozen schedules; a harness that *can't* break this is not
/// actually exploring orderings.
pub fn planted_wildcard_order_bug(sim: &mut Sim) {
    let comms = sim.world_comms();
    let recv = comms[0].irecv::<u32>(1, mpfa_mpi::ANY_SOURCE, 4).unwrap();
    let from1 = comms[1].isend(&[1u32], 0, 4).unwrap();
    let from2 = comms[2].isend(&[2u32], 0, 4).unwrap();
    let r = recv.request();
    assert!(
        sim.run_until(|| r.is_complete() && from1.is_complete() && from2.is_complete()),
        "wildcard recv never completed"
    );
    let (_, st) = recv.take();
    // The planted bug: baking in one arrival order.
    assert_eq!(st.source, 1, "wildcard recv matched rank {}", st.source);
}

/// **Deliberately buggy.** Rank 0 attaches continuations to two receives
/// fed by different senders and asserts the rank-1 continuation fires
/// first. Continuation firing order follows completion order, which is
/// schedule property, not a guarantee — the explorer must find a seed
/// where rank 2's message lands first. This is the continuation-path twin
/// of [`planted_wildcard_order_bug`]: it proves schedule exploration
/// reaches the deferred-callback machinery, not just request completion.
pub fn planted_continuation_order_bug(sim: &mut Sim) {
    use std::sync::{Arc, Mutex};
    let comms = sim.world_comms();
    let order: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let from1 = comms[0].irecv::<u32>(1, 1, 6).unwrap();
    let from2 = comms[0].irecv::<u32>(1, 2, 6).unwrap();
    for (req, src) in [(from1.request(), 1), (from2.request(), 2)] {
        let order = order.clone();
        req.on_complete(move |res| {
            res.expect("recv failed");
            order.lock().unwrap().push(src);
        });
    }
    let s1 = comms[1].isend(&[1u32], 0, 6).unwrap();
    let s2 = comms[2].isend(&[2u32], 0, 6).unwrap();
    assert!(
        sim.run_until(|| {
            s1.is_complete() && s2.is_complete() && order.lock().unwrap().len() == 2
        }),
        "continuations never fired"
    );
    let got = order.lock().unwrap().clone();
    // The planted bug: baking in one completion order.
    assert_eq!(got, vec![1, 2], "continuations fired as {got:?}");
}

/// **Deliberately buggy.** Two flows close at the same instant, each
/// held open by a different rank, and the observer bakes in the order
/// its two frontier-close callbacks fire. The closing gossip rides two
/// *independent* channels (rank 1 → 0 and rank 2 → 0), so arrival order
/// is a schedule property: flow frontiers promise monotonicity and
/// exactness, never cross-flow ordering. The explorer must find a seed
/// where flow B's gossip lands (and a poll runs) before flow A's — the
/// acceptance test that schedule exploration reaches the mpfa-flow
/// progress-exchange and its continuation-driven frontier callbacks.
pub fn planted_frontier_regression_bug(sim: &mut Sim) {
    use mpfa_flow::{FlowContext, TS_CLOSED};
    use std::sync::{Arc, Mutex};

    let fxs: Vec<FlowContext> = sim.procs().iter().map(FlowContext::install).collect();
    let comms = sim.world_comms();
    let a: Vec<_> = fxs
        .iter()
        .zip(&comms)
        .map(|(fx, c)| fx.create::<u64>(c))
        .collect();
    let b: Vec<_> = fxs
        .iter()
        .zip(&comms)
        .map(|(fx, c)| fx.create::<u64>(c))
        .collect();

    let order: Arc<Mutex<Vec<char>>> = Arc::new(Mutex::new(Vec::new()));
    for (rx, tag) in [(&a[0].1, 'a'), (&b[0].1, 'b')] {
        let order = order.clone();
        rx.on_frontier_advance(TS_CLOSED, move |ok| {
            assert!(ok, "flow abandoned mid-scenario");
            order.lock().unwrap().push(tag);
        });
    }

    // Rank 1 is the last holder of flow A, rank 2 of flow B.
    a[0].0.close().unwrap();
    a[2].0.close().unwrap();
    b[0].0.close().unwrap();
    b[1].0.close().unwrap();
    // Both last holders release at the same instant.
    a[1].0.close().unwrap();
    b[2].0.close().unwrap();

    let watched = order.clone();
    assert!(
        sim.run_until(|| watched.lock().unwrap().len() == 2),
        "flow closures never reached the observer"
    );
    let got = order.lock().unwrap().clone();
    for fx in &fxs {
        fx.shutdown();
    }
    // The planted bug: baking in one gossip arrival order.
    assert_eq!(got, vec!['a', 'b'], "frontier callbacks fired as {got:?}");
}

/// **Deliberately buggy.** A persistent pair proves one clean round,
/// re-fires a rendezvous-sized round, and then the receiver revokes the
/// communicator while the transfer is on the wire — and the scenario
/// asserts the in-flight round still completes *cleanly*, as if the
/// pre-matched slot survived the epoch change. The library invalidates
/// pinned slots on revoke (resilience `drain_revoked` →
/// `fail_persist`), so whether the round sneaks through depends on the
/// race between the revoke sweep and the chunked data: a
/// schedule-dependent escape the explorer must close. Run with a
/// resilience-enabled [`crate::sim::SimConfig`].
pub fn planted_stale_persist_slot_bug(sim: &mut Sim) {
    let comms = sim.world_comms();
    // Rendezvous-sized: the round takes several schedule steps to
    // drain, leaving a window for the revoke to land mid-transfer.
    let payload = vec![0xA5u8; 192 * 1024];
    let mut ps = comms[0]
        .send_init_bytes(payload.clone(), 1, 9)
        .expect("send_init");
    let mut pr = comms[1]
        .recv_init_bytes(payload.len(), 0, 9)
        .expect("recv_init");

    // Round 0 proves the pre-matched pair works.
    pr.start().expect("arm round 0");
    let r0 = ps.start().expect("fire round 0");
    let pr0 = pr.request().expect("armed");
    assert!(
        sim.run_until(|| r0.is_complete() && pr0.is_complete()),
        "first persistent round never completed"
    );
    pr.wait().expect("round 0");

    // Round 1 is in flight when the receiver revokes the communicator.
    pr.start().expect("arm round 1");
    let r1 = ps.start().expect("fire round 1");
    comms[1].revoke().expect("revoke");

    // The planted bug: "the round was already on the wire, surely it
    // finishes". On schedules where the revoke sweep wins, the slot is
    // invalidated mid-transfer and the round errors (or never
    // completes) instead.
    assert!(
        sim.run_until(|| r1.is_complete() && r1.error().is_none()),
        "stale persistent slot: in-flight round swallowed by the revoke epoch"
    );
}

/// **Deliberately buggy.** The receiver side of the reactor's readiness
/// contract, with the classic lost-wakeup bug planted: completions mark
/// a per-peer bit in a real [`mpfa_transport::ReadySet`], and the pump
/// clears the bit with `take` *before* a bounded drain that sweeps
/// exactly one completion. `ReadySet::mark` coalesces — two completions
/// landing inside one schedule step set the bit once — so the bounded
/// drain strands the second frame with the bit already clear: peer
/// readable, never swept again. A correct pump drains to empty after
/// `take`, or re-marks when it stops early. Whether two completions
/// coalesce is a schedule property (it takes consecutive sender-side
/// progress steps before the receiver's sweep), which makes this the
/// reactor twin of [`planted_wildcard_order_bug`].
pub fn planted_lost_wakeup_bug(sim: &mut Sim) {
    use mpfa_transport::ReadySet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const FRAMES: usize = 4;
    let comms = sim.world_comms();
    let ready = Arc::new(ReadySet::new(2));
    // Completions the pump has not swept yet — the stand-in for "bytes
    // sitting in the peer's ring".
    let pending = Arc::new(AtomicUsize::new(0));
    let swept = Arc::new(AtomicUsize::new(0));

    let recvs: Vec<_> = (0..FRAMES)
        .map(|_| comms[0].irecv::<u32>(1, 1, 7).unwrap())
        .collect();
    for r in &recvs {
        let (ready, pending) = (ready.clone(), pending.clone());
        r.request().on_complete(move |res| {
            res.expect("recv failed");
            pending.fetch_add(1, Ordering::SeqCst);
            // No-op when the bit is already set: the coalescing that a
            // correct pump must tolerate and this one does not.
            ready.mark(1);
        });
    }
    let sends: Vec<_> = (0..FRAMES)
        .map(|k| comms[1].isend(&[k as u32], 0, 7).unwrap())
        .collect();

    // The planted bug: bit cleared first, then a drain bounded to one
    // frame. One mark covering two completions sweeps only one.
    let ok = sim.run_until(|| {
        if ready.take(1) && pending.load(Ordering::SeqCst) > 0 {
            pending.fetch_sub(1, Ordering::SeqCst);
            swept.fetch_add(1, Ordering::SeqCst);
        }
        sends.iter().all(|s| s.is_complete()) && swept.load(Ordering::SeqCst) == FRAMES
    });
    assert!(
        ok,
        "reactor wakeup lost: peer readable but never swept ({}/{FRAMES} frames)",
        swept.load(Ordering::SeqCst)
    );
}

#[cfg(test)]
mod tests {
    use crate::explore::{check, explore, seeds, Failure};
    use crate::sim::SimConfig;

    #[test]
    fn pingpong_holds_under_many_schedules() {
        let explored = check(
            "fixture_pingpong",
            &SimConfig::ranks(2),
            16,
            super::pingpong,
        );
        assert!(explored >= 1);
    }

    #[test]
    fn fifo_pair_holds_under_many_schedules() {
        check(
            "fixture_tagged_pair_fifo",
            &SimConfig::ranks(2),
            16,
            super::tagged_pair_fifo,
        );
    }

    /// The continuation twin of the planted-bug acceptance test: a
    /// schedule-dependent continuation firing order must be caught within
    /// 64 seeds and replay identically.
    #[test]
    fn planted_continuation_bug_is_caught_within_64_seeds() {
        let cfg = SimConfig::ranks(3);
        let Failure {
            seed,
            message,
            trace,
        } = explore(
            &cfg,
            seeds(
                crate::explore::name_base("planted_continuation_order_bug"),
                64,
            ),
            super::planted_continuation_order_bug,
        )
        .expect_err("the planted continuation bug survived 64 schedules");
        assert!(
            message.contains("continuations fired as [2, 1]"),
            "unexpected failure mode: {message}"
        );
        assert!(trace.starts_with(&format!("dst trace seed={seed}")));
        let replay = explore(&cfg, [seed], super::planted_continuation_order_bug)
            .expect_err("failing seed must fail on replay");
        assert_eq!(replay.seed, seed);
        assert_eq!(replay.message, message);
        assert_eq!(replay.trace, trace, "replay trace must be byte-identical");
    }

    /// The mpfa-flow twin of the planted-bug acceptance tests: a
    /// schedule-dependent frontier-callback ordering across two flows
    /// must be caught within 64 seeds and replay byte-identically.
    #[test]
    fn planted_frontier_bug_is_caught_within_64_seeds() {
        let cfg = SimConfig::ranks(3);
        let Failure {
            seed,
            message,
            trace,
        } = explore(
            &cfg,
            seeds(
                crate::explore::name_base("planted_frontier_regression_bug"),
                64,
            ),
            super::planted_frontier_regression_bug,
        )
        .expect_err("the planted frontier bug survived 64 schedules");
        assert!(
            message.contains("frontier callbacks fired as ['b', 'a']"),
            "unexpected failure mode: {message}"
        );
        assert!(trace.starts_with(&format!("dst trace seed={seed}")));
        let replay = explore(&cfg, [seed], super::planted_frontier_regression_bug)
            .expect_err("failing seed must fail on replay");
        assert_eq!(replay.seed, seed);
        assert_eq!(replay.message, message);
        assert_eq!(replay.trace, trace, "replay trace must be byte-identical");
    }

    /// The subsystem's acceptance test: the planted ordering bug must be
    /// caught within 64 explored seeds, and the failure must carry the
    /// seed + trace needed to replay it.
    #[test]
    fn planted_ordering_bug_is_caught_within_64_seeds() {
        let cfg = SimConfig::ranks(3);
        let Failure {
            seed,
            message,
            trace,
        } = explore(
            &cfg,
            seeds(crate::explore::name_base("planted_wildcard_order_bug"), 64),
            super::planted_wildcard_order_bug,
        )
        .expect_err("the planted bug survived 64 schedules — the explorer is not exploring");
        assert!(
            message.contains("wildcard recv matched rank 2"),
            "unexpected failure mode: {message}"
        );
        assert!(trace.starts_with(&format!("dst trace seed={seed}")));
        // The replay contract: the same seed fails the same way.
        let replay = explore(&cfg, [seed], super::planted_wildcard_order_bug)
            .expect_err("failing seed must fail on replay");
        assert_eq!(replay.seed, seed);
        assert_eq!(replay.message, message);
    }

    /// The reactor twin of the planted-bug acceptance tests: a pump
    /// that clears the readiness bit before a bounded drain must be
    /// caught losing a coalesced wakeup within 64 seeds and replay
    /// byte-identically — proving schedule exploration reaches the
    /// mark/take coalescing window, not just message ordering.
    #[test]
    fn planted_lost_wakeup_bug_is_caught_within_64_seeds() {
        let cfg = SimConfig::ranks(2);
        let Failure {
            seed,
            message,
            trace,
        } = explore(
            &cfg,
            seeds(crate::explore::name_base("planted_lost_wakeup_bug"), 64),
            super::planted_lost_wakeup_bug,
        )
        .expect_err("the planted lost-wakeup bug survived 64 schedules");
        assert!(
            message.contains("reactor wakeup lost"),
            "unexpected failure mode: {message}"
        );
        assert!(trace.starts_with(&format!("dst trace seed={seed}")));
        let replay = explore(&cfg, [seed], super::planted_lost_wakeup_bug)
            .expect_err("failing seed must fail on replay");
        assert_eq!(replay.seed, seed);
        assert_eq!(replay.message, message);
        assert_eq!(replay.trace, trace, "replay trace must be byte-identical");
    }

    /// The persistent-slot twin of the planted-bug acceptance tests: a
    /// baked-in "pre-matched slots survive revoke" assumption must be
    /// caught within 64 seeds and replay byte-identically — proving
    /// schedule exploration reaches the slot-invalidation path in the
    /// resilience sweep, not just the matcher.
    #[test]
    fn planted_stale_persist_slot_bug_is_caught_within_64_seeds() {
        let cfg = SimConfig {
            resilience: Some(mpfa_mpi::DetectorConfig { quiet_period: 1e9 }),
            ..SimConfig::ranks(2)
        };
        let Failure {
            seed,
            message,
            trace,
        } = explore(
            &cfg,
            seeds(
                crate::explore::name_base("planted_stale_persist_slot_bug"),
                64,
            ),
            super::planted_stale_persist_slot_bug,
        )
        .expect_err("the planted stale-slot bug survived 64 schedules");
        assert!(
            message.contains("stale persistent slot"),
            "unexpected failure mode: {message}"
        );
        assert!(trace.starts_with(&format!("dst trace seed={seed}")));
        let replay = explore(&cfg, [seed], super::planted_stale_persist_slot_bug)
            .expect_err("failing seed must fail on replay");
        assert_eq!(replay.seed, seed);
        assert_eq!(replay.message, message);
        assert_eq!(replay.trace, trace, "replay trace must be byte-identical");
    }
}

//! Guards over the process-wide virtual clock.
//!
//! [`mpfa_obs::clock`]'s virtual-time override is process-global — it has
//! to be, because every layer (fabric arrivals, detector quiet periods,
//! drain deadlines) reads the same `wtime()`. But `cargo test` runs many
//! tests on parallel threads in one binary, so two tests touching the
//! clock would corrupt each other. These guards serialize access:
//!
//! * [`virtual_time`] — take the clock, freeze it at `t0`, and hold it
//!   until the guard drops (which restores real time);
//! * [`real_time`] — take the clock *without* freezing it, for tests that
//!   measure real elapsed time and must not race a virtual-time test in
//!   the same binary.
//!
//! Both block until the clock is free. A test that panicked while holding
//! the lock poisons nothing: the guards recover the mutex, and the
//! virtual override is always cleared on re-acquisition.

use std::sync::{Mutex, MutexGuard, OnceLock};

use mpfa_obs::clock;

fn time_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Exclusive ownership of the process clock, frozen at a virtual time.
/// Real time resumes when the guard drops.
pub struct VirtualClockGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Freeze the process clock at `t0` virtual seconds. Blocks until no
/// other thread holds the clock.
pub fn virtual_time(t0: f64) -> VirtualClockGuard {
    let lock = time_lock();
    // A previous holder that panicked may have left the override set;
    // reset unconditionally before installing ours.
    clock::virtual_stop();
    clock::virtual_start(t0);
    VirtualClockGuard { _lock: lock }
}

impl VirtualClockGuard {
    /// Current virtual time.
    pub fn now(&self) -> f64 {
        clock::wtime()
    }

    /// Advance the clock by `dt >= 0` seconds; returns the new now.
    pub fn advance(&self, dt: f64) -> f64 {
        clock::virtual_advance(dt)
    }

    /// Jump the clock to absolute time `t` (must not move backwards).
    pub fn set(&self, t: f64) {
        clock::virtual_set(t)
    }
}

impl Drop for VirtualClockGuard {
    fn drop(&mut self) {
        clock::virtual_stop();
    }
}

/// Exclusive ownership of the process clock, running in real time.
pub struct RealTimeGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Take the clock without freezing it. Use in tests that time real work
/// (sleeps, wall-clock deadlines) and share a binary with virtual-time
/// tests. Blocks until no other thread holds the clock.
pub fn real_time() -> RealTimeGuard {
    let lock = time_lock();
    clock::virtual_stop();
    RealTimeGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_guard_freezes_and_restores() {
        {
            let clk = virtual_time(10.0);
            assert_eq!(clk.now(), 10.0);
            assert_eq!(clk.advance(2.5), 12.5);
            clk.set(20.0);
            assert_eq!(mpfa_obs::clock::wtime(), 20.0);
            assert!(mpfa_obs::clock::virtual_enabled());
        }
        assert!(!mpfa_obs::clock::virtual_enabled());
    }

    #[test]
    fn real_time_guard_clears_any_override() {
        let _rt = real_time();
        assert!(!mpfa_obs::clock::virtual_enabled());
        let t0 = mpfa_obs::clock::wtime();
        let t1 = mpfa_obs::clock::wtime();
        assert!(t1 >= t0);
    }

    #[test]
    fn guards_serialize_across_threads() {
        let clk = virtual_time(100.0);
        let handle = std::thread::spawn(|| {
            // Blocks until the main thread's guard drops, then sees a
            // clean real-time clock.
            let _rt = real_time();
            mpfa_obs::clock::virtual_enabled()
        });
        // Give the spawned thread a chance to contend on the lock while
        // we still hold it and virtual time is active.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(clk.now(), 100.0);
        drop(clk);
        assert!(!handle.join().unwrap());
    }
}

//! The step-by-step record of one simulated run.
//!
//! Every schedule decision the controller makes — which rank progresses,
//! how far time advances, how a packet was delayed, what poll order a
//! sweep used — is appended here. The rendered trace is the determinism
//! contract: the same seed must produce a byte-identical string, and a
//! failing seed's trace is the artifact you diff against a passing one.
//!
//! Steps are also mirrored into the observability event rings as
//! [`mpfa_obs::EventKind::DstStep`] (when the `obs` feature is on), so a
//! Chrome-trace export interleaves schedule decisions with the runtime
//! events they caused.

use std::fmt::Write as _;

use mpfa_obs::EventKind;

/// One schedule decision.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// A rank's default stream ran one progress sweep.
    Progress { rank: usize },
    /// Virtual time advanced by `dt` seconds.
    Advance { dt: f64 },
    /// A rank's failure detector ran one injected detection pass.
    DetectorTick { rank: usize },
    /// A chaos kill of `victim` was scheduled for virtual time `at`.
    KillAt { victim: usize, at: f64 },
    /// The delivery hook delayed packet `seq` on the `src → dst` channel
    /// by `delay` seconds past its natural arrival.
    Deliver {
        src: usize,
        dst: usize,
        seq: u64,
        delay: f64,
    },
    /// A sweep polled `order.len()` user tasks in this permuted order.
    SweepOrder { rank: usize, order: Vec<usize> },
    /// Free-form scenario annotation.
    Note { text: String },
}

impl Action {
    /// Compact `(code, subject)` encoding for the obs event mirror.
    fn encode(&self) -> (u8, u32) {
        match self {
            Action::Progress { rank } => (1, *rank as u32),
            Action::Advance { .. } => (2, 0),
            Action::DetectorTick { rank } => (3, *rank as u32),
            Action::KillAt { victim, .. } => (4, *victim as u32),
            Action::Deliver { src, dst, .. } => (5, (*src as u32) << 16 | (*dst as u32)),
            Action::SweepOrder { rank, .. } => (6, *rank as u32),
            Action::Note { .. } => (7, 0),
        }
    }
}

/// One line of the trace: a schedule decision at a virtual time.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Ordinal of this decision within the run, from 0.
    pub step: u32,
    /// Virtual time at which the decision was made.
    pub t: f64,
    /// The decision.
    pub action: Action,
}

/// The full record of one seeded run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The seed that generated this schedule.
    pub seed: u64,
    /// Decisions in the order they were made.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// An empty trace for `seed`.
    pub fn new(seed: u64) -> Trace {
        Trace {
            seed,
            steps: Vec::new(),
        }
    }

    /// Append a decision at virtual time `t`, mirroring it into the obs
    /// event ring.
    pub fn push(&mut self, t: f64, action: Action) {
        let step = self.steps.len() as u32;
        let (code, subject) = action.encode();
        let seed = self.seed;
        mpfa_obs::record_at(t, || EventKind::DstStep {
            seed,
            step,
            action: code,
            subject,
        });
        self.steps.push(TraceStep { step, t, action });
    }

    /// Render the trace as a deterministic string: same steps, same
    /// bytes. Times print with nine fractional digits (nanosecond
    /// resolution at simulation scale).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dst trace seed={} steps={}",
            self.seed,
            self.steps.len()
        );
        for s in &self.steps {
            let _ = write!(out, "  [{:>5}] t={:<14.9} ", s.step, s.t);
            match &s.action {
                Action::Progress { rank } => {
                    let _ = writeln!(out, "progress rank={rank}");
                }
                Action::Advance { dt } => {
                    let _ = writeln!(out, "advance dt={dt:.9}");
                }
                Action::DetectorTick { rank } => {
                    let _ = writeln!(out, "detector-tick rank={rank}");
                }
                Action::KillAt { victim, at } => {
                    let _ = writeln!(out, "kill victim={victim} at={at:.9}");
                }
                Action::Deliver {
                    src,
                    dst,
                    seq,
                    delay,
                } => {
                    let _ = writeln!(out, "deliver {src}->{dst} seq={seq} delay={delay:.9}");
                }
                Action::SweepOrder { rank, order } => {
                    let _ = writeln!(out, "sweep-order rank={rank} order={order:?}");
                }
                Action::Note { text } => {
                    let _ = writeln!(out, "note {text}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let build = || {
            let mut t = Trace::new(99);
            t.push(0.0, Action::Progress { rank: 0 });
            t.push(0.0, Action::Advance { dt: 1e-6 });
            t.push(
                1e-6,
                Action::Deliver {
                    src: 1,
                    dst: 0,
                    seq: 7,
                    delay: 2.5e-7,
                },
            );
            t.push(
                1e-6,
                Action::SweepOrder {
                    rank: 2,
                    order: vec![2, 0, 1],
                },
            );
            t.push(
                1e-6,
                Action::Note {
                    text: "checkpoint".into(),
                },
            );
            t
        };
        let a = build().render();
        let b = build().render();
        assert_eq!(a, b);
        assert!(a.starts_with("dst trace seed=99 steps=5\n"));
        assert!(a.contains("deliver 1->0 seq=7 delay=0.000000250"));
        assert!(a.contains("sweep-order rank=2 order=[2, 0, 1]"));
        assert_eq!(build().steps[3].step, 3);
    }

    #[test]
    fn action_codes_are_distinct() {
        let actions = [
            Action::Progress { rank: 1 },
            Action::Advance { dt: 0.5 },
            Action::DetectorTick { rank: 1 },
            Action::KillAt { victim: 1, at: 2.0 },
            Action::Deliver {
                src: 0,
                dst: 1,
                seq: 0,
                delay: 0.0,
            },
            Action::SweepOrder {
                rank: 0,
                order: vec![],
            },
            Action::Note {
                text: String::new(),
            },
        ];
        let mut codes: Vec<u8> = actions.iter().map(|a| a.encode().0).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), actions.len());
    }
}

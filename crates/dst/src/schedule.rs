//! The schedule controller: one object that owns every nondeterminism
//! point of a simulated run.
//!
//! A [`Schedule`] is installed into the runtime through the hooks the
//! production layers expose for exactly this purpose:
//!
//! * [`mpfa_core::SweepOrder`] — permutes the order a stream's engine
//!   polls its user tasks each sweep;
//! * [`mpfa_fabric::DeliveryHook`] — perturbs packet arrival times
//!   (cross-channel reorder; per-channel FIFO is preserved by the fabric
//!   no matter what the hook returns).
//!
//! Every decision draws from one seeded [`SimRng`] and is appended to the
//! shared [`Trace`], so a run's behavior — and its trace bytes — are a
//! pure function of the seed. The simulation is cooperative and
//! single-threaded, which is what makes the draw *order* deterministic;
//! the mutexes here only satisfy the hooks' `Send + Sync` bounds.

use std::collections::HashMap;
use std::sync::Mutex;

use mpfa_core::{StreamId, SweepOrder};
use mpfa_fabric::DeliveryHook;
use mpfa_obs::clock;

use crate::rng::SimRng;
use crate::trace::{Action, Trace};

/// Knobs for how aggressively the schedule perturbs the run.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleCfg {
    /// Probability that a packet gets an extra delivery delay.
    pub reorder_prob: f64,
    /// Maximum extra delay, seconds (uniform in `[0, max)`).
    pub delivery_jitter: f64,
    /// Permute user-task poll order each sweep.
    pub shuffle_sweeps: bool,
}

impl Default for ScheduleCfg {
    fn default() -> Self {
        ScheduleCfg {
            reorder_prob: 0.5,
            delivery_jitter: 5e-6,
            shuffle_sweeps: true,
        }
    }
}

/// The seeded controller. Shared (via `Arc`) between the simulation
/// driver and the runtime hooks.
pub struct Schedule {
    seed: u64,
    cfg: ScheduleCfg,
    rng: Mutex<SimRng>,
    trace: Mutex<Trace>,
    /// Stream → world rank, so trace lines name ranks, not stream ids.
    ranks: Mutex<HashMap<StreamId, usize>>,
}

impl Schedule {
    /// A controller whose every decision derives from `seed`.
    pub fn new(seed: u64, cfg: ScheduleCfg) -> Schedule {
        let mut master = SimRng::new(seed);
        let rng = master.fork();
        Schedule::with_rng(seed, cfg, rng)
    }

    /// A controller drawing from an externally-forked rng stream (the
    /// simulation driver keeps a sibling fork for action selection, so
    /// the two decision streams never perturb each other).
    pub fn with_rng(seed: u64, cfg: ScheduleCfg, rng: SimRng) -> Schedule {
        Schedule {
            seed,
            cfg,
            rng: Mutex::new(rng),
            trace: Mutex::new(Trace::new(seed)),
            ranks: Mutex::new(HashMap::new()),
        }
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Tell the controller which rank owns `stream` (for trace labels).
    pub fn register_stream(&self, stream: StreamId, rank: usize) {
        self.ranks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(stream, rank);
    }

    /// Append a decision to the trace at the current virtual time.
    pub fn record(&self, action: Action) {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(clock::wtime(), action);
    }

    /// Render the trace so far (the determinism artifact).
    pub fn trace_string(&self) -> String {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .render()
    }

    /// Number of decisions recorded so far.
    pub fn trace_len(&self) -> usize {
        self.trace
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .steps
            .len()
    }
}

impl SweepOrder for Schedule {
    fn order(&self, stream: StreamId, _sweep: u64, n: usize) -> Vec<usize> {
        if !self.cfg.shuffle_sweeps {
            return (0..n).collect();
        }
        let perm = self
            .rng
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shuffled(n);
        // Singleton sweeps carry no scheduling information; keep the
        // trace to the decisions that could matter.
        if n >= 2 {
            let rank = self
                .ranks
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&stream)
                .copied()
                .unwrap_or(usize::MAX);
            self.record(Action::SweepOrder {
                rank,
                order: perm.clone(),
            });
        }
        perm
    }
}

impl DeliveryHook for Schedule {
    fn arrival(&self, src: usize, dst: usize, seq: u64, arrival: f64, now: f64) -> f64 {
        let delay = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            if rng.chance(self.cfg.reorder_prob) {
                rng.f64() * self.cfg.delivery_jitter
            } else {
                0.0
            }
        };
        if delay > 0.0 {
            self.record(Action::Deliver {
                src,
                dst,
                seq,
                delay,
            });
        }
        (arrival + delay).max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some_stream_id() -> StreamId {
        mpfa_core::Stream::create().id()
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let s = Schedule::new(1234, ScheduleCfg::default());
            let sid = some_stream_id();
            s.register_stream(sid, 0);
            let orders: Vec<Vec<usize>> = (0..8).map(|i| s.order(sid, i, 5)).collect();
            let arrivals: Vec<f64> = (0..8).map(|i| s.arrival(0, 1, i, 1e-6, 0.0)).collect();
            (orders, arrivals)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let decisions = |seed| {
            let s = Schedule::new(seed, ScheduleCfg::default());
            let sid = some_stream_id();
            (0..8).map(|i| s.order(sid, i, 6)).collect::<Vec<_>>()
        };
        assert_ne!(decisions(1), decisions(2));
    }

    #[test]
    fn shuffle_off_means_identity_order() {
        let s = Schedule::new(
            7,
            ScheduleCfg {
                shuffle_sweeps: false,
                ..ScheduleCfg::default()
            },
        );
        assert_eq!(s.order(some_stream_id(), 0, 4), vec![0, 1, 2, 3]);
        assert_eq!(s.trace_len(), 0);
    }

    #[test]
    fn delivery_never_moves_before_now() {
        let s = Schedule::new(
            5,
            ScheduleCfg {
                reorder_prob: 1.0,
                delivery_jitter: 1e-3,
                ..ScheduleCfg::default()
            },
        );
        for seq in 0..64 {
            // Natural arrival is in the past; the hook must clamp to now.
            let a = s.arrival(0, 1, seq, 0.5, 1.0);
            assert!(a >= 1.0);
        }
    }

    #[test]
    fn trace_records_reorders_and_sweeps() {
        let s = Schedule::new(
            77,
            ScheduleCfg {
                reorder_prob: 1.0,
                ..ScheduleCfg::default()
            },
        );
        let sid = some_stream_id();
        s.register_stream(sid, 3);
        s.order(sid, 0, 3);
        s.arrival(1, 2, 9, 1e-6, 0.0);
        let text = s.trace_string();
        assert!(text.contains("sweep-order rank=3"), "{text}");
        assert!(text.contains("deliver 1->2 seq=9"), "{text}");
    }
}

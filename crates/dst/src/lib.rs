//! # mpfa-dst — deterministic simulation testing
//!
//! FoundationDB-style simulation testing for the mpfa runtime: a whole
//! multi-rank MPI run — task poll orders, packet arrivals, failure
//! detections, chaos kills — becomes a pure function of a `u64` seed,
//! under a frozen virtual clock, on a single thread.
//!
//! The pieces:
//!
//! * [`rng::SimRng`] — the only randomness source (seeded splitmix64);
//! * [`clock`] — guards over the process-wide virtual clock
//!   ([`clock::virtual_time`] / [`clock::real_time`]);
//! * [`schedule::Schedule`] — the controller installed into the
//!   production hooks ([`mpfa_core::SweepOrder`],
//!   [`mpfa_fabric::DeliveryHook`]) that owns every nondeterminism
//!   point and records each decision in a [`trace::Trace`];
//! * [`sim::Sim`] — the cooperative runner: one schedule step picks a
//!   rank to progress, advances virtual time, or injects a detector
//!   tick;
//! * [`explore`] — seed fuzzing with `MPFA_DST_SEED` replay and CI
//!   failure artifacts;
//! * [`fixtures`] — invariant scenarios plus a planted ordering bug the
//!   explorer must catch (the harness's own acceptance test).
//!
//! See `docs/TESTING.md` for the workflow and `tests/conformance/` for
//! the MPI conformance suite built on this harness.

pub mod clock;
pub mod explore;
pub mod fixtures;
pub mod rng;
pub mod schedule;
pub mod sim;
pub mod trace;

pub use clock::{real_time, virtual_time, RealTimeGuard, VirtualClockGuard};
pub use explore::{check, explore, name_base, replay_seed, seeds, Failure};
pub use rng::SimRng;
pub use schedule::{Schedule, ScheduleCfg};
pub use sim::{Sim, SimConfig};
pub use trace::{Action, Trace, TraceStep};
